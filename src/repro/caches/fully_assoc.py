"""Fully-associative LRU cache.

Section 4.1 filters the reference stream through "a 16-Kbyte DL1 cache
and a 16-Kbyte IL1 cache, both fully-associative with LRU replacement".
The implementation keeps lines in an ordered dictionary whose insertion
order *is* the recency order (Python dicts preserve insertion order;
``move_to_end`` is O(1)).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.caches.base import CacheStats, EvictedLine


class FullyAssociativeCache:
    """LRU cache over line addresses with ``capacity_lines`` entries.

    Lines carry a dirty bit so the same class serves as a write-back
    cache model.  On a miss the line is allocated (unless
    ``allocate=False`` is passed, modelling non-write-allocate stores)
    and the LRU victim, if any, is recorded in :attr:`last_eviction`.
    """

    __slots__ = ("capacity_lines", "stats", "last_eviction", "_lines")

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines <= 0:
            raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
        self.capacity_lines = capacity_lines
        self.stats = CacheStats()
        self.last_eviction: "EvictedLine | None" = None
        self._lines: "OrderedDict[int, bool]" = OrderedDict()

    @classmethod
    def from_bytes(cls, capacity_bytes: int, line_size: int) -> "FullyAssociativeCache":
        """Build a cache from a byte capacity and line size."""
        if capacity_bytes % line_size:
            raise ValueError(
                f"capacity {capacity_bytes} is not a multiple of line size {line_size}"
            )
        return cls(capacity_bytes // line_size)

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def access(self, line: int, write: bool = False, allocate: bool = True) -> bool:
        """Reference ``line``; return ``True`` on hit.

        On hit the line becomes most-recently-used and, for a write, is
        marked dirty.  On miss, if ``allocate``, the line is installed
        (dirty iff ``write``); otherwise the cache is left untouched.
        """
        self.stats.accesses += 1
        self.last_eviction = None
        lines = self._lines
        if line in lines:
            self.stats.hits += 1
            lines.move_to_end(line)
            if write:
                lines[line] = True
            return True
        self.stats.misses += 1
        if allocate:
            self._install(line, dirty=write)
        return False

    def access_many(self, lines, write: bool = False, allocate: bool = True) -> int:
        """Batched :meth:`access` over ``lines``; returns the hit count.

        Bit-identical to the per-line loop; see
        :meth:`repro.caches.set_assoc.SetAssociativeCache.access_many`.
        """
        cached = self._lines
        capacity = self.capacity_lines
        hits = accesses = evictions = writebacks = 0
        last = None
        for line in lines:
            accesses += 1
            last = None
            if line in cached:
                hits += 1
                cached.move_to_end(line)
                if write:
                    cached[line] = True
                continue
            if allocate:
                if len(cached) >= capacity:
                    victim, victim_dirty = cached.popitem(False)
                    evictions += 1
                    if victim_dirty:
                        writebacks += 1
                    last = EvictedLine(victim, victim_dirty)
                cached[line] = write
        if accesses:
            stats = self.stats
            stats.accesses += accesses
            stats.hits += hits
            stats.misses += accesses - hits
            stats.evictions += evictions
            stats.writebacks += writebacks
            self.last_eviction = last
        return hits

    def _install(self, line: int, dirty: bool) -> None:
        lines = self._lines
        if len(lines) >= self.capacity_lines:
            victim, victim_dirty = lines.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
            self.last_eviction = EvictedLine(victim, victim_dirty)
        lines[line] = dirty

    def fill(self, line: int, dirty: bool = False) -> None:
        """Install ``line`` without counting an access (e.g. broadcast
        fills into inactive L1 caches, paper section 2.3)."""
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            if dirty:
                lines[line] = True
            return
        self._install(line, dirty)

    def update_if_present(self, line: int, dirty: bool = True) -> bool:
        """Write ``line`` only if already cached (store broadcast on the
        update bus writes inactive caches "if the cache line is present",
        section 2.3).  Returns whether the line was present."""
        lines = self._lines
        if line not in lines:
            return False
        lines[line] = lines[line] or dirty
        return True

    def invalidate(self, line: int) -> bool:
        """Drop ``line``; return whether it was present."""
        return self._lines.pop(line, None) is not None

    def is_dirty(self, line: int) -> bool:
        return self._lines.get(line, False)

    def resident_lines(self) -> "list[int]":
        """Lines currently cached, least- to most-recently-used."""
        return list(self._lines)
