"""Skewed-associative cache [Bodin & Seznec 1997].

The paper's four-core experiment (section 4.2) uses a "512-Kbyte, 4-way
skewed-associative" L2 on each core and a "8k entries ... 4-way
skewed-associative" affinity cache.  In a skewed cache each way is an
independent direct-mapped bank indexed by a *different* hash of the
address, which breaks the set-conflict pathologies of conventional
set-associative caches.

The skewing functions here follow the spirit of Seznec's original
functions: the index for way ``w`` XORs the low index bits with a
``w``-dependent mix of the tag bits (:func:`skew_hash`).  Replacement is
timestamp-LRU among the ``ways`` candidate slots, one per bank.
"""

from __future__ import annotations

from repro.caches.base import CacheStats, EvictedLine, check_power_of_two

_GOLDEN64 = 0x9E3779B97F4A7C15  # 2^64 / golden ratio, a standard bit mixer


def skew_hash(line: int, way: int, index_bits: int) -> int:
    """Skewing function: bank index of ``line`` in way ``way``.

    Way 0 uses the plain low index bits (so a skewed cache degenerates
    gracefully to direct-mapped when ``ways == 1``); each further way
    XORs in a differently-rotated, golden-ratio-mixed copy of the upper
    address bits.
    """
    mask = (1 << index_bits) - 1
    index = line & mask
    if way == 0:
        return index
    tag = line >> index_bits
    mixed = (tag * _GOLDEN64 + way * 0xD1B54A32D192ED03) & 0xFFFFFFFFFFFFFFFF
    rotation = (way * 7) % 64
    mixed = ((mixed >> rotation) | (mixed << (64 - rotation))) & 0xFFFFFFFFFFFFFFFF
    return (index ^ (mixed & mask) ^ ((mixed >> index_bits) & mask)) & mask


class SkewedAssociativeCache:
    """A ``ways``-way skewed-associative cache of ``num_sets`` sets.

    Exposes the same interface as
    :class:`repro.caches.set_assoc.SetAssociativeCache` so the two are
    interchangeable in the hierarchy and the affinity cache.
    """

    __slots__ = (
        "num_sets",
        "ways",
        "stats",
        "last_eviction",
        "_index_bits",
        "_lines",
        "_dirty",
        "_time",
        "_clock",
    )

    def __init__(self, num_sets: int, ways: int) -> None:
        check_power_of_two(num_sets, "num_sets")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self.stats = CacheStats()
        self.last_eviction: "EvictedLine | None" = None
        self._index_bits = num_sets.bit_length() - 1
        # One flat array per attribute, indexed by way * num_sets + index.
        size = num_sets * ways
        self._lines: "list[int | None]" = [None] * size
        self._dirty = [False] * size
        self._time = [0] * size
        self._clock = 0

    @classmethod
    def from_bytes(
        cls, capacity_bytes: int, line_size: int, ways: int
    ) -> "SkewedAssociativeCache":
        lines = capacity_bytes // line_size
        if lines * line_size != capacity_bytes or lines % ways:
            raise ValueError(
                f"capacity {capacity_bytes} not divisible into {ways} banks "
                f"of {line_size}-byte lines"
            )
        return cls(lines // ways, ways)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    def _slot(self, line: int, way: int) -> int:
        return way * self.num_sets + skew_hash(line, way, self._index_bits)

    def _find(self, line: int) -> int:
        """Slot holding ``line``, or -1."""
        for way in range(self.ways):
            slot = self._slot(line, way)
            if self._lines[slot] == line:
                return slot
        return -1

    def __contains__(self, line: int) -> bool:
        return self._find(line) >= 0

    def __len__(self) -> int:
        return sum(1 for entry in self._lines if entry is not None)

    def access(self, line: int, write: bool = False, allocate: bool = True) -> bool:
        """Reference ``line``; return ``True`` on hit."""
        self.stats.accesses += 1
        self.last_eviction = None
        self._clock += 1
        slot = self._find(line)
        if slot >= 0:
            self.stats.hits += 1
            self._time[slot] = self._clock
            if write:
                self._dirty[slot] = True
            return True
        self.stats.misses += 1
        if allocate:
            self._install(line, dirty=write)
        return False

    def access_many(self, lines, write: bool = False, allocate: bool = True) -> int:
        """Batched :meth:`access` over ``lines``; returns the hit count.

        The skew hashes for the whole batch are computed in one
        vectorised pass (:func:`repro.kernels.arrays.skew_slot_matrix`);
        the loop itself is bit-identical to per-line :meth:`access`.
        """
        import numpy as np

        from repro.kernels.arrays import skew_slot_matrix

        line_list = np.asarray(lines, dtype=np.int64).tolist()
        slot_rows = skew_slot_matrix(line_list, self.num_sets, self.ways).tolist()
        cache_lines = self._lines
        cache_dirty = self._dirty
        cache_time = self._time
        clock = self._clock
        hits = evictions = writebacks = 0
        last = None
        for line, srow in zip(line_list, slot_rows):
            clock += 1
            last = None
            hit_slot = -1
            for slot in srow:
                if cache_lines[slot] == line:
                    hit_slot = slot
                    break
            if hit_slot >= 0:
                hits += 1
                cache_time[hit_slot] = clock
                if write:
                    cache_dirty[hit_slot] = True
                continue
            if allocate:
                victim = -1
                victim_time = None
                for slot in srow:
                    if cache_lines[slot] is None:
                        victim = slot
                        victim_time = None
                        break
                    slot_time = cache_time[slot]
                    if victim_time is None or slot_time < victim_time:
                        victim = slot
                        victim_time = slot_time
                victim_line = cache_lines[victim]
                if victim_line is not None:
                    evictions += 1
                    victim_dirty = cache_dirty[victim]
                    if victim_dirty:
                        writebacks += 1
                    last = EvictedLine(victim_line, victim_dirty)
                cache_lines[victim] = line
                cache_dirty[victim] = write
                cache_time[victim] = clock
        accesses = len(line_list)
        if accesses:
            stats = self.stats
            stats.accesses += accesses
            stats.hits += hits
            stats.misses += accesses - hits
            stats.evictions += evictions
            stats.writebacks += writebacks
            self._clock = clock
            self.last_eviction = last
        return hits

    def _install(self, line: int, dirty: bool) -> None:
        victim_slot = -1
        victim_time = None
        for way in range(self.ways):
            slot = self._slot(line, way)
            if self._lines[slot] is None:
                victim_slot = slot
                victim_time = None
                break
            if victim_time is None or self._time[slot] < victim_time:
                victim_slot = slot
                victim_time = self._time[slot]
        if self._lines[victim_slot] is not None:
            self.stats.evictions += 1
            victim_dirty = self._dirty[victim_slot]
            if victim_dirty:
                self.stats.writebacks += 1
            self.last_eviction = EvictedLine(self._lines[victim_slot], victim_dirty)
        self._lines[victim_slot] = line
        self._dirty[victim_slot] = dirty
        self._time[victim_slot] = self._clock

    def fill(self, line: int, dirty: bool = False) -> None:
        """Install without counting an access (broadcast fills)."""
        self._clock += 1
        self.last_eviction = None
        slot = self._find(line)
        if slot >= 0:
            self._time[slot] = self._clock
            if dirty:
                self._dirty[slot] = True
            return
        self._install(line, dirty)

    def update_if_present(self, line: int, dirty: bool = True) -> bool:
        slot = self._find(line)
        if slot < 0:
            return False
        self._dirty[slot] = self._dirty[slot] or dirty
        return True

    def invalidate(self, line: int) -> bool:
        slot = self._find(line)
        if slot < 0:
            return False
        self._lines[slot] = None
        self._dirty[slot] = False
        return True

    def is_dirty(self, line: int) -> bool:
        slot = self._find(line)
        return slot >= 0 and self._dirty[slot]

    def set_dirty(self, line: int, dirty: bool) -> None:
        """Force the modified bit of a resident line (section 2.1)."""
        slot = self._find(line)
        if slot < 0:
            raise KeyError(f"line {line:#x} not resident")
        self._dirty[slot] = dirty

    def resident_lines(self) -> "list[int]":
        return [entry for entry in self._lines if entry is not None]
