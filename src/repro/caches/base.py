"""Common cache interfaces and statistics.

All caches in this package operate on *line addresses* (byte address
divided by line size); the caller performs the division.  A cache access
returns ``True`` on hit and ``False`` on miss, allocates on miss, and
reports evictions through :attr:`last_eviction` so that write-back
traffic can be modelled without allocating per-access result objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


class EvictedLine(NamedTuple):
    """A line pushed out of a cache, and whether it was dirty."""

    line: int
    dirty: bool


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0.0 when the cache was never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return element-wise sum of two stats records."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )


def check_power_of_two(value: int, what: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
