"""L2 prefetchers (paper section 6, "connection with cache prefetching").

The paper's conclusion is careful about prefetching: much of the
observed splittability comes from circular behaviours "on which
prefetching is likely to succeed", but "there is more to splittability
than predictability (e.g., HalfRandom)" — a working set can be
splittable while its reference stream is unpredictable.  To study that
interaction (see ``benchmarks/bench_prefetch_interaction.py``), this
module provides the two classic sequential prefetchers:

* :class:`NextLinePrefetcher` — on a miss to line ``x``, prefetch
  ``x+1 .. x+degree``;
* :class:`StridePrefetcher` — per-PC-less global stride detection:
  confirms a stride over consecutive misses and prefetches ahead.

Prefetches install lines into the target cache via ``fill`` (no demand
access counted); accuracy/coverage counters let experiments report the
standard prefetching metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0  #: prefetched lines later hit by a demand access

    @property
    def accuracy(self) -> float:
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued


class NextLinePrefetcher:
    """Prefetch the next ``degree`` sequential lines on each miss."""

    def __init__(self, cache, degree: int = 2) -> None:
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()
        self._outstanding: "set[int]" = set()

    def demand_access(self, line: int, hit: bool) -> None:
        """Notify the prefetcher of a demand access outcome."""
        if line in self._outstanding:
            self._outstanding.discard(line)
            if hit:
                self.stats.useful += 1
        if not hit:
            for ahead in range(1, self.degree + 1):
                self._prefetch(line + ahead)

    def _prefetch(self, line: int) -> None:
        if line in self.cache:
            return
        self.cache.fill(line)
        self.stats.issued += 1
        self._outstanding.add(line)


class StridePrefetcher:
    """Global stride detector with 2-miss confirmation.

    Tracks the delta between consecutive demand misses; once the same
    delta repeats, prefetches ``degree`` lines ahead along it.  Catches
    circular/strided sweeps, blind to pointer chasing and HalfRandom —
    exactly the predictability boundary the paper's section 6 draws.
    """

    def __init__(self, cache, degree: int = 2) -> None:
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()
        self._outstanding: "set[int]" = set()
        self._last_miss: "int | None" = None
        self._stride: "int | None" = None
        self._confirmed = False

    def demand_access(self, line: int, hit: bool) -> None:
        if line in self._outstanding:
            self._outstanding.discard(line)
            if hit:
                self.stats.useful += 1
                # Streaming: a hit on a prefetched line keeps the
                # stream alive, pulling one more line ahead (without
                # this, prefetch-on-miss-only oscillates and covers
                # only 1/(degree+1) of a sequential sweep).
                if self._confirmed and self._stride:
                    self._prefetch(line + self.degree * self._stride)
                return
        if hit:
            return
        if self._last_miss is not None:
            delta = line - self._last_miss
            if delta != 0:
                self._confirmed = delta == self._stride
                self._stride = delta
        self._last_miss = line
        if self._confirmed and self._stride:
            for ahead in range(1, self.degree + 1):
                self._prefetch(line + ahead * self._stride)

    def _prefetch(self, line: int) -> None:
        if line < 0 or line in self.cache:
            return
        self.cache.fill(line)
        self.stats.issued += 1
        self._outstanding.add(line)
