"""Set-associative cache with LRU replacement.

Models the 16-KB 4-way L1 instruction and data caches of the four-core
experiment (paper section 4.2).  Each set is an ordered dictionary whose
insertion order is the recency order, so hit, miss and eviction are all
O(1) amortised.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.caches.base import CacheStats, EvictedLine, check_power_of_two

_CHUNK = 1 << 16


class SetAssociativeCache:
    """A ``num_sets`` x ``ways`` LRU cache over line addresses."""

    __slots__ = ("num_sets", "ways", "stats", "last_eviction", "_sets", "_mask")

    def __init__(self, num_sets: int, ways: int) -> None:
        check_power_of_two(num_sets, "num_sets")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self.stats = CacheStats()
        self.last_eviction: "EvictedLine | None" = None
        self._sets: "list[OrderedDict[int, bool]]" = [
            OrderedDict() for _ in range(num_sets)
        ]
        self._mask = num_sets - 1

    @classmethod
    def from_bytes(
        cls, capacity_bytes: int, line_size: int, ways: int
    ) -> "SetAssociativeCache":
        """Build from byte capacity, line size and associativity."""
        lines = capacity_bytes // line_size
        if lines * line_size != capacity_bytes or lines % ways:
            raise ValueError(
                f"capacity {capacity_bytes} not divisible into {ways}-way sets "
                f"of {line_size}-byte lines"
            )
        return cls(lines // ways, ways)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    def _set_of(self, line: int) -> "OrderedDict[int, bool]":
        return self._sets[line & self._mask]

    def __contains__(self, line: int) -> bool:
        return line in self._set_of(line)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def access(self, line: int, write: bool = False, allocate: bool = True) -> bool:
        """Reference ``line``; return ``True`` on hit (see
        :meth:`repro.caches.fully_assoc.FullyAssociativeCache.access`)."""
        self.stats.accesses += 1
        self.last_eviction = None
        cache_set = self._set_of(line)
        if line in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(line)
            if write:
                cache_set[line] = True
            return True
        self.stats.misses += 1
        if allocate:
            self._install(cache_set, line, dirty=write)
        return False

    def access_many(self, lines, write: bool = False, allocate: bool = True) -> int:
        """Batched :meth:`access` over ``lines``; returns the hit count.

        Bit-identical to the per-line loop (stats, recency order, dirty
        bits, ``last_eviction`` after the final access), with lookups
        hoisted out of the inner loop and set indices computed for
        whole chunks at once (:func:`repro.kernels.arrays.set_index_array`
        semantics — one numpy mask pass instead of a scalar ``&`` per
        line).
        """
        sets = self._sets
        ways = self.ways
        hits = accesses = evictions = writebacks = 0
        last = None
        if not isinstance(lines, (list, np.ndarray)):
            lines = list(lines)
        arr = np.asarray(lines, dtype=np.int64)
        mask = np.int64(self._mask)
        for start in range(0, len(arr), _CHUNK):
            chunk = arr[start : start + _CHUNK]
            chunk_lines = chunk.tolist()
            chunk_idx = (chunk & mask).tolist()
            for line, si in zip(chunk_lines, chunk_idx):
                accesses += 1
                last = None
                cache_set = sets[si]
                if line in cache_set:
                    hits += 1
                    cache_set.move_to_end(line)
                    if write:
                        cache_set[line] = True
                    continue
                if allocate:
                    if len(cache_set) >= ways:
                        victim, victim_dirty = cache_set.popitem(False)
                        evictions += 1
                        if victim_dirty:
                            writebacks += 1
                        last = EvictedLine(victim, victim_dirty)
                    cache_set[line] = write
        if accesses:
            stats = self.stats
            stats.accesses += accesses
            stats.hits += hits
            stats.misses += accesses - hits
            stats.evictions += evictions
            stats.writebacks += writebacks
            self.last_eviction = last
        return hits

    def _install(self, cache_set: "OrderedDict[int, bool]", line: int, dirty: bool) -> None:
        if len(cache_set) >= self.ways:
            victim, victim_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
            self.last_eviction = EvictedLine(victim, victim_dirty)
        cache_set[line] = dirty

    def fill(self, line: int, dirty: bool = False) -> None:
        """Install without counting an access (broadcast fills)."""
        cache_set = self._set_of(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            if dirty:
                cache_set[line] = True
            return
        self.last_eviction = None
        self._install(cache_set, line, dirty)

    def update_if_present(self, line: int, dirty: bool = True) -> bool:
        """Write only if cached; returns presence (update-bus stores)."""
        cache_set = self._set_of(line)
        if line not in cache_set:
            return False
        cache_set[line] = cache_set[line] or dirty
        return True

    def invalidate(self, line: int) -> bool:
        return self._set_of(line).pop(line, None) is not None

    def is_dirty(self, line: int) -> bool:
        return self._set_of(line).get(line, False)

    def set_dirty(self, line: int, dirty: bool) -> None:
        """Force the dirty (modified) bit of a resident line — used by
        the migration-mode coherence protocol (paper section 2.1)."""
        cache_set = self._set_of(line)
        if line not in cache_set:
            raise KeyError(f"line {line:#x} not resident")
        cache_set[line] = dirty

    def resident_lines(self) -> "list[int]":
        lines: "list[int]" = []
        for cache_set in self._sets:
            lines.extend(cache_set)
        return lines
