"""Single-core cache hierarchy (the migration-disabled baseline).

Models one core of the paper's machine (section 2.1):

* a 16-KB instruction L1 and a 16-KB data L1 (4-way set-associative in
  the section 4.2 experiments, fully-associative in section 4.1),
* a write-through, non-write-allocate DL1,
* a write-back, write-allocate L2 (512-KB 4-way skewed-associative),
* no L1/L2 inclusion: every store is written through to the L2 and "write
  allocation in L2 may be triggered even upon DL1 hits".

The hierarchy reports, per access, whether it missed the L1s and whether
it missed the L2 — the two event frequencies Table 2 is built from.
The L3 is modelled as a perfect backing store; the paper never reports
L3 misses and explicitly equates L2-to-L2 misses with L3 hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.set_assoc import SetAssociativeCache
from repro.caches.skewed import SkewedAssociativeCache
from repro.traces.trace import Access, AccessKind


@dataclass(frozen=True)
class CoreCacheConfig:
    """Geometry of one core's caches (defaults = paper section 4.2)."""

    line_size: int = 64
    il1_bytes: int = 16 * 1024
    dl1_bytes: int = 16 * 1024
    l1_ways: int = 4  #: 0 means fully-associative L1s (section 4.1 filters)
    l2_bytes: int = 512 * 1024
    l2_ways: int = 4
    l2_skewed: bool = True

    def to_dict(self) -> dict:
        """JSON-able form (for segment-job parameters and snapshots)."""
        return {
            "line_size": self.line_size,
            "il1_bytes": self.il1_bytes,
            "dl1_bytes": self.dl1_bytes,
            "l1_ways": self.l1_ways,
            "l2_bytes": self.l2_bytes,
            "l2_ways": self.l2_ways,
            "l2_skewed": self.l2_skewed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreCacheConfig":
        return cls(**data)

    def make_l1(self, capacity_bytes: int):
        """Instantiate one L1 cache per this geometry."""
        if self.l1_ways == 0:
            return FullyAssociativeCache.from_bytes(capacity_bytes, self.line_size)
        return SetAssociativeCache.from_bytes(
            capacity_bytes, self.line_size, self.l1_ways
        )

    def make_l2(self):
        """Instantiate one L2 cache per this geometry."""
        if self.l2_skewed:
            return SkewedAssociativeCache.from_bytes(
                self.l2_bytes, self.line_size, self.l2_ways
            )
        return SetAssociativeCache.from_bytes(
            self.l2_bytes, self.line_size, self.l2_ways
        )


class AccessOutcome(NamedTuple):
    """What one access did to the hierarchy."""

    line: int  #: cache-line address
    l1_miss: bool  #: missed the relevant L1 (loads/fetches/stores alike)
    l2_access: bool  #: reached the L2 at all
    l2_miss: bool  #: missed the L2 (data came from L3)


@dataclass
class HierarchyStats:
    """Event counters for one hierarchy run."""

    accesses: int = 0
    l1_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    instructions: int = 0


class SingleCoreHierarchy:
    """IL1 + DL1 + L2 of a single core.

    This is the "normal" configuration of Table 2: the baseline whose
    L2 miss count execution migration tries to beat.
    """

    def __init__(
        self,
        config: "CoreCacheConfig | None" = None,
        prefetcher_factory=None,
        probe=None,
    ) -> None:
        """``prefetcher_factory``, if given, is called with the L2 cache
        and must return an object with ``demand_access(line, hit)`` —
        see :mod:`repro.caches.prefetch`.

        ``probe``, if given, is a :class:`~repro.obs.probe.SimProbe`
        sampling this hierarchy's miss rates and reporting L2
        evictions; ``None`` (the default) keeps the hot path to one
        attribute check."""
        self.config = config or CoreCacheConfig()
        self.il1 = self.config.make_l1(self.config.il1_bytes)
        self.dl1 = self.config.make_l1(self.config.dl1_bytes)
        self.l2 = self.config.make_l2()
        self.prefetcher = (
            prefetcher_factory(self.l2) if prefetcher_factory else None
        )
        self.stats = HierarchyStats()
        self.probe = probe
        if probe is not None:
            probe.bind_hierarchy(self)

    def access(self, access: Access) -> AccessOutcome:
        """Run one memory reference through the hierarchy."""
        stats = self.stats
        stats.accesses += 1
        if access.instruction >= stats.instructions:
            stats.instructions = access.instruction + 1
        probe = self.probe
        if probe is not None:
            probe.on_access(stats.accesses)
        line = access.address // self.config.line_size
        if access.kind is AccessKind.FETCH:
            return self._fetch(line)
        if access.kind is AccessKind.LOAD:
            return self._load(line)
        return self._store(line)

    def _fetch(self, line: int) -> AccessOutcome:
        if self.il1.access(line):
            return AccessOutcome(line, False, False, False)
        self.stats.l1_misses += 1
        l2_miss = self._l2_read(line)
        return AccessOutcome(line, True, True, l2_miss)

    def _load(self, line: int) -> AccessOutcome:
        if self.dl1.access(line):
            return AccessOutcome(line, False, False, False)
        self.stats.l1_misses += 1
        l2_miss = self._l2_read(line)
        return AccessOutcome(line, True, True, l2_miss)

    def _store(self, line: int) -> AccessOutcome:
        # Write-through, non-write-allocate DL1: a hit updates the line in
        # place, a miss leaves the DL1 untouched.  Either way the store is
        # written through to the write-allocate L2.
        l1_hit = self.dl1.access(line, write=True, allocate=False)
        if not l1_hit:
            self.stats.l1_misses += 1
        l2_miss = self._l2_write(line)
        return AccessOutcome(line, not l1_hit, True, l2_miss)

    def _l2_read(self, line: int) -> bool:
        self.stats.l2_accesses += 1
        hit = self.l2.access(line)
        if not hit:
            self.stats.l2_misses += 1
            self._observe_eviction()
        if self.prefetcher is not None:
            self.prefetcher.demand_access(line, hit)
        return not hit

    def _l2_write(self, line: int) -> bool:
        self.stats.l2_accesses += 1
        hit = self.l2.access(line, write=True)
        if not hit:
            self.stats.l2_misses += 1
            self._observe_eviction()
        if self.prefetcher is not None:
            self.prefetcher.demand_access(line, hit)
        return not hit

    def _observe_eviction(self) -> None:
        """Report an L2 eviction (if any) after a miss-allocate."""
        probe = self.probe
        if probe is not None:
            eviction = self.l2.last_eviction
            if eviction is not None:
                probe.on_l2_eviction(0, eviction.line, eviction.dirty)

    def run(self, accesses) -> HierarchyStats:
        """Run a whole trace; returns the accumulated stats."""
        for access in accesses:
            self.access(access)
        return self.stats

    def run_arrays(self, addresses, kinds, instructions) -> HierarchyStats:
        """Run a whole trace given as parallel arrays (the batched fast
        path — bit-identical to :meth:`run`, see ``repro.kernels``)."""
        from repro.kernels.batch import run_hierarchy_arrays

        return run_hierarchy_arrays(self, addresses, kinds, instructions)

    def run_filtered(self, record) -> HierarchyStats:
        """Replay a precomputed L1-filter miss stream, skipping the L1
        stage (see :mod:`repro.kernels.l1filter`)."""
        from repro.kernels.batch import run_hierarchy_filtered

        return run_hierarchy_filtered(self, record)
