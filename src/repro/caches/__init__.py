"""Cache substrate.

Everything the paper's evaluation rests on:

* :mod:`repro.caches.base` -- cache statistics and the common interface,
* :mod:`repro.caches.fully_assoc` -- fully-associative LRU caches
  (the 16-KB L1 filters of section 4.1),
* :mod:`repro.caches.set_assoc` -- set-associative LRU caches
  (the 16-KB 4-way L1s of section 4.2),
* :mod:`repro.caches.skewed` -- skewed-associative caches [Bodin &
  Seznec] (the 512-KB 4-way skewed L2s and the affinity cache),
* :mod:`repro.caches.lru_stack` -- Mattson stack-distance profiling
  (the LRU stack profiles of Figures 4-5),
* :mod:`repro.caches.hierarchy` -- a single-core IL1/DL1/L2 hierarchy
  (the "normal", migration-disabled baseline of Table 2).
"""

from repro.caches.base import CacheStats, EvictedLine
from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.set_assoc import SetAssociativeCache
from repro.caches.skewed import SkewedAssociativeCache, skew_hash
from repro.caches.lru_stack import LruStack, StackProfile
from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.caches.prefetch import (
    NextLinePrefetcher,
    PrefetchStats,
    StridePrefetcher,
)

__all__ = [
    "CacheStats",
    "CoreCacheConfig",
    "EvictedLine",
    "FullyAssociativeCache",
    "LruStack",
    "NextLinePrefetcher",
    "PrefetchStats",
    "SetAssociativeCache",
    "SingleCoreHierarchy",
    "SkewedAssociativeCache",
    "StackProfile",
    "StridePrefetcher",
    "skew_hash",
]
