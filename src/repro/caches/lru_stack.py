"""Mattson LRU stack-distance profiling [Mattson et al. 1970].

Section 4.1 of the paper builds *LRU stack profiles*: for each reference
it records the LRU stack depth (a first-touch reference has infinite
depth), then reports ``p(x)`` — the fraction of references whose depth
exceeds ``x`` lines, i.e. the miss ratio of a fully-associative LRU
cache of ``x`` lines.

:class:`LruStack` computes exact stack depths in O(log T) per reference
using the classic time-stamp formulation: the depth of a reference to
line ``e`` at time ``t`` is one plus the number of *distinct* lines
referenced since ``e``'s previous access, which is a range-count over a
0/1 Fenwick tree in which exactly the most recent access time of every
live line is set.

:class:`StackProfile` accumulates a depth histogram and answers
``fraction_deeper`` queries; profiles are mergeable so the four split
stacks of Figures 4-5 can be reported as one global profile ``p4``.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

import numpy as np

from repro.common.fenwick import FenwickTree


class LruStack:
    """Exact LRU stack-depth computation over an unbounded line stream."""

    __slots__ = ("_last_time", "_fenwick", "_time", "_capacity")

    def __init__(self, initial_capacity: int = 1 << 16) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        self._last_time: "dict[int, int]" = {}
        self._capacity = initial_capacity
        self._fenwick = FenwickTree(initial_capacity)
        self._time = 0

    @property
    def distinct_lines(self) -> int:
        return len(self._last_time)

    @property
    def references(self) -> int:
        return self._time

    def access(self, line: int) -> Optional[int]:
        """Record a reference to ``line``; return its stack depth.

        The depth is 1-based (a re-reference to the most recently used
        line has depth 1; a fully-associative LRU cache of ``c`` lines
        hits iff ``depth <= c``).  First-touch references return
        ``None`` (infinite depth).
        """
        if self._time >= self._capacity:
            self._grow()
        t = self._time
        self._time = t + 1
        previous = self._last_time.get(line)
        self._fenwick.add(t, 1)
        self._last_time[line] = t
        if previous is None:
            return None
        # Distinct lines referenced strictly after `previous`, before `t`,
        # plus the line itself.
        depth = self._fenwick.range_sum(previous + 1, t - 1) + 1
        self._fenwick.add(previous, -1)
        return depth

    def _grow(self) -> None:
        """Compact the time axis: renumber live lines' last-access times.

        Stack depths only depend on the *order* of last-access times, so
        renumbering them to 0..L-1 preserves every future query while
        keeping the Fenwick tree proportional to the number of live
        lines rather than to the trace length.
        """
        ordered = sorted(self._last_time.items(), key=lambda item: item[1])
        live = len(ordered)
        self._capacity = max(self._capacity, 4 * live, 1 << 10)
        fresh = FenwickTree(self._capacity)
        for new_time, (line, _old_time) in enumerate(ordered):
            self._last_time[line] = new_time
            fresh.add(new_time, 1)
        self._fenwick = fresh
        self._time = live

    def depth_of(self, line: int) -> Optional[int]:
        """Current stack depth of ``line`` without recording a reference."""
        previous = self._last_time.get(line)
        if previous is None:
            return None
        if self._time == 0:
            return None
        return self._fenwick.range_sum(previous + 1, self._time - 1) + 1


class StackProfile:
    """Histogram of stack depths with cold (infinite-depth) references."""

    def __init__(self) -> None:
        self._histogram: Counter = Counter()
        self.cold = 0
        self.total = 0
        self._sorted_depths: "np.ndarray | None" = None
        self._cumulative: "np.ndarray | None" = None

    def record(self, depth: Optional[int]) -> None:
        """Record one reference (``None`` = first touch)."""
        self.total += 1
        if depth is None:
            self.cold += 1
        else:
            if depth <= 0:
                raise ValueError(f"stack depths are 1-based, got {depth}")
            self._histogram[depth] += 1
        self._sorted_depths = None

    def record_stream(self, depths: Iterable[Optional[int]]) -> None:
        for depth in depths:
            self.record(depth)

    def _ensure_index(self) -> None:
        if self._sorted_depths is None:
            depths = np.array(sorted(self._histogram), dtype=np.int64)
            counts = np.array(
                [self._histogram[int(d)] for d in depths], dtype=np.int64
            )
            self._sorted_depths = depths
            self._cumulative = np.cumsum(counts)

    def references_not_deeper(self, lines: int) -> int:
        """Number of references with depth <= ``lines`` (finite only)."""
        self._ensure_index()
        assert self._sorted_depths is not None and self._cumulative is not None
        position = int(np.searchsorted(self._sorted_depths, lines, side="right"))
        if position == 0:
            return 0
        return int(self._cumulative[position - 1])

    def fraction_deeper(self, lines: int) -> float:
        """``p(x)``: fraction of references with stack depth > ``lines``.

        First-touch references count as deeper than any finite size,
        exactly as in the paper ("a reference which is encountered for
        the first time has an infinite LRU stack depth").
        """
        if self.total == 0:
            return 0.0
        return 1.0 - self.references_not_deeper(lines) / self.total

    def miss_ratio_curve(self, capacities: Iterable[int]) -> "list[float]":
        """``p(x)`` sampled at each capacity (in lines)."""
        return [self.fraction_deeper(int(c)) for c in capacities]

    def merge(self, other: "StackProfile") -> "StackProfile":
        """Pointwise sum of two profiles (for the global ``p4``)."""
        merged = StackProfile()
        merged._histogram = self._histogram + other._histogram
        merged.cold = self.cold + other.cold
        merged.total = self.total + other.total
        return merged

    @staticmethod
    def merge_all(profiles: "Iterable[StackProfile]") -> "StackProfile":
        result = StackProfile()
        for profile in profiles:
            result = result.merge(profile)
        return result
