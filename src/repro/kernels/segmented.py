"""Segment-parallel chip replay over snapshot boundaries.

Filtered replay is a deterministic state machine: chip state at record
``i`` is a pure function of (chip config, record prefix).  That makes
the replay loop *temporally* decomposable even though every iteration
depends on the last — capture exact snapshots
(:mod:`repro.multicore.state`) every ``n/K`` records, then replay the
``K`` segments as independent :class:`~repro.runtime.job.Job` units:
segment ``k`` restores snapshot ``k``, replays records
``[b_k, b_{k+1})`` through the shape-specialized kernel
(:mod:`repro.kernels.specialize`), and reports its end digest.

**Stitching is verification, not approximation.**  Because every
segment starts from an exact snapshot, the stitched result is not
"close to" serial replay — it is bit-identical, and the digest chain
proves it: segment ``k``'s end digest must equal the captured digest at
boundary ``k+1``, and the last segment's end digest must equal the
serial final digest.  Chip stats restore with the snapshot, so the last
segment's :class:`~repro.multicore.chip.ChipStats` are the absolute
stats of the whole run.

**Warm-up-and-discard** (:func:`replay_window`) serves windows that do
not fall on snapshot boundaries: restore the nearest earlier snapshot
and replay forward to the window start before replaying the window
itself.  Replay is exact, so the warm-up is not an approximation
either — it is literally the prefix computation, just started from the
closest checkpoint instead of from zero.

Snapshots are content-addressed under the runtime cache's generation
directory (``<l1-job-hash>.segs/<config-digest>-<K>/``) next to the
``.l1f.npz`` record sidecar they were captured from, so sweeps reuse
captures across runs and code edits invalidate them with the cache
generation.  Segment jobs rebuild missing captures themselves (the
capture is cheap relative to a cold cache miss and idempotent), which
keeps them retry-safe: a crashed worker re-runs from the on-disk
snapshot without coordination.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.kernels.l1filter import ensure_l1_filter, l1_filter_job_for
from repro.kernels.specialize import replay_chip_slice, specializable
from repro.multicore.chip import ChipConfig, ChipStats, MultiCoreChip
from repro.multicore.state import (
    ChipSnapshot,
    SnapshotError,
    chip_digest,
    config_digest,
    snapshot_chip,
)
from repro.obs import trace_context
from repro.runtime.cache import ResultCache
from repro.runtime.job import Job, canonical_json
from repro.runtime.scheduler import ExperimentRuntime, RuntimeConfig, payloads

SEGMENTS_VERSION = 1
MANIFEST_NAME = "manifest.json"


def plan_segments(num_records: int, segments: int) -> "list[int]":
    """Record-index boundaries ``[b_0=0, ..., b_K=n]`` for ``K`` even
    segments (later segments absorb the remainder)."""
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    return [round(k * num_records / segments) for k in range(segments + 1)]


def access_marks(record, bounds: "list[int]") -> "list[int]":
    """Trace-access index at each record boundary.

    ``marks[k+1] - marks[k]`` is the number of original trace accesses
    segment ``k`` accounts for; the marks partition ``record.accesses``
    exactly (the access of record ``b_k`` and everything after it up to
    record ``b_{k+1}`` belongs to segment ``k``).
    """
    n = len(record.lines)
    marks = []
    for b in bounds:
        if b >= n:
            marks.append(record.accesses)
        elif b == 0:
            marks.append(0)
        else:
            marks.append(int(record.indices[b]))
    return marks


def segment_dir(
    cache: ResultCache,
    name: str,
    scale: float,
    seed: "int | None",
    config: ChipConfig,
    segments: int,
) -> Path:
    """Content-addressed home of one capture's snapshots + manifest."""
    l1job = l1_filter_job_for(name, scale=scale, seed=seed)
    return (
        cache.generation_dir
        / f"{l1job.hash}.segs"
        / f"{config_digest(config)}-{segments}"
    )


def _snapshot_name(index: int) -> str:
    return f"seg-{index:04d}.npz"


def _manifest_current(manifest: dict, directory: Path, config: ChipConfig,
                      segments: int, num_records: int) -> bool:
    return (
        manifest.get("version") == SEGMENTS_VERSION
        and manifest.get("segments") == segments
        and manifest.get("records") == num_records
        and manifest.get("config") == config.to_dict()
        and all(
            (directory / snap).is_file()
            for snap in manifest.get("snapshots", ())
        )
    )


def ensure_segment_snapshots(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    config: "ChipConfig | None" = None,
    segments: int = 2,
    cache: "ResultCache | None" = None,
) -> "tuple[dict, Path]":
    """Capture (or reuse) the snapshot chain for one replay.

    Runs the serial specialized replay once, snapshotting chip state at
    every segment boundary; returns ``(manifest, directory)``.  The
    manifest records boundaries, access marks, the digest at every
    boundary (``digests[K]`` is the serial final digest — the stitching
    ground truth), and the serial final stats.
    """
    cache = cache or ResultCache()
    config = config or ChipConfig()
    record, _ = ensure_l1_filter(name, scale=scale, seed=seed, cache=cache)
    directory = segment_dir(cache, name, scale, seed, config, segments)
    manifest_path = directory / MANIFEST_NAME
    n = len(record.lines)
    if manifest_path.is_file():
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            manifest = {}
        if _manifest_current(manifest, directory, config, segments, n):
            return manifest, directory
    bounds = plan_segments(n, segments)
    marks = access_marks(record, bounds)
    chip = MultiCoreChip(config)
    if not specializable(chip):
        raise SnapshotError(
            "segment capture requires a specializable chip "
            "(no probes/prefetchers, standard component types)"
        )
    directory.mkdir(parents=True, exist_ok=True)
    digests: "list[str]" = []
    snapshots: "list[str]" = []
    with trace_context.phase(
        "segmented.capture", workload=name, segments=segments
    ):
        for k in range(segments):
            snap = snapshot_chip(chip)
            digests.append(snap.digest())
            snap.save(directory / _snapshot_name(k))
            snapshots.append(_snapshot_name(k))
            replay_chip_slice(
                chip,
                record,
                bounds[k],
                bounds[k + 1],
                n_accesses=marks[k + 1] - marks[k],
                max_instruction=(
                    record.max_instruction if k == segments - 1 else None
                ),
            )
        digests.append(chip_digest(chip))
    manifest = {
        "version": SEGMENTS_VERSION,
        "workload": name,
        "scale": scale,
        "seed": seed,
        "config": config.to_dict(),
        "config_digest": config_digest(config),
        "segments": segments,
        "records": n,
        "bounds": bounds,
        "access_marks": marks,
        "digests": digests,
        "snapshots": snapshots,
        "final_stats": chip.stats.to_dict(),
    }
    tmp = manifest_path.with_name(f"{MANIFEST_NAME}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    os.replace(tmp, manifest_path)
    return manifest, directory


def segment_job(
    name: str,
    scale: float,
    seed: "int | None",
    config_json: str,
    segments: int,
    index: int,
) -> "dict[str, object]":
    """Runtime job: replay one segment from its snapshot.

    Self-sufficient: rebuilds the capture if the snapshots are missing
    (content-addressed, so concurrent workers converge on identical
    bytes).  Returns start/end digests for the stitch check plus the
    chip stats after this segment — absolute stats, since they restore
    with the snapshot.
    """
    if not 0 <= index < segments:
        raise ValueError(f"segment index {index} outside [0, {segments})")
    config = ChipConfig.from_dict(json.loads(config_json))
    cache = ResultCache()
    manifest, directory = ensure_segment_snapshots(
        name, scale=scale, seed=seed, config=config,
        segments=segments, cache=cache,
    )
    record, _ = ensure_l1_filter(name, scale=scale, seed=seed, cache=cache)
    snap = ChipSnapshot.load(directory / manifest["snapshots"][index])
    chip = MultiCoreChip(config)
    from repro.multicore.state import restore_chip

    restore_chip(chip, snap)
    bounds = manifest["bounds"]
    marks = manifest["access_marks"]
    start, end = bounds[index], bounds[index + 1]
    with trace_context.phase(
        "segmented.segment", workload=name, index=index
    ):
        replay_chip_slice(
            chip,
            record,
            start,
            end,
            n_accesses=marks[index + 1] - marks[index],
            max_instruction=(
                record.max_instruction if index == segments - 1 else None
            ),
        )
    return {
        "index": index,
        "start": start,
        "end": end,
        "start_digest": manifest["digests"][index],
        "end_digest": chip_digest(chip),
        "stats": chip.stats.to_dict(),
        "references": marks[index + 1] - marks[index],
    }


def segment_jobs(
    name: str,
    scale: float,
    seed: "int | None",
    config: ChipConfig,
    segments: int,
) -> "list[Job]":
    config_json = canonical_json(config.to_dict())
    return [
        Job.create(
            "repro.kernels.segmented:segment_job",
            label=f"segment/{name}/{k}",
            name=name,
            scale=scale,
            seed=seed,
            config_json=config_json,
            segments=segments,
            index=k,
        )
        for k in range(segments)
    ]


@dataclass(frozen=True)
class SegmentedReplay:
    """Outcome of one stitched segment-parallel replay."""

    stats: ChipStats  #: absolute stats after the last segment
    final_digest: str  #: last segment's end digest
    digest_chain_ok: bool  #: every segment ended on the next boundary digest
    stats_identical: bool  #: stitched stats == serial capture stats
    segments: int
    records: int
    crash_retries: int  #: worker crashes recovered during the fan-out


def run_segmented(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    config: "ChipConfig | None" = None,
    segments: int = 2,
    runtime: "ExperimentRuntime | None" = None,
    cache: "ResultCache | None" = None,
) -> SegmentedReplay:
    """Capture, fan the segments out, and stitch with verification.

    Raises :class:`SnapshotError` when the stitched digests break the
    chain — that means non-determinism or a replay bug, never an
    expected condition.
    """
    cache = cache or ResultCache()
    config = config or ChipConfig()
    manifest, _ = ensure_segment_snapshots(
        name, scale=scale, seed=seed, config=config,
        segments=segments, cache=cache,
    )
    owns_runtime = runtime is None
    if owns_runtime:
        runtime = ExperimentRuntime(RuntimeConfig(jobs=1), cache=cache)
    try:
        with trace_context.phase(
            "segmented.replay", workload=name, segments=segments
        ):
            outcomes = runtime.map(
                segment_jobs(name, scale, seed, config, segments)
            )
        results = payloads(outcomes)
        crash_retries = runtime.stats.crash_retries
    finally:
        if owns_runtime:
            runtime.close()
    digests = manifest["digests"]
    chain_ok = all(
        results[k]["end_digest"] == digests[k + 1] for k in range(segments)
    )
    final = results[-1]
    stats = ChipStats.from_dict(final["stats"])
    stats_identical = final["stats"] == manifest["final_stats"]
    if not chain_ok or not stats_identical:
        broken = [
            k for k in range(segments)
            if results[k]["end_digest"] != digests[k + 1]
        ]
        raise SnapshotError(
            f"segment stitch mismatch for {name}@{scale}: "
            f"broken digest chain at segments {broken}, "
            f"stats_identical={stats_identical}"
        )
    return SegmentedReplay(
        stats=stats,
        final_digest=final["end_digest"],
        digest_chain_ok=chain_ok,
        stats_identical=stats_identical,
        segments=segments,
        records=manifest["records"],
        crash_retries=crash_retries,
    )


def replay_window(
    name: str,
    start: int,
    end: int,
    scale: float = 1.0,
    seed: "int | None" = None,
    config: "ChipConfig | None" = None,
    segments: int = 2,
    cache: "ResultCache | None" = None,
) -> MultiCoreChip:
    """Chip state after records ``[0, end)``, computed by warm-up-and-
    discard from the nearest snapshot at or before ``start``.

    The returned chip replayed ``[b, end)`` on top of snapshot ``b``
    (``b`` = the greatest boundary <= ``start``); since replay is
    exact, this equals replaying ``[0, end)`` from scratch.  ``start``
    only chooses the checkpoint — the records in ``[b, start)`` are the
    warm-up that gets "discarded" (they are part of the exact prefix
    either way, just not the caller's window of interest).
    """
    cache = cache or ResultCache()
    config = config or ChipConfig()
    manifest, directory = ensure_segment_snapshots(
        name, scale=scale, seed=seed, config=config,
        segments=segments, cache=cache,
    )
    n = manifest["records"]
    if not 0 <= start <= end <= n:
        raise ValueError(f"bad window [{start}, {end}) of {n} records")
    record, _ = ensure_l1_filter(name, scale=scale, seed=seed, cache=cache)
    bounds = manifest["bounds"]
    marks = manifest["access_marks"]
    k = max(i for i in range(len(bounds) - 1) if bounds[i] <= start)
    snap = ChipSnapshot.load(directory / manifest["snapshots"][k])
    chip = MultiCoreChip(config)
    from repro.multicore.state import restore_chip

    restore_chip(chip, snap)
    b = bounds[k]
    if end > b:
        final = end >= n
        replay_chip_slice(
            chip,
            record,
            b,
            end,
            n_accesses=(
                (record.accesses if final else int(record.indices[end]))
                - marks[k]
            ),
            max_instruction=record.max_instruction if final else None,
        )
    return chip


# -- CLI: the differential smoke CI runs (optionally under faults) ------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Segment-parallel replay differential: capture, replay "
            "segments through the runtime, stitch, and prove the result "
            "bit-identical to an independent serial replay."
        )
    )
    parser.add_argument("--workload", default="mst")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--json", dest="json_out", default=None,
        help="write the result JSON here as well as stdout",
    )
    args = parser.parse_args(argv)

    cache = ResultCache()
    config = ChipConfig()
    record, _ = ensure_l1_filter(
        args.workload, scale=args.scale, seed=args.seed, cache=cache
    )

    # Independent serial baseline through the *inline* fast kernel —
    # a different code path than the specialized segments stitch over.
    from repro.kernels.batch import _replay_chip_fast

    serial = MultiCoreChip(config)
    _replay_chip_fast(
        serial,
        record.lines.tolist(),
        record.kinds.tolist(),
        record.accesses,
        record.max_instruction,
    )
    serial_digest = chip_digest(serial)

    runtime = ExperimentRuntime(
        RuntimeConfig(jobs=args.jobs, use_cache=False), cache=cache
    )
    try:
        stitched = run_segmented(
            args.workload,
            scale=args.scale,
            seed=args.seed,
            config=config,
            segments=args.segments,
            runtime=runtime,
            cache=cache,
        )
    finally:
        runtime.close()

    identical = (
        stitched.final_digest == serial_digest
        and stitched.stats.to_dict() == serial.stats.to_dict()
    )
    result = {
        "workload": args.workload,
        "scale": args.scale,
        "segments": stitched.segments,
        "records": stitched.records,
        "jobs": args.jobs,
        "digest_chain_ok": stitched.digest_chain_ok,
        "stats_identical": identical and stitched.stats_identical,
        "serial_digest": serial_digest,
        "stitched_digest": stitched.final_digest,
        "crash_retries": stitched.crash_retries,
        "migrations": stitched.stats.migrations,
        "l2_misses": stitched.stats.l2_misses,
    }
    text = json.dumps(result, indent=2, sort_keys=True)
    print(text)
    if args.json_out:
        Path(args.json_out).write_text(text + "\n")
    return 0 if result["stats_identical"] and result["digest_chain_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
