"""Population-batch evaluation: one record in memory, many variants.

A variant sweep replays one :class:`~repro.kernels.l1filter.L1FilterRecord`
through every chip configuration.  The per-job path
(:func:`repro.experiments.variants.variant_job`) has each worker decompress
the ``.l1f.npz`` sidecar for itself — for an N-variant population that is
N npz loads of the *same* bytes.  This module amortises the record across
the whole population:

* :func:`evaluate_population` loads (or builds) the record **once** in the
  coordinating process, publishes the miss-stream arrays into a
  ``multiprocessing.shared_memory`` segment, and fans one
  :func:`population_job` per variant over the ordinary scheduler;
* workers resolve the record without touching the npz: forked workers
  find the coordinator's record object in :data:`_SHARED_RECORDS`
  (copy-on-write page sharing, ``record_source == "inherited"``), spawned
  or foreign workers attach the shared-memory segment and wrap it in
  **zero-copy numpy views** (``record_source == "shared"``);
* when neither works (segment gone, sharing disabled) the job falls back
  to the ordinary sidecar load (``record_source == "sidecar"``) — the
  population degrades to PR-7 behaviour, it never fails.

Segment lifecycle.  Each published segment is described by a manifest at
``<cache-root>/shm/<key>.json`` holding the array layout plus an **owner
pid list**.  Publishing registers the caller as an owner (creating the
segment if absent), releasing removes it and unlinks the segment once the
pruned owner list is empty — dead pids are dropped on every
read-modify-write, so a crashed coordinator can never pin a segment
forever.  :func:`release_owned` runs at interpreter exit and from
``ExperimentRuntime.close()``; after it, ``/dev/shm`` holds nothing of
ours (the chaos suite kills workers mid-population and checks exactly
that).

Attachers immediately unregister from ``multiprocessing.resource_tracker``
— on this Python, attaching *registers* the segment, so a worker exiting
would otherwise unlink memory the coordinator still serves (bpo-39959).
"""

from __future__ import annotations

import atexit
import fcntl
import json
import os
import time
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.kernels.l1filter import L1FilterRecord, ensure_l1_filter, l1_filter_job_for
from repro.obs.metrics import process_counter
from repro.runtime import Job, payloads
from repro.runtime.cache import ResultCache

#: subdirectory of the cache root holding segment manifests
SHM_DIR = "shm"

_META_FIELDS = (
    "line_size",
    "il1_bytes",
    "dl1_bytes",
    "l1_ways",
    "accesses",
    "max_instruction",
)

#: records published by this process's coordinator, inherited by forked
#: workers via copy-on-write (keyed by the population's record key)
_SHARED_RECORDS: "dict[str, L1FilterRecord]" = {}

#: segments this process attached as a reader: kept open so the records'
#: zero-copy views stay valid for the life of the process
_ATTACHED: "dict[str, tuple[shared_memory.SharedMemory, L1FilterRecord]]" = {}

#: segments this process owns a reference on (publisher side)
_OWNED: "dict[str, tuple[shared_memory.SharedMemory, Path]]" = {}

#: detached segments whose zero-copy views are still referenced — kept
#: so ``SharedMemory.__del__`` never re-raises the BufferError
_GRAVEYARD: "list[shared_memory.SharedMemory]" = []


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt this handle out of the ``resource_tracker``.

    On this Python both creating *and* attaching registers the segment,
    and any process exiting would then unlink memory other processes
    still serve (bpo-39959).  The manifests' owner lists are the real
    lifecycle, so every handle is untracked at open and the name is
    re-registered only for the final :meth:`unlink` (keeping the
    tracker's register/unregister bookkeeping balanced)."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker races are non-fatal
        pass


def _unlink(shm: shared_memory.SharedMemory) -> None:
    try:
        resource_tracker.register(shm._name, "shared_memory")
        shm.unlink()
    except FileNotFoundError:
        pass


def record_key(cache: ResultCache, name: str, scale: float, seed: "int | None") -> str:
    """Deterministic identity of one workload's published record.

    Derived from the L1-filter *job* hash (trace name, scale, seed — the
    same key the sidecar uses) plus the cache's code version, so a code
    edit can never serve a stale segment to a new-generation worker.
    """
    job = l1_filter_job_for(name, scale=scale, seed=seed)
    return f"{job.hash[:24]}-{cache.code_version[:8]}"


def _segment_name(key: str) -> str:
    return f"rl1f_{key}"


def _manifest_path(cache: ResultCache, key: str) -> Path:
    return cache.root / SHM_DIR / f"{key}.json"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class _manifest_lock:
    """``flock`` over ``<cache-root>/shm/.lock`` serialising every
    manifest read-modify-write on this host."""

    def __init__(self, cache: ResultCache) -> None:
        self._path = cache.root / SHM_DIR / ".lock"
        self._fd: "int | None" = None

    def __enter__(self) -> "_manifest_lock":
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


def _read_manifest(path: Path) -> "dict | None":
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return manifest if isinstance(manifest, dict) else None


def _write_manifest(path: Path, manifest: dict) -> None:
    tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
    tmp.write_text(json.dumps(manifest, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def _live_owners(manifest: dict) -> "list[int]":
    owners = manifest.get("owners")
    if not isinstance(owners, list):
        return []
    return [pid for pid in owners if isinstance(pid, int) and _pid_alive(pid)]


def _record_meta(record: L1FilterRecord) -> "dict[str, int]":
    meta = {name: int(getattr(record, name)) for name in _META_FIELDS}
    meta["records"] = record.records
    return meta


def _layout(records: int) -> "tuple[int, int, int]":
    """Byte offsets of (indices, lines, kinds) and the total size."""
    indices_off = 0
    lines_off = records * 8
    kinds_off = records * 16
    return indices_off, lines_off, kinds_off


def _record_from_buffer(buf, meta: "dict[str, int]") -> L1FilterRecord:
    records = int(meta["records"])
    indices_off, lines_off, kinds_off = _layout(records)
    indices = np.frombuffer(buf, dtype=np.int64, count=records, offset=indices_off)
    lines = np.frombuffer(buf, dtype=np.int64, count=records, offset=lines_off)
    kinds = np.frombuffer(buf, dtype=np.uint8, count=records, offset=kinds_off)
    return L1FilterRecord(
        line_size=int(meta["line_size"]),
        il1_bytes=int(meta["il1_bytes"]),
        dl1_bytes=int(meta["dl1_bytes"]),
        l1_ways=int(meta["l1_ways"]),
        accesses=int(meta["accesses"]),
        max_instruction=int(meta["max_instruction"]),
        indices=indices,
        lines=lines,
        kinds=kinds,
    )


def publish_record(
    cache: ResultCache, key: str, record: L1FilterRecord
) -> bool:
    """Publish ``record`` into the host-shared segment for ``key``.

    Registers the calling pid as an owner; creates the segment and
    writes the miss-stream arrays into it when this is the first live
    owner.  Idempotent per process.  Returns ``True`` on success;
    failures (``/dev/shm`` full, no permissions) are downgraded to a
    ``sweep.shm.fallbacks`` tick — workers then read the sidecar.
    """
    if key in _OWNED:
        return True
    path = _manifest_path(cache, key)
    name = _segment_name(key)
    records = record.records
    _, _, kinds_off = _layout(records)
    size = max(1, kinds_off + records)
    try:
        with _manifest_lock(cache):
            manifest = _read_manifest(path)
            owners = _live_owners(manifest) if manifest else []
            shm = None
            if owners:
                try:
                    shm = shared_memory.SharedMemory(name=name)
                    _untrack(shm)
                except FileNotFoundError:
                    owners = []  # stale manifest: every owner crashed
            if shm is None:
                try:
                    shm = shared_memory.SharedMemory(
                        name=name, create=True, size=size
                    )
                except FileExistsError:
                    # Unowned leftover from a crashed host: take it over.
                    stale = shared_memory.SharedMemory(name=name)
                    _untrack(stale)
                    _unlink(stale)
                    shm = shared_memory.SharedMemory(
                        name=name, create=True, size=size
                    )
                _untrack(shm)
                indices_off, lines_off, kinds_off = _layout(records)
                buf = shm.buf
                np.frombuffer(buf, np.int64, records, indices_off)[:] = record.indices
                np.frombuffer(buf, np.int64, records, lines_off)[:] = record.lines
                np.frombuffer(buf, np.uint8, records, kinds_off)[:] = record.kinds
            pid = os.getpid()
            if pid not in owners:
                owners.append(pid)
            _write_manifest(
                path,
                {
                    "segment": name,
                    "owners": owners,
                    "meta": _record_meta(record),
                    "published": time.time(),
                },
            )
    except OSError:
        process_counter("sweep.shm.fallbacks").inc()
        return False
    _OWNED[key] = (shm, path)
    process_counter("sweep.shm.published").inc()
    return True


def attach_record(cache: ResultCache, key: str) -> "L1FilterRecord | None":
    """Attach the published record for ``key`` as zero-copy views.

    Returns ``None`` when no live segment exists (no manifest, every
    owner dead, segment unlinked) — callers fall back to the sidecar.
    The segment stays mapped for the life of this process so the views
    never dangle.
    """
    cached = _ATTACHED.get(key)
    if cached is not None:
        return cached[1]
    manifest = _read_manifest(_manifest_path(cache, key))
    if not manifest or not _live_owners(manifest):
        return None
    meta = manifest.get("meta")
    if not isinstance(meta, dict):
        return None
    try:
        shm = shared_memory.SharedMemory(name=_segment_name(key))
    except (FileNotFoundError, OSError):
        return None
    _untrack(shm)
    record = _record_from_buffer(shm.buf, meta)
    _ATTACHED[key] = (shm, record)
    process_counter("sweep.shm.attached").inc()
    return record


def release_record(cache: ResultCache, key: str) -> None:
    """Drop this process's ownership of ``key``; unlink when last out."""
    owned = _OWNED.pop(key, None)
    if owned is None:
        return
    shm, path = owned
    try:
        with _manifest_lock(cache):
            manifest = _read_manifest(path) or {}
            pid = os.getpid()
            owners = [p for p in _live_owners(manifest) if p != pid]
            if owners:
                manifest["owners"] = owners
                _write_manifest(path, manifest)
                shm.close()
            else:
                shm.close()
                _unlink(shm)
                try:
                    path.unlink()
                except OSError:
                    pass
    except OSError:
        pass
    process_counter("sweep.shm.released").inc()


def release_owned() -> None:
    """Release every segment this process still owns (idempotent).

    Called at interpreter exit and from ``ExperimentRuntime.close()`` /
    the service drain, so a finished sweep leaves ``/dev/shm`` clean no
    matter how its workers died.
    """
    for key, (_shm, path) in list(_OWNED.items()):
        # The manifest lives under <root>/shm/<key>.json: recover the
        # cache root from the path rather than re-deriving state.
        cache = ResultCache(root=path.parent.parent)
        release_record(cache, key)


atexit.register(release_owned)


def drop_shared_records() -> None:
    """Forget coordinator records and detach segments (test isolation).

    An attached segment whose zero-copy views are still referenced
    cannot be unmapped (``BufferError``); such handles move to the
    graveyard so they are simply never closed — the memory goes away
    when the last view does at process exit."""
    _SHARED_RECORDS.clear()
    for key, (shm, _record) in list(_ATTACHED.items()):
        _ATTACHED.pop(key, None)
        try:
            shm.close()
        except (OSError, BufferError):
            # Disarm the handle: the mapping stays alive through the
            # views' buffer chain, and ``__del__`` has nothing left to
            # close (so it cannot re-raise at GC or interpreter exit).
            shm._buf = None
            shm._mmap = None
            _GRAVEYARD.append(shm)


# -- population jobs ----------------------------------------------------


def _resolve_record(
    name: str,
    scale: float,
    seed: "int | None",
    share: bool,
    cache: "ResultCache | None" = None,
) -> "tuple[L1FilterRecord, str, int]":
    """Find the population's record: ``(record, source, loads)``.

    Resolution order — coordinator object inherited over fork, then the
    shared-memory segment, then the ordinary sidecar path.  ``loads``
    counts actual record materialisations (npz decompresses or L1
    rebuilds) this call performed; the first two sources are always 0.
    """
    cache = cache or ResultCache()
    key = record_key(cache, name, scale, seed)
    record = _SHARED_RECORDS.get(key)
    if record is not None:
        return record, "inherited", 0
    if share:
        record = attach_record(cache, key)
        if record is not None:
            return record, "shared", 0
        process_counter("sweep.shm.fallbacks").inc()
    loads = process_counter("l1filter.record_cache.loads")
    before = loads.value
    record, cached = ensure_l1_filter(name, scale=scale, seed=seed, cache=cache)
    performed = (loads.value - before) + (0 if cached else 1)
    return record, "sidecar", performed


def population_job(
    name: str,
    variant: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    share: bool = True,
) -> "dict[str, object]":
    """Runtime job: replay one population variant over the shared record.

    The payload is a superset of
    :func:`repro.experiments.variants.variant_job`'s, adding where the
    record came from (``record_source``) and how many record loads this
    job performed (``record_loads`` — 0 whenever sharing worked).
    """
    from repro.experiments.variants import make_variant

    record, source, loads = _resolve_record(name, scale, seed, share)
    model = make_variant(variant)
    model.run_filtered(record)
    stats = model.stats
    return {
        "workload": name,
        "variant": variant,
        "l1_misses": stats.l1_misses,
        "l2_accesses": stats.l2_accesses,
        "l2_misses": stats.l2_misses,
        "migrations": getattr(stats, "migrations", 0),
        "instructions": stats.instructions,
        "l1_filter_cached": loads == 0,
        "record_source": source,
        "record_loads": loads,
        "references": record.accesses,
    }


def population_jobs(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    variants: "Sequence[str] | None" = None,
    share: bool = True,
) -> "list[Job]":
    from repro.experiments.variants import VARIANT_NAMES

    return [
        Job.create(
            "repro.kernels.sweep:population_job",
            label=f"population/{name}/{variant}",
            name=name,
            variant=variant,
            scale=scale,
            seed=seed,
            share=share,
        )
        for variant in (VARIANT_NAMES if variants is None else variants)
    ]


@dataclass
class PopulationResult:
    """Outcome of one :func:`evaluate_population` call."""

    workload: str
    rows: "list[dict[str, object]]"
    #: record materialisations across coordinator + every job; exactly 1
    #: when sharing worked (the coordinator's own load)
    shared_record_loads: int
    wall_seconds: float = 0.0
    record_sources: "dict[str, int]" = field(default_factory=dict)

    def row_for(self, variant: str) -> "dict[str, object]":
        for row in self.rows:
            if row["variant"] == variant:
                return row
        raise KeyError(variant)


def evaluate_population(
    name: str,
    variants: "Sequence[str] | None" = None,
    *,
    scale: float = 1.0,
    seed: "int | None" = None,
    runtime=None,
    cache: "ResultCache | None" = None,
    share_memory: bool = True,
) -> PopulationResult:
    """Evaluate a population of chip variants over one shared record.

    Loads (or builds) the workload's L1-filter record exactly once in
    this process, makes it available to workers by fork inheritance and
    (optionally) a shared-memory segment, and fans one
    :func:`population_job` per variant over ``runtime`` — or runs them
    serially in-process when ``runtime`` is ``None``.  The segment is
    released before returning; on the happy path
    ``result.shared_record_loads == 1``.
    """
    from repro.experiments.variants import VARIANT_NAMES

    variants = list(VARIANT_NAMES if variants is None else variants)
    if cache is None:
        cache = runtime.cache if runtime is not None else ResultCache()
    key = record_key(cache, name, scale, seed)
    start = time.perf_counter()
    loads = process_counter("l1filter.record_cache.loads")
    before = loads.value
    record, cached = ensure_l1_filter(name, scale=scale, seed=seed, cache=cache)
    coordinator_loads = (loads.value - before) + (0 if cached else 1)
    _SHARED_RECORDS[key] = record
    published = False
    parallel = runtime is not None and runtime.config.jobs > 1
    if share_memory and parallel:
        published = publish_record(cache, key, record)
    try:
        jobs = population_jobs(
            name, scale=scale, seed=seed, variants=variants, share=share_memory
        )
        if runtime is None:
            rows = [population_job(**job.kwargs) for job in jobs]
        else:
            rows = payloads(runtime.map(jobs))
    finally:
        _SHARED_RECORDS.pop(key, None)
        if published:
            release_record(cache, key)
    sources: "dict[str, int]" = {}
    worker_loads = 0
    for row in rows:
        source = str(row.get("record_source", "?"))
        sources[source] = sources.get(source, 0) + 1
        record_loads = row.get("record_loads", 0)
        if isinstance(record_loads, int):
            worker_loads += record_loads
    return PopulationResult(
        workload=name,
        rows=rows,
        shared_record_loads=coordinator_loads + worker_loads,
        wall_seconds=time.perf_counter() - start,
        record_sources=sources,
    )
