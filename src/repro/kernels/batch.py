"""Batched chip and hierarchy drivers (the array-native fast path).

Entry points (normally reached via ``MultiCoreChip.run_arrays`` /
``run_filtered`` and their ``SingleCoreHierarchy`` twins):

* :func:`run_chip_arrays` / :func:`run_hierarchy_arrays` — drive a
  model from ``(addresses, kinds, instructions)`` numpy arrays;
* :func:`run_chip_filtered` / :func:`run_hierarchy_filtered` — replay
  a precomputed :class:`~repro.kernels.l1filter.L1FilterRecord`,
  skipping the L1 stage entirely (the replaying model's own L1 caches
  are left untouched).

Every path is **bit-identical** to the per-access simulator: same
``ChipStats`` / ``HierarchyStats``, same cache contents and per-cache
``CacheStats``, same controller/affinity state, same update-bus bytes.
The differential tests in ``tests/kernels/test_batch.py`` enforce this
on synthetic and Olden traces.

Two regimes:

* **fast** — when the chip is built from the exact standard component
  types with no probe and no prefetchers, the whole L2 + coherence +
  controller pipeline is inlined over precomputed skewed-cache slot
  rows (:func:`repro.kernels.arrays.skew_slot_matrix`), with counters
  accumulated in locals and flushed once.  The inline transcriptions
  mirror ``CoherentL2s.access``, ``SkewedAssociativeCache._install``,
  ``MigrationController.observe`` and ``SplitMechanism.process``
  statement for statement; the controller additionally exploits the
  invariant ``engine.active_core == controller._previous_subset ==
  current_subset()`` (checked up front) to skip subset recomputation
  on the ~97% of steps that cannot move the filters' signs.
* **generic** — any probe, prefetcher, or non-standard component type
  falls back to a fused loop over the real component methods.  This is
  still faster than per-``Access`` simulation (no namedtuple churn,
  hoisted lookups) and keeps probe event streams exact: the replay
  fires ``probe.on_access`` at every sample threshold and at each
  record's access number, which reproduces the per-access sampling
  because references that hit in the L1s never change the sampled
  counters (see ``docs/performance.md``).
"""

from __future__ import annotations

import numpy as np

from repro.caches.base import EvictedLine
from repro.caches.skewed import SkewedAssociativeCache, skew_hash
from repro.core.affinity_store import AffinityCache, UnboundedAffinityStore
from repro.core.controller import MigrationController
from repro.core.mechanism import RWindowEntry, SplitMechanism
from repro.core.transition_filter import TransitionFilter
from repro.kernels.arrays import as_trace_arrays, skew_slot_matrix
from repro.kernels.l1filter import L1FilterRecord, _l1_view, l1_miss_stream
from repro.multicore.coherence import CoherentL2s
from repro.multicore.migration import MigrationEngine

_CHUNK = 1 << 16
_UNSET = object()  # "cache never accessed here" sentinel for last_eviction


# -- public entry points ------------------------------------------------


def run_chip_arrays(chip, addresses, kinds, instructions):
    """Run a whole trace, given as parallel arrays, through ``chip``."""
    addresses, kinds, instructions = as_trace_arrays(
        addresses, kinds, instructions
    )
    line_size = chip.config.caches.line_size
    if (
        _chip_fast_eligible(chip)
        and _l1_view(chip.il1) is not None
        and _l1_view(chip.dl1) is not None
    ):
        rec_index, rec_line, rec_kind = l1_miss_stream(
            chip.il1, chip.dl1, addresses, kinds, line_size
        )
        max_instruction = (
            int(instructions.max()) if len(instructions) else -1
        )
        # Package the miss stream as a record and replay it through the
        # shape-specialized kernel (repro.kernels.specialize) — exact,
        # and the config branches are hoisted out of the per-miss loop.
        from repro.kernels.specialize import replay_chip_specialized

        caches = chip.config.caches
        record = L1FilterRecord(
            line_size=caches.line_size,
            il1_bytes=caches.il1_bytes,
            dl1_bytes=caches.dl1_bytes,
            l1_ways=caches.l1_ways,
            accesses=len(addresses),
            max_instruction=max_instruction,
            indices=np.asarray(rec_index, dtype=np.int64),
            lines=np.asarray(rec_line, dtype=np.int64),
            kinds=np.asarray(rec_kind, dtype=np.uint8),
        )
        replay_chip_specialized(chip, record)
    else:
        _run_chip_generic(chip, addresses, kinds, instructions, line_size)
    return chip.stats


def run_chip_filtered(chip, record: L1FilterRecord):
    """Replay an L1-filter record through ``chip``'s L2 + controller.

    The chip's own L1 caches are bypassed (their contents and stats do
    not change); everything downstream — ``ChipStats`` included —
    matches running the original trace exactly.
    """
    record.require_match(chip.config.caches)
    if _chip_fast_eligible(chip):
        # Shape-specialized replay (repro.kernels.specialize): same
        # exactness contract as _replay_chip_fast, but the kernel is
        # generated per chip shape with every config branch hoisted out
        # of the loop.  The inline fast path remains as the reference
        # twin the differential tests replay against.
        from repro.kernels.specialize import replay_chip_specialized

        replay_chip_specialized(chip, record)
    else:
        _replay_chip_generic(chip, record)
    return chip.stats


def run_hierarchy_arrays(hierarchy, addresses, kinds, instructions):
    """Run a whole trace, given as parallel arrays, through the
    single-core baseline hierarchy."""
    addresses, kinds, instructions = as_trace_arrays(
        addresses, kinds, instructions
    )
    line_size = hierarchy.config.line_size
    if (
        _hierarchy_fast_eligible(hierarchy)
        and _l1_view(hierarchy.il1) is not None
        and _l1_view(hierarchy.dl1) is not None
    ):
        _, rec_line, rec_kind = l1_miss_stream(
            hierarchy.il1, hierarchy.dl1, addresses, kinds, line_size
        )
        max_instruction = (
            int(instructions.max()) if len(instructions) else -1
        )
        _replay_hierarchy_fast(
            hierarchy, rec_line, rec_kind, len(addresses), max_instruction
        )
    else:
        _run_hierarchy_generic(
            hierarchy, addresses, kinds, instructions, line_size
        )
    return hierarchy.stats


def run_hierarchy_filtered(hierarchy, record: L1FilterRecord):
    """Replay an L1-filter record through the baseline's L2."""
    record.require_match(hierarchy.config)
    if _hierarchy_fast_eligible(hierarchy):
        # Shape-specialized replay (repro.kernels.specialize): exact
        # same contract as _replay_hierarchy_fast, which remains below
        # as the reference twin the differential tests replay against.
        from repro.kernels.specialize import replay_hierarchy_specialized

        replay_hierarchy_specialized(hierarchy, record)
    else:
        _replay_hierarchy_generic(hierarchy, record)
    return hierarchy.stats


# -- fast-path eligibility ----------------------------------------------


def _chip_fast_eligible(chip) -> bool:
    """Whether the inline fast replay is exact for this chip.

    Exact component types only (a subclass may override any method the
    inline loop transcribes), no probes anywhere, no prefetchers, FIFO
    R-windows, and the active-core/controller-subset invariant intact.
    """
    if chip.probe is not None or chip.prefetchers is not None:
        return False
    engine = chip.engine
    if type(engine) is not MigrationEngine or engine.probe is not None:
        return False
    l2s = chip.l2s
    if type(l2s) is not CoherentL2s or l2s.probe is not None:
        return False
    caches = l2s.caches
    first = caches[0]
    for cache in caches:
        if (
            type(cache) is not SkewedAssociativeCache
            or cache.num_sets != first.num_sets
            or cache.ways != first.ways
        ):
            return False
    if not chip.config.migration_enabled:
        return True
    controller = chip.controller
    if (
        type(controller) is not MigrationController
        or controller.probe is not None
    ):
        return False
    if type(controller.store) not in (AffinityCache, UnboundedAffinityStore):
        return False
    for mechanism in controller.mechanisms():
        if (
            type(mechanism) is not SplitMechanism
            or mechanism.probe is not None
            or mechanism.lru_window
            or mechanism.store is not controller.store
        ):
            return False
    for transition_filter in [
        controller.filter_x,
        *controller.filter_y.values(),
    ]:
        if (
            type(transition_filter) is not TransitionFilter
            or transition_filter.probe is not None
        ):
            return False
    # The inline controller skips subset recomputation on steps that
    # cannot change it, which is only sound under this invariant (it
    # holds for any chip driven solely through the public run paths).
    subset = controller.current_subset()
    if controller._previous_subset != subset or engine.active_core != subset:
        return False
    return True


def _hierarchy_fast_eligible(hierarchy) -> bool:
    return (
        hierarchy.probe is None
        and hierarchy.prefetcher is None
        and type(hierarchy.l2) is SkewedAssociativeCache
    )


# -- generic paths (always exact, any component mix) --------------------


def _run_chip_generic(chip, addresses, kinds, instructions, line_size):
    """Fused per-access loop over the real chip methods."""
    stats = chip.stats
    probe = chip.probe
    il1_access = chip.il1.access
    dl1_access = chip.dl1.access
    miss_request = chip._miss_request
    l2_access = chip._l2_access
    controller_step = chip._controller_step
    record_store = chip.bus_traffic.record_store
    n = len(addresses)
    for start in range(0, n, _CHUNK):
        chunk_lines = (addresses[start : start + _CHUNK] // line_size).tolist()
        chunk_kinds = kinds[start : start + _CHUNK].tolist()
        chunk_instructions = instructions[start : start + _CHUNK].tolist()
        for line, kind, instruction in zip(
            chunk_lines, chunk_kinds, chunk_instructions
        ):
            stats.accesses += 1
            if instruction >= stats.instructions:
                stats.instructions = instruction + 1
            if probe is not None:
                probe.on_access(stats.accesses)
            if kind == 1:  # LOAD
                if dl1_access(line):
                    continue
                stats.dl1_misses += 1
                miss_request(line, False)
            elif kind == 0:  # FETCH
                if il1_access(line):
                    continue
                stats.il1_misses += 1
                miss_request(line, False)
            else:  # STORE
                l1_hit = dl1_access(line, True, False)
                record_store()
                l2_miss = l2_access(line, True)
                if not l1_hit:
                    stats.dl1_misses += 1
                    controller_step(line, l2_miss)


def _apply_chip_record(
    chip, stats, line, rkind, line_size
) -> None:
    """One miss-stream record's post-L1 effects, via real chip methods."""
    if rkind >= 2:  # store (write-through reached the L2)
        chip.bus_traffic.record_store()
        l2_miss = chip._l2_access(line, True)
        if rkind == 3:
            stats.dl1_misses += 1
            chip._controller_step(line, l2_miss)
    else:
        if rkind == 0:
            stats.il1_misses += 1
        else:
            stats.dl1_misses += 1
        chip.bus_traffic.record_l1_fill(line_size)
        l2_miss = chip._l2_access(line, False)
        chip._controller_step(line, l2_miss)


def _replay_chip_generic(chip, record: L1FilterRecord):
    """Replay a record via real chip methods (probes/prefetchers OK)."""
    stats = chip.stats
    probe = chip.probe
    line_size = chip.config.caches.line_size
    lines = record.lines.tolist()
    rkinds = record.kinds.tolist()
    n = record.accesses
    if probe is None:
        for line, rkind in zip(lines, rkinds):
            _apply_chip_record(chip, stats, line, rkind, line_size)
    else:
        # Sample thresholds crossed between two records fall on L1-hit
        # references, which change nothing the probe samples — firing
        # on_access at exactly the threshold reproduces the per-access
        # clock.  Each record then gets on_access at its own access
        # number *before* its effects, as in MultiCoreChip.access.
        on_access = probe.on_access
        for index, line, rkind in zip(
            record.indices.tolist(), lines, rkinds
        ):
            access_number = index + 1
            while probe._next_sample < access_number:
                on_access(probe._next_sample)
            on_access(access_number)
            _apply_chip_record(chip, stats, line, rkind, line_size)
        if n:
            while probe._next_sample <= n:
                on_access(probe._next_sample)
            if probe.now < n:
                on_access(n)
    stats.accesses += n
    if record.max_instruction >= stats.instructions:
        stats.instructions = record.max_instruction + 1


def _run_hierarchy_generic(hierarchy, addresses, kinds, instructions, line_size):
    """Fused per-access loop over the real hierarchy methods."""
    stats = hierarchy.stats
    probe = hierarchy.probe
    il1_access = hierarchy.il1.access
    dl1_access = hierarchy.dl1.access
    l2_read = hierarchy._l2_read
    l2_write = hierarchy._l2_write
    n = len(addresses)
    for start in range(0, n, _CHUNK):
        chunk_lines = (addresses[start : start + _CHUNK] // line_size).tolist()
        chunk_kinds = kinds[start : start + _CHUNK].tolist()
        chunk_instructions = instructions[start : start + _CHUNK].tolist()
        for line, kind, instruction in zip(
            chunk_lines, chunk_kinds, chunk_instructions
        ):
            stats.accesses += 1
            if instruction >= stats.instructions:
                stats.instructions = instruction + 1
            if probe is not None:
                probe.on_access(stats.accesses)
            if kind == 1:  # LOAD
                if not dl1_access(line):
                    stats.l1_misses += 1
                    l2_read(line)
            elif kind == 0:  # FETCH
                if not il1_access(line):
                    stats.l1_misses += 1
                    l2_read(line)
            else:  # STORE
                if not dl1_access(line, True, False):
                    stats.l1_misses += 1
                l2_write(line)


def _apply_hierarchy_record(hierarchy, stats, line, rkind) -> None:
    if rkind >= 2:
        if rkind == 3:
            stats.l1_misses += 1
        hierarchy._l2_write(line)
    else:
        stats.l1_misses += 1
        hierarchy._l2_read(line)


def _replay_hierarchy_generic(hierarchy, record: L1FilterRecord):
    stats = hierarchy.stats
    probe = hierarchy.probe
    lines = record.lines.tolist()
    rkinds = record.kinds.tolist()
    n = record.accesses
    if probe is None:
        for line, rkind in zip(lines, rkinds):
            _apply_hierarchy_record(hierarchy, stats, line, rkind)
    else:
        on_access = probe.on_access
        for index, line, rkind in zip(
            record.indices.tolist(), lines, rkinds
        ):
            access_number = index + 1
            while probe._next_sample < access_number:
                on_access(probe._next_sample)
            on_access(access_number)
            _apply_hierarchy_record(hierarchy, stats, line, rkind)
        if n:
            while probe._next_sample <= n:
                on_access(probe._next_sample)
            if probe.now < n:
                on_access(n)
    stats.accesses += n
    if record.max_instruction >= stats.instructions:
        stats.instructions = record.max_instruction + 1


# -- fast paths (inline transcriptions, exact standard types only) ------


def _replay_hierarchy_fast(
    hierarchy, rec_line, rec_kind, n_accesses, max_instruction
):
    """Inline replay of the baseline's skewed L2."""
    l2 = hierarchy.l2
    slot_rows = skew_slot_matrix(
        np.asarray(rec_line, dtype=np.int64), l2.num_sets, l2.ways
    ).tolist()
    cache_lines = l2._lines
    cache_dirty = l2._dirty
    cache_time = l2._time
    clock = l2._clock
    accesses = hits = evictions = writebacks = 0
    last_eviction = _UNSET
    for line, rkind, srow in zip(rec_line, rec_kind, slot_rows):
        write = rkind >= 2
        clock += 1
        accesses += 1
        hit_slot = -1
        for slot in srow:
            if cache_lines[slot] == line:
                hit_slot = slot
                break
        if hit_slot >= 0:
            hits += 1
            cache_time[hit_slot] = clock
            if write:
                cache_dirty[hit_slot] = True
            last_eviction = None
            continue
        victim = -1
        victim_time = None
        for slot in srow:
            if cache_lines[slot] is None:
                victim = slot
                victim_time = None
                break
            slot_time = cache_time[slot]
            if victim_time is None or slot_time < victim_time:
                victim = slot
                victim_time = slot_time
        victim_line = cache_lines[victim]
        if victim_line is not None:
            evictions += 1
            victim_dirty = cache_dirty[victim]
            if victim_dirty:
                writebacks += 1
            last_eviction = EvictedLine(victim_line, victim_dirty)
        else:
            last_eviction = None
        cache_lines[victim] = line
        cache_dirty[victim] = write
        cache_time[victim] = clock
    stats = l2.stats
    stats.accesses += accesses
    stats.hits += hits
    stats.misses += accesses - hits
    stats.evictions += evictions
    stats.writebacks += writebacks
    l2._clock = clock
    if last_eviction is not _UNSET:
        l2.last_eviction = last_eviction
    hstats = hierarchy.stats
    hstats.accesses += n_accesses
    hstats.l1_misses += (
        rec_kind.count(0) + rec_kind.count(1) + rec_kind.count(3)
    )
    hstats.l2_accesses += accesses
    hstats.l2_misses += accesses - hits
    if max_instruction >= hstats.instructions:
        hstats.instructions = max_instruction + 1


def _make_store_ops(store, slot_of, slots_shared):
    """Inline read/write/flush closures over the shared affinity store.

    ``slots_shared`` is true when the store is an :class:`AffinityCache`
    with the *same* geometry as the L2s, so the precomputed L2 slot row
    of the current record doubles as the store's probe sequence (the
    skew hash depends only on (line, way, index_bits)).  Window
    evictions may write back lines that are no longer the current
    record; ``slot_of`` memoises rows per line, with a scalar
    ``skew_hash`` fallback for lines never seen this replay (window
    leftovers from a previous run).
    """
    if type(store) is UnboundedAffinityStore:
        values = store._values
        get = values.get
        reads = writes = misses = 0

        def read(line, srow):
            nonlocal reads, misses
            reads += 1
            value = get(line)
            if value is None:
                misses += 1
            return value

        def write(line, value):
            nonlocal writes
            writes += 1
            values[line] = value

        def flush():
            store.reads += reads
            store.writes += writes
            store.misses += misses

        return read, write, flush

    cache_lines = store._lines
    cache_values = store._values
    cache_time = store._time
    num_sets = store._num_sets
    index_bits = store._index_bits
    way_range = range(store.ways)
    clock = store._clock
    reads = writes = misses = evictions = 0

    def rows_of(line):
        row = slot_of.get(line) if slots_shared else None
        if row is None:
            row = [
                way * num_sets + skew_hash(line, way, index_bits)
                for way in way_range
            ]
        return row

    def read(line, srow):
        nonlocal reads, misses, clock
        reads += 1
        clock += 1
        row = srow if slots_shared else rows_of(line)
        for slot in row:
            if cache_lines[slot] == line:
                cache_time[slot] = clock
                return cache_values[slot]
        misses += 1
        return None

    def write(line, value):
        nonlocal writes, evictions, clock
        writes += 1
        clock += 1
        row = rows_of(line)
        for slot in row:
            if cache_lines[slot] == line:
                cache_values[slot] = value
                cache_time[slot] = clock
                return
        victim = -1
        victim_time = None
        for slot in row:
            if cache_lines[slot] is None:
                victim = slot
                victim_time = None
                break
            slot_time = cache_time[slot]
            if victim_time is None or slot_time < victim_time:
                victim = slot
                victim_time = slot_time
        if cache_lines[victim] is not None:
            evictions += 1
        cache_lines[victim] = line
        cache_values[victim] = value
        cache_time[victim] = clock

    def flush():
        store.reads += reads
        store.writes += writes
        store.misses += misses
        store.evictions += evictions
        store._clock = clock

    return read, write, flush


def _make_mechanism_step(mechanism, store_read, store_write):
    """Inline FIFO-mode ``SplitMechanism.process`` (exact or literal
    window-affinity mode; LRU windows are excluded by eligibility)."""
    window_size = mechanism.window_size
    lo = -(1 << (mechanism.affinity_bits - 1))
    hi = (1 << (mechanism.affinity_bits - 1)) - 1
    delta_counter = mechanism.delta
    d_lo = delta_counter._lo
    d_hi = delta_counter._hi
    d_value = delta_counter._value
    wa_counter = mechanism.window_affinity
    w_lo = wa_counter._lo
    w_hi = wa_counter._hi
    w_value = wa_counter._value
    track = mechanism.track_true_window_affinity
    fifo = mechanism._fifo
    append = fifo.append
    popleft = fifo.popleft
    make_entry = RWindowEntry
    references = 0

    def process(line, srow):
        nonlocal d_value, w_value, references
        references += 1
        delta = d_value
        o_e = store_read(line, srow)
        if o_e is None:
            # Store miss: force A_e = 0 by taking O_e = saturate(Δ).
            o_e = lo if delta < lo else hi if delta > hi else delta
        value = o_e - delta
        a_e = lo if value < lo else hi if value > hi else value
        value = o_e - 2 * delta
        i_e = lo if value < lo else hi if value > hi else value
        append(make_entry(line, i_e))
        if len(fifo) > window_size:
            evicted = popleft()
            value = evicted[1] + 2 * delta
            o_f = lo if value < lo else hi if value > hi else value
            store_write(evicted[0], o_f)
            value = w_value + (o_e - o_f)
        else:
            value = w_value + a_e  # window still filling
        w_value = w_lo if value < w_lo else w_hi if value > w_hi else value
        step = 1 if w_value >= 0 else -1
        value = d_value + step
        d_value = d_lo if value < d_lo else d_hi if value > d_hi else value
        if track:
            value = w_value + len(fifo) * step
            w_value = (
                w_lo if value < w_lo else w_hi if value > w_hi else value
            )
        return a_e

    def flush():
        delta_counter._value = d_value
        wa_counter._value = w_value
        mechanism.references += references

    return process, flush


def _make_controller_step(controller, slot_of, slots_shared):
    """Inline sampled-reference step of ``MigrationController.observe``.

    Unsampled references reduce to a references count in the caller
    (they cannot move any filter, hence cannot change the subset under
    the checked invariant).  Returns ``(step, flush)``; ``step`` returns
    the post-update subset, which is also the migration target.
    """
    cfg = controller.config
    four_way = cfg.num_subsets == 4
    l2_filtering = cfg.l2_filtering
    filter_x = controller.filter_x
    fx_update = filter_x.update
    fx_counter = filter_x._counter
    store_read, store_write, flush_store = _make_store_ops(
        controller.store, slot_of, slots_shared
    )
    mechanisms = controller.mechanisms()
    process_x, flush_x = _make_mechanism_step(
        mechanisms[0], store_read, store_write
    )
    flushes = [flush_x, flush_store]
    if four_way:
        filter_yp = controller.filter_y[+1]
        filter_yn = controller.filter_y[-1]
        fyp_update = filter_yp.update
        fyn_update = filter_yn.update
        fyp_counter = filter_yp._counter
        fyn_counter = filter_yn._counter
        process_yp, flush_yp = _make_mechanism_step(
            mechanisms[1], store_read, store_write
        )
        process_yn, flush_yn = _make_mechanism_step(
            mechanisms[2], store_read, store_write
        )
        flushes = [flush_x, flush_yp, flush_yn, flush_store]
    prev_subset = controller._previous_subset
    sampled = updates = transitions = 0

    def step(line, l2_miss, srow, residue):
        nonlocal prev_subset, sampled, updates, transitions
        sampled += 1
        if four_way and not (residue & 1):
            # Even sampling hash routes to Y[sign(F_X)] (section 3.6).
            if fx_counter._value >= 0:
                affinity = process_yp(line, srow)
                update = fyp_update
            else:
                affinity = process_yn(line, srow)
                update = fyn_update
        else:
            affinity = process_x(line, srow)
            update = fx_update
        if l2_miss or not l2_filtering:
            update(affinity)
            updates += 1
            if four_way:
                if fx_counter._value >= 0:
                    subset = 0 if fyp_counter._value >= 0 else 1
                else:
                    subset = 2 if fyn_counter._value >= 0 else 3
            else:
                subset = 0 if fx_counter._value >= 0 else 1
            if subset != prev_subset:
                transitions += 1
                prev_subset = subset
        return prev_subset

    def flush(references):
        stats = controller.stats
        stats.references += references
        stats.sampled_references += sampled
        stats.filter_updates += updates
        stats.transitions += transitions
        controller._previous_subset = prev_subset
        for flush_one in flushes:
            flush_one()

    return step, flush


def _replay_chip_fast(
    chip, rec_line, rec_kind, n_accesses, max_instruction
):
    """Inline replay of coherent L2s + migration controller."""
    line_size = chip.config.caches.line_size
    caches = chip.l2s.caches
    num_cores = len(caches)
    first = caches[0]
    slot_rows = skew_slot_matrix(
        np.asarray(rec_line, dtype=np.int64), first.num_sets, first.ways
    ).tolist()
    lines_by_core = [cache._lines for cache in caches]
    dirty_by_core = [cache._dirty for cache in caches]
    time_by_core = [cache._time for cache in caches]
    clock_by_core = [cache._clock for cache in caches]
    acc_by_core = [0] * num_cores
    hit_by_core = [0] * num_cores
    evict_by_core = [0] * num_cores
    wb_by_core = [0] * num_cores
    last_by_core = [_UNSET] * num_cores
    inactive_cores = [
        tuple(other for other in range(num_cores) if other != core)
        for core in range(num_cores)
    ]
    coh_hits = coh_misses = coh_forwards = coh_l3 = 0
    coh_writebacks = coh_updates = 0

    engine = chip.engine
    active = engine.active_core
    migrations = 0
    ctrl_references = 0

    migration_on = chip.config.migration_enabled
    slot_of = {}
    if migration_on:
        controller = chip.controller
        store = controller.store
        slots_shared = (
            type(store) is AffinityCache
            and store._num_sets == first.num_sets
            and store.ways == first.ways
        )
        sampled_step, flush_controller = _make_controller_step(
            controller, slot_of, slots_shared
        )
        sampling = controller.config.sampling
        residues = sampling.sampled_residues
        modulus = sampling.modulus
    else:
        slots_shared = False
        residues = None
        modulus = 31

    # The active core's state lives in locals; migrations are rare
    # (tens per run), so the flush-and-reload below is off the hot path.
    a_lines = lines_by_core[active]
    a_dirty = dirty_by_core[active]
    a_time = time_by_core[active]
    a_clock = clock_by_core[active]
    a_acc = a_hit = a_evict = a_wb = 0
    a_last = _UNSET
    a_inactive = inactive_cores[active]

    for line, rkind, srow in zip(rec_line, rec_kind, slot_rows):
        write = rkind >= 2
        # -- CoherentL2s.access(active, line, write), inlined ----------
        a_clock += 1
        a_acc += 1
        hit_slot = -1
        for slot in srow:
            if a_lines[slot] == line:
                hit_slot = slot
                break
        if hit_slot >= 0:
            a_hit += 1
            coh_hits += 1
            a_time[hit_slot] = a_clock
            if write:
                a_dirty[hit_slot] = True
            a_last = None
            l2_miss = False
        else:
            coh_misses += 1
            victim = -1
            victim_time = None
            for slot in srow:
                if a_lines[slot] is None:
                    victim = slot
                    victim_time = None
                    break
                slot_time = a_time[slot]
                if victim_time is None or slot_time < victim_time:
                    victim = slot
                    victim_time = slot_time
            victim_line = a_lines[victim]
            if victim_line is not None:
                a_evict += 1
                victim_dirty = a_dirty[victim]
                if victim_dirty:
                    a_wb += 1
                    coh_writebacks += 1
                a_last = EvictedLine(victim_line, victim_dirty)
            else:
                a_last = None
            a_lines[victim] = line
            a_dirty[victim] = write
            a_time[victim] = a_clock
            # A modified copy elsewhere forwards (and is cleaned);
            # clean copies may not forward — the L3 serves the miss.
            forwarded = False
            for core in a_inactive:
                other_lines = lines_by_core[core]
                for slot in srow:
                    if other_lines[slot] == line:
                        if dirty_by_core[core][slot]:
                            dirty_by_core[core][slot] = False
                            forwarded = True
                        break
                if forwarded:
                    break
            if forwarded:
                coh_forwards += 1
            else:
                coh_l3 += 1
            l2_miss = True
        if write:
            # Demote inactive copies (update-bus store broadcast).
            for core in a_inactive:
                other_lines = lines_by_core[core]
                for slot in srow:
                    if other_lines[slot] == line:
                        dirty_by_core[core][slot] = False
                        coh_updates += 1
                        break
        # -- controller request (all kinds but STORE_L1_HIT) -----------
        if rkind == 2:
            continue
        if migration_on:
            ctrl_references += 1
            residue = line % modulus
            if residues is None or residue in residues:
                if slots_shared:
                    # Only sampled lines ever enter the R-windows, so
                    # only they can come back as store write-backs.
                    slot_of[line] = srow
                target = sampled_step(line, l2_miss, srow, residue)
                if target != active:
                    migrations += 1
                    clock_by_core[active] = a_clock
                    acc_by_core[active] += a_acc
                    hit_by_core[active] += a_hit
                    evict_by_core[active] += a_evict
                    wb_by_core[active] += a_wb
                    last_by_core[active] = a_last
                    active = target
                    a_lines = lines_by_core[active]
                    a_dirty = dirty_by_core[active]
                    a_time = time_by_core[active]
                    a_clock = clock_by_core[active]
                    a_acc = a_hit = a_evict = a_wb = 0
                    a_last = last_by_core[active]
                    a_inactive = inactive_cores[active]

    clock_by_core[active] = a_clock
    acc_by_core[active] += a_acc
    hit_by_core[active] += a_hit
    evict_by_core[active] += a_evict
    wb_by_core[active] += a_wb
    last_by_core[active] = a_last

    for core in range(num_cores):
        cache = caches[core]
        stats = cache.stats
        stats.accesses += acc_by_core[core]
        stats.hits += hit_by_core[core]
        stats.misses += acc_by_core[core] - hit_by_core[core]
        stats.evictions += evict_by_core[core]
        stats.writebacks += wb_by_core[core]
        cache._clock = clock_by_core[core]
        if last_by_core[core] is not _UNSET:
            cache.last_eviction = last_by_core[core]
    records = len(rec_kind)
    coherence = chip.l2s.stats
    coherence.accesses += records
    coherence.hits += coh_hits
    coherence.misses += coh_misses
    coherence.forwards += coh_forwards
    coherence.l3_fetches += coh_l3
    coherence.writebacks += coh_writebacks
    coherence.inactive_updates += coh_updates
    engine.active_core = active
    engine.migrations += migrations
    if migration_on:
        flush_controller(ctrl_references)
    fetch_misses = rec_kind.count(0)
    load_misses = rec_kind.count(1)
    store_hits = rec_kind.count(2)
    store_misses = rec_kind.count(3)
    stats = chip.stats
    stats.accesses += n_accesses
    if max_instruction >= stats.instructions:
        stats.instructions = max_instruction + 1
    stats.il1_misses += fetch_misses
    stats.dl1_misses += load_misses + store_misses
    stats.l1_miss_requests += fetch_misses + load_misses + store_misses
    stats.l2_accesses += records
    stats.l2_misses += coh_misses
    stats.migrations += migrations
    bus = chip.bus_traffic
    bus.record_l1_fill(line_size, fetch_misses + load_misses)
    bus.record_store(store_hits + store_misses)
