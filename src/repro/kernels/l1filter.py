"""The L1-filter kernel: simulate the mirrored L1 pair once, replay often.

Section 2.3's strict L1 mirroring means every chip variant — the
single-core baseline, the migrating chip, every controller ablation —
sees the *same* IL1/DL1 behaviour on a given trace: "the L1 miss
frequency is the same as if execution had not migrated".  The expensive
part of that stage (LRU bookkeeping per reference) is therefore shared
work, and this module factors it out:

* :func:`l1_miss_stream` runs one trace through an IL1/DL1 pair with
  the exact semantics of ``MultiCoreChip.access`` (write-through,
  non-write-allocate DL1) and emits one compact record per L2-bound
  reference;
* :class:`L1FilterRecord` packages the miss stream as numpy arrays,
  with npz persistence under the :mod:`repro.runtime` cache so a sweep
  computes it once per ``(trace, L1 geometry, code version)``;
* :func:`ensure_l1_filter` / :func:`l1_filter_job` are the cache-aware
  entry points sweep jobs call.

Record kinds (the ``kinds`` array):

====================  ===========================================
:data:`FETCH_MISS`    IL1 miss — L2 read + controller request
:data:`LOAD_MISS`     DL1 miss — L2 read + controller request
:data:`STORE_L1_HIT`  store that hit the DL1 — L2 write only
:data:`STORE_L1_MISS` store that missed — L2 write + controller request
====================  ===========================================

Store records carry the DL1 hit/miss split because the two differ
downstream: only missing stores are L1-miss *requests* the migration
controller observes (section 4.2).
"""

from __future__ import annotations

import os
import sys
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults
from repro.caches.base import EvictedLine
from repro.obs import trace_context
from repro.obs.metrics import process_counter
from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.hierarchy import CoreCacheConfig
from repro.caches.set_assoc import SetAssociativeCache
from repro.runtime.cache import QUARANTINE_DIR, ResultCache
from repro.runtime.health import health_counter
from repro.runtime.job import Job

#: miss-stream record kinds
FETCH_MISS = 0
LOAD_MISS = 1
STORE_L1_HIT = 2
STORE_L1_MISS = 3

#: records carrying an L1-miss request (everything but STORE_L1_HIT)
REQUEST_KINDS = (FETCH_MISS, LOAD_MISS, STORE_L1_MISS)

_RECORD_VERSION = 1
_CHUNK = 1 << 16
_UNSET = object()  # "cache never allocated" sentinel for last_eviction


def _l1_view(cache):
    """``(sets, mask, ways)`` triple unifying the two L1 implementations.

    A fully-associative cache is a set-associative cache with one set;
    returns ``None`` for unknown cache types (callers then fall back to
    the per-access path).  Exact subclasses only: a subclass may
    override ``access``.
    """
    if type(cache) is SetAssociativeCache:
        return cache._sets, cache._mask, cache.ways
    if type(cache) is FullyAssociativeCache:
        return [cache._lines], 0, cache.capacity_lines
    return None


def l1_miss_stream(
    il1, dl1, addresses: np.ndarray, kinds: np.ndarray, line_size: int
) -> "tuple[list[int], list[int], list[int]]":
    """Run the mirrored L1 pair over a whole trace.

    Returns ``(indices, lines, record_kinds)`` — one entry per
    reference that reaches the L2 (0-based access index, cache-line
    address, record kind).  Cache contents, ``CacheStats`` and
    ``last_eviction`` of ``il1``/``dl1`` end up exactly as after the
    equivalent sequence of per-access ``cache.access`` calls.
    """
    il1_view = _l1_view(il1)
    dl1_view = _l1_view(dl1)
    if il1_view is None or dl1_view is None:
        raise TypeError(
            f"unsupported L1 cache types: {type(il1).__name__}/"
            f"{type(dl1).__name__}"
        )
    isets, imask, iways = il1_view
    dsets, dmask, dways = dl1_view
    move = OrderedDict.move_to_end
    pop = OrderedDict.popitem
    rec_index: "list[int]" = []
    rec_line: "list[int]" = []
    rec_kind: "list[int]" = []
    append_index = rec_index.append
    append_line = rec_line.append
    append_kind = rec_kind.append
    i_accesses = i_hits = i_evictions = i_writebacks = 0
    d_accesses = d_hits = d_evictions = d_writebacks = 0
    i_last = d_last = _UNSET
    n = len(addresses)
    index = 0
    for start in range(0, n, _CHUNK):
        chunk = addresses[start : start + _CHUNK] // line_size
        chunk_lines = chunk.tolist()
        chunk_kinds = kinds[start : start + _CHUNK].tolist()
        # Set indices for the whole chunk in two numpy passes (one when
        # the IL1/DL1 geometries agree, the common case) instead of a
        # scalar ``line & mask`` per reference.
        d_idx = (chunk & np.int64(dmask)).tolist()
        i_idx = d_idx if imask == dmask else (chunk & np.int64(imask)).tolist()
        for line, kind, di, ii in zip(chunk_lines, chunk_kinds, d_idx, i_idx):
            if kind == 1:  # LOAD
                d_accesses += 1
                cache_set = dsets[di]
                if line in cache_set:
                    d_hits += 1
                    move(cache_set, line)
                    d_last = None
                else:
                    if len(cache_set) >= dways:
                        victim, victim_dirty = pop(cache_set, False)
                        d_evictions += 1
                        if victim_dirty:
                            d_writebacks += 1
                        d_last = EvictedLine(victim, victim_dirty)
                    else:
                        d_last = None
                    cache_set[line] = False
                    append_index(index)
                    append_line(line)
                    append_kind(1)
            elif kind == 0:  # FETCH
                i_accesses += 1
                cache_set = isets[ii]
                if line in cache_set:
                    i_hits += 1
                    move(cache_set, line)
                    i_last = None
                else:
                    if len(cache_set) >= iways:
                        victim, victim_dirty = pop(cache_set, False)
                        i_evictions += 1
                        if victim_dirty:
                            i_writebacks += 1
                        i_last = EvictedLine(victim, victim_dirty)
                    else:
                        i_last = None
                    cache_set[line] = False
                    append_index(index)
                    append_line(line)
                    append_kind(0)
            else:  # STORE: write-through, non-write-allocate DL1
                d_accesses += 1
                cache_set = dsets[di]
                if line in cache_set:
                    d_hits += 1
                    move(cache_set, line)
                    cache_set[line] = True
                    append_index(index)
                    append_line(line)
                    append_kind(2)
                else:
                    append_index(index)
                    append_line(line)
                    append_kind(3)
                d_last = None
            index += 1
    stats = il1.stats
    stats.accesses += i_accesses
    stats.hits += i_hits
    stats.misses += i_accesses - i_hits
    stats.evictions += i_evictions
    stats.writebacks += i_writebacks
    stats = dl1.stats
    stats.accesses += d_accesses
    stats.hits += d_hits
    stats.misses += d_accesses - d_hits
    stats.evictions += d_evictions
    stats.writebacks += d_writebacks
    if i_last is not _UNSET:
        il1.last_eviction = i_last
    if d_last is not _UNSET:
        dl1.last_eviction = d_last
    return rec_index, rec_line, rec_kind


@dataclass
class L1FilterRecord:
    """Compact miss-stream of one trace through one L1 geometry.

    Replaying a record through ``run_filtered`` reproduces the exact
    L2/controller behaviour (and ``ChipStats``) of running the raw
    trace, without touching the replaying model's L1 caches.
    """

    line_size: int
    il1_bytes: int
    dl1_bytes: int
    l1_ways: int
    accesses: int  #: raw trace length the record was filtered from
    max_instruction: int  #: highest instruction index seen; -1 if empty
    indices: np.ndarray  #: int64, 0-based access index of each record
    lines: np.ndarray  #: int64 cache-line addresses
    kinds: np.ndarray  #: uint8 record kinds

    @property
    def records(self) -> int:
        return len(self.lines)

    @property
    def il1_misses(self) -> int:
        return int(np.count_nonzero(self.kinds == FETCH_MISS))

    @property
    def dl1_misses(self) -> int:
        kinds = self.kinds
        return int(
            np.count_nonzero(kinds == LOAD_MISS)
            + np.count_nonzero(kinds == STORE_L1_MISS)
        )

    def matches(self, config: CoreCacheConfig) -> bool:
        """Whether this record was filtered through ``config``'s L1s."""
        return (
            self.line_size == config.line_size
            and self.il1_bytes == config.il1_bytes
            and self.dl1_bytes == config.dl1_bytes
            and self.l1_ways == config.l1_ways
        )

    def require_match(self, config: CoreCacheConfig) -> None:
        if not self.matches(config):
            raise ValueError(
                "L1-filter record geometry "
                f"(line={self.line_size}, il1={self.il1_bytes}, "
                f"dl1={self.dl1_bytes}, ways={self.l1_ways}) does not match "
                f"the model's L1 config {config!r}"
            )

    # -- persistence ----------------------------------------------------

    def save(self, path: "str | os.PathLike[str]") -> Path:
        """Atomically persist as npz (same idiom as the result cache)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=str(path.parent), prefix=".tmp-", suffix=".npz", delete=False
        )
        try:
            with handle:
                np.savez_compressed(
                    handle,
                    version=np.int64(_RECORD_VERSION),
                    line_size=np.int64(self.line_size),
                    il1_bytes=np.int64(self.il1_bytes),
                    dl1_bytes=np.int64(self.dl1_bytes),
                    l1_ways=np.int64(self.l1_ways),
                    accesses=np.int64(self.accesses),
                    max_instruction=np.int64(self.max_instruction),
                    indices=self.indices,
                    lines=self.lines,
                    kinds=self.kinds,
                )
            faults.corrupt_file("sidecar.save.bytes", handle.name)
            faults.fire("sidecar.save")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: "str | os.PathLike[str]") -> "L1FilterRecord":
        with np.load(path) as data:
            version = int(data["version"])
            if version != _RECORD_VERSION:
                raise ValueError(
                    f"unsupported L1-filter record version {version} "
                    f"(expected {_RECORD_VERSION})"
                )
            return cls(
                line_size=int(data["line_size"]),
                il1_bytes=int(data["il1_bytes"]),
                dl1_bytes=int(data["dl1_bytes"]),
                l1_ways=int(data["l1_ways"]),
                accesses=int(data["accesses"]),
                max_instruction=int(data["max_instruction"]),
                indices=data["indices"],
                lines=data["lines"],
                kinds=data["kinds"].astype(np.uint8),
            )


def build_l1_filter(
    addresses,
    kinds,
    instructions,
    config: "CoreCacheConfig | None" = None,
) -> L1FilterRecord:
    """Filter one trace through fresh L1s built from ``config``."""
    from repro.kernels.arrays import as_trace_arrays

    config = config or CoreCacheConfig()
    addresses, kinds, instructions = as_trace_arrays(
        addresses, kinds, instructions
    )
    il1 = config.make_l1(config.il1_bytes)
    dl1 = config.make_l1(config.dl1_bytes)
    rec_index, rec_line, rec_kind = l1_miss_stream(
        il1, dl1, addresses, kinds, config.line_size
    )
    return L1FilterRecord(
        line_size=config.line_size,
        il1_bytes=config.il1_bytes,
        dl1_bytes=config.dl1_bytes,
        l1_ways=config.l1_ways,
        accesses=len(addresses),
        max_instruction=int(instructions.max()) if len(instructions) else -1,
        indices=np.asarray(rec_index, dtype=np.int64),
        lines=np.asarray(rec_line, dtype=np.int64),
        kinds=np.asarray(rec_kind, dtype=np.uint8),
    )


# -- runtime-cache integration ------------------------------------------
#
# The miss stream itself lives in an npz *sidecar* next to the runtime
# cache's JSON artifact: <cache>/<code-version>/<job-hash>.l1f.npz.
# Both are keyed by the job's content hash and the code fingerprint, so
# editing simulator code invalidates records exactly like payloads.


def l1_filter_job_for(
    name: str, scale: float = 1.0, seed: "int | None" = None
) -> Job:
    """The runtime job computing one workload's L1-filter record."""
    return Job.create(
        "repro.kernels.l1filter:l1_filter_job",
        label=f"l1filter/{name}",
        name=name,
        scale=scale,
        seed=seed,
    )


def _sidecar_path(cache: ResultCache, job: Job) -> Path:
    return cache.generation_dir / f"{job.hash}.l1f.npz"


# -- in-process record reuse --------------------------------------------
#
# A sweep process (serial mode, a service worker replaying many
# variants, the population coordinator) calls ``ensure_l1_filter`` once
# per variant; re-reading the same ``.l1f.npz`` each time costs an npz
# decompress *and* forfeits the per-record precompute memoised on the
# record object.  Successfully *loaded* records are therefore kept in a
# small process-level LRU keyed by the sidecar's on-disk identity
# ``(path, inode, mtime_ns, size)`` — a rebuilt or replaced sidecar
# (atomic ``os.replace`` mints a new inode) can never be served stale,
# and the build path never populates the cache, so the
# quarantine-and-rebuild recovery contract is unchanged.

_RECORD_CACHE_CAP = 8
_OPEN_RECORDS: "OrderedDict[tuple, L1FilterRecord]" = OrderedDict()


def _open_record_key(sidecar: Path) -> "tuple | None":
    """The sidecar's identity key, or ``None`` when it is not a file."""
    try:
        st = os.stat(sidecar)
    except OSError:
        return None
    return (str(sidecar), st.st_ino, st.st_mtime_ns, st.st_size)


def _remember_open_record(key: tuple, record: L1FilterRecord) -> None:
    _OPEN_RECORDS[key] = record
    _OPEN_RECORDS.move_to_end(key)
    while len(_OPEN_RECORDS) > _RECORD_CACHE_CAP:
        _OPEN_RECORDS.popitem(last=False)
        process_counter("l1filter.record_cache.evictions").inc()


def drop_open_records() -> None:
    """Forget every in-process record (test isolation)."""
    _OPEN_RECORDS.clear()


def _record_payload(record: L1FilterRecord) -> "dict[str, object]":
    return {
        "accesses": record.accesses,
        "records": record.records,
        "il1_misses": record.il1_misses,
        "dl1_misses": record.dl1_misses,
        "max_instruction": record.max_instruction,
        "references": record.accesses,
    }


def ensure_l1_filter(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    cache: "ResultCache | None" = None,
) -> "tuple[L1FilterRecord, bool]":
    """Load or build the L1-filter record for one workload.

    Returns ``(record, cached)`` — ``cached`` is ``True`` when the
    record came from the on-disk sidecar (i.e. the L1 stage was *not*
    re-simulated).  On a build, both the sidecar and the runtime-cache
    JSON payload are persisted (best effort), so subsequent sweep
    variants and re-submitted jobs hit the cache.
    """
    from repro.experiments.workloads import workload

    cache = cache or ResultCache()
    job = l1_filter_job_for(name, scale=scale, seed=seed)
    sidecar = _sidecar_path(cache, job)
    key = _open_record_key(sidecar)
    if key is not None:
        open_record = _OPEN_RECORDS.get(key)
        if open_record is not None:
            _OPEN_RECORDS.move_to_end(key)
            process_counter("l1filter.record_cache.hits").inc()
            return open_record, True
        try:
            with trace_context.phase("l1filter.load", workload=name):
                record = L1FilterRecord.load(sidecar)
            process_counter("l1filter.record_cache.loads").inc()
            _remember_open_record(key, record)
            return record, True
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            # Corrupt or stale sidecar (torn write survived a crash, bit
            # rot, old record version): quarantine it next to corrupt
            # cache artifacts, count the fault, rebuild below.  Because
            # saves are atomic this is never hit by a concurrent
            # *in-progress* write — only by bytes that were bad on disk.
            _quarantine_sidecar(cache, sidecar, exc)
            health_counter("recovery.sidecar.rebuilt").inc()
    spec = workload(name, scale=scale, seed=seed)
    with trace_context.phase("l1filter.build", workload=name):
        record = build_l1_filter(*spec.arrays())
    try:
        record.save(sidecar)
    except OSError as exc:
        # Read-only/full cache dir: compute-through, like the cache.
        health_counter("fault.sidecar.write_failed").inc()
        print(
            f"[l1filter] sidecar write failed ({exc}); "
            "serving the in-memory record",
            file=sys.stderr,
        )
    else:
        cache.put(job, _record_payload(record))
    return record, False


def _quarantine_sidecar(
    cache: ResultCache, sidecar: Path, exc: Exception
) -> None:
    health_counter("fault.sidecar.corrupt").inc()
    target = (
        cache.root
        / QUARANTINE_DIR
        / f"{sidecar.parent.name}-{sidecar.name}.corrupt"
    )
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(sidecar, target)
        where = f"quarantined to {target}"
    except OSError:
        where = "left in place (quarantine move failed)"
    print(
        f"[l1filter] corrupt sidecar {sidecar.name}: {exc}; {where}; "
        "rebuilding",
        file=sys.stderr,
    )


def l1_filter_job(
    name: str, scale: float = 1.0, seed: "int | None" = None
) -> "dict[str, object]":
    """Runtime job function: materialise one L1-filter record.

    The payload summarises the record; the miss stream itself is the
    npz sidecar (an artifact, like obs traces — it is written even when
    payload caching is disabled, because it *is* the job's product).
    """
    record, _cached = ensure_l1_filter(name, scale=scale, seed=seed)
    return _record_payload(record)
