"""Batched simulation kernels: the array-native fast path.

The per-access simulator (``MultiCoreChip.access``) is convenient but
pays Python interpreter overhead for every memory reference.  This
package drives the same models from parallel numpy arrays in chunks,
with attribute lookups hoisted and the line-size division vectorised —
**bit-identical** to the per-access path (enforced by the differential
tests in ``tests/kernels``).

Layers:

* :mod:`repro.kernels.arrays` — vectorised skew-hash slot computation
  and trace-array helpers.
* :mod:`repro.kernels.l1filter` — the L1-filter kernel: simulate the
  mirrored IL1/DL1 pair once per (trace, L1 geometry) and emit a
  compact miss-stream :class:`~repro.kernels.l1filter.L1FilterRecord`
  that every chip variant in a sweep replays (paper section 2.3: "the
  L1 miss frequency is the same as if execution had not migrated", so
  the L1 stage is identical across baseline/migration/ablations).
* :mod:`repro.kernels.batch` — the batched chip and hierarchy drivers
  behind ``MultiCoreChip.run_arrays`` / ``run_filtered`` and
  ``SingleCoreHierarchy.run_arrays`` / ``run_filtered``.

See ``docs/performance.md`` for the architecture and measured numbers.
"""

from repro.kernels.arrays import skew_slot_matrix, trace_to_arrays
from repro.kernels.batch import (
    run_chip_arrays,
    run_chip_filtered,
    run_hierarchy_arrays,
    run_hierarchy_filtered,
)
from repro.kernels.l1filter import (
    L1FilterRecord,
    build_l1_filter,
    ensure_l1_filter,
    l1_filter_job,
    l1_filter_job_for,
)

__all__ = [
    "L1FilterRecord",
    "build_l1_filter",
    "ensure_l1_filter",
    "l1_filter_job",
    "l1_filter_job_for",
    "run_chip_arrays",
    "run_chip_filtered",
    "run_hierarchy_arrays",
    "run_hierarchy_filtered",
    "skew_slot_matrix",
    "trace_to_arrays",
]
