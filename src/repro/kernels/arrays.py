"""Array-level helpers for the batched fast path.

Two jobs live here: turning ``Access`` streams into the parallel
``(addresses, kinds, instructions)`` numpy arrays the kernels consume,
and computing skewed-cache slot candidates for whole line arrays at
once.  :func:`skew_slot_matrix` is the vectorised twin of
:func:`repro.caches.skewed.skew_hash` — the scalar function is the
specification, the matrix version must agree bit-for-bit (property
tested in ``tests/kernels/test_arrays.py``).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.caches.skewed import _GOLDEN64
from repro.traces.trace import Access

_MASK64 = 0xFFFFFFFFFFFFFFFF
_WAY_MIX = 0xD1B54A32D192ED03


def trace_to_arrays(
    accesses: "Iterable[Access]",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Materialise an access stream as parallel numpy arrays.

    Returns ``(addresses int64, kinds int8, instructions int64)`` in
    trace order — the input format of the batched run methods.
    """
    addresses: "list[int]" = []
    kinds: "list[int]" = []
    instructions: "list[int]" = []
    for access in accesses:
        addresses.append(access.address)
        kinds.append(access.kind)
        instructions.append(access.instruction)
    return (
        np.asarray(addresses, dtype=np.int64),
        np.asarray(kinds, dtype=np.int8),
        np.asarray(instructions, dtype=np.int64),
    )


def as_trace_arrays(
    addresses, kinds, instructions
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Validate and coerce one trace's parallel arrays.

    Length mismatches are programming errors and raise ``ValueError``;
    dtypes are normalised so the kernels can rely on integer semantics.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    kinds = np.asarray(kinds, dtype=np.int8)
    instructions = np.asarray(instructions, dtype=np.int64)
    if addresses.ndim != 1 or kinds.ndim != 1 or instructions.ndim != 1:
        raise ValueError("trace arrays must be one-dimensional")
    if not (len(addresses) == len(kinds) == len(instructions)):
        raise ValueError(
            f"trace arrays disagree on length: {len(addresses)} addresses, "
            f"{len(kinds)} kinds, {len(instructions)} instructions"
        )
    return addresses, kinds, instructions


def set_index_array(lines, num_sets: int) -> np.ndarray:
    """Set indices for each line in a set-associative cache.

    ``result[i] == lines[i] & (num_sets - 1)`` — the vectorised twin of
    the ``line & mask`` routing in
    :class:`repro.caches.set_assoc.SetAssociativeCache` and the L1 pair
    of :func:`repro.kernels.l1filter.l1_miss_stream`.  ``num_sets`` must
    be a power of two (as every cache here enforces); masking on int64
    matches Python's ``&`` exactly for the non-negative line addresses
    the simulators use.
    """
    lines = np.asarray(lines, dtype=np.int64)
    return lines & np.int64(num_sets - 1)


def tag_array(lines, num_sets: int) -> np.ndarray:
    """Tags (``line >> index_bits``) for each line; the vectorised twin
    of the scalar tag split in the skewed hash.  Arithmetic shift on
    int64 matches Python's ``>>`` for negatives."""
    lines = np.asarray(lines, dtype=np.int64)
    return lines >> np.int64(num_sets.bit_length() - 1)


def skew_slot_matrix(lines, num_sets: int, ways: int) -> np.ndarray:
    """Flat slot candidates for each line in a skewed cache.

    ``result[i, w] == w * num_sets + skew_hash(lines[i], w, index_bits)``
    — exactly the probe sequence of
    :meth:`repro.caches.skewed.SkewedAssociativeCache._find`, computed
    for the whole array in a handful of numpy passes.  All arithmetic
    runs in ``uint64`` so the multiplies wrap exactly like the scalar
    function's explicit ``& 0xFFFF...`` masking.
    """
    lines = np.asarray(lines, dtype=np.int64)
    index_bits = num_sets.bit_length() - 1
    mask = np.uint64(num_sets - 1)
    unsigned = lines.astype(np.uint64)
    index = unsigned & mask
    out = np.empty((len(lines), ways), dtype=np.int64)
    out[:, 0] = index.astype(np.int64)
    if ways > 1:
        # Arithmetic shift on int64 matches Python's >> for negatives;
        # the uint64 cast then matches the scalar masking.
        tag = (lines >> index_bits).astype(np.uint64)
        shift_bits = np.uint64(index_bits)
        for way in range(1, ways):
            mixed = tag * np.uint64(_GOLDEN64) + np.uint64(
                (way * _WAY_MIX) & _MASK64
            )
            rotation = (way * 7) % 64
            if rotation:
                mixed = (mixed >> np.uint64(rotation)) | (
                    mixed << np.uint64(64 - rotation)
                )
            slot = (index ^ (mixed & mask) ^ ((mixed >> shift_bits) & mask)) & mask
            out[:, way] = slot.astype(np.int64) + way * num_sets
    return out
