"""Trace-specialized chip replay kernels (generated per chip shape).

The batched fast path in :mod:`repro.kernels.batch` is one inline loop
covering *every* eligible chip: each per-miss iteration still pays for
configuration branches (L2 filtering on/off, 2-way vs 4-way routing,
store kind, exact-window tracking) and closure indirection.  This
module generates the inner loop **per chip shape** instead: every
configuration branch is hoisted out of the loop at code-generation
time, the mechanism/filter/store state lives in flat locals, L2
residency is tracked in per-core ``line -> slot`` dicts (an O(1) hit
check replacing the per-way tag scan), and per-record clocks are
derived from the loop index instead of incremented (the LRU timestamp
of record ``i`` in a reign is ``cbase + i``).

The **shape signature** — the dispatch key — is::

    (l2_ways, migration_enabled, four_way, store_kind, slots_shared,
     l2_filtering, track_window_affinity)

Generated kernels are cached in a module dispatch table
(:func:`dispatch_table`); per-record precomputation (slot-matrix
columns, store/control byte streams) is memoised on the record object,
so sweeps replaying one record through many variants pay it once.

Exactness contract: replaying through a specialized kernel leaves the
chip in **bit-identical** state to the per-access seed simulator —
``ChipStats``, per-cache ``CacheStats`` and contents, controller,
affinity store, filters, and update-bus bytes (the differential suite
in ``tests/kernels`` enforces this).  The kernel also exposes a slice
API (:func:`replay_chip_slice`): replaying ``[0, n)`` in any partition
of consecutive slices is state-identical to one full replay, which is
the property segment-parallel replay (:mod:`repro.kernels.segmented`)
is built on.
"""

from __future__ import annotations

import numpy as np

from repro.caches.base import EvictedLine
from repro.caches.skewed import skew_hash
from repro.core.affinity_store import AffinityCache
from repro.core.mechanism import RWindowEntry
from repro.kernels.arrays import skew_slot_matrix
from repro.kernels.batch import _UNSET, _chip_fast_eligible

_PRECOMP_ATTR = "_specialized_precomp"

#: signature -> (compiled kernel, generated source)
_KERNELS: dict = {}


def specializable(chip) -> bool:
    """Whether a specialized kernel is exact for this chip (same
    eligibility as the inline fast path)."""
    return _chip_fast_eligible(chip)


def chip_signature(chip) -> tuple:
    """The shape signature keying the kernel dispatch table."""
    first = chip.l2s.caches[0]
    if not chip.config.migration_enabled:
        return (first.ways, False, False, "none", False, False, False)
    controller = chip.controller
    cfg = controller.config
    store = controller.store
    if type(store) is AffinityCache:
        store_kind = "cache"
        slots_shared = (
            store._num_sets == first.num_sets and store.ways == first.ways
        )
    else:
        store_kind = "unbounded"
        slots_shared = False
    return (
        first.ways,
        True,
        cfg.num_subsets == 4,
        store_kind,
        slots_shared,
        cfg.l2_filtering,
        controller.mechanism_x.track_true_window_affinity,
    )


def dispatch_table() -> "dict[tuple, str]":
    """Generated kernels so far this process: signature -> source."""
    return {sig: source for sig, (_, source) in _KERNELS.items()}


# -- code generation ----------------------------------------------------


def _indent(block: str, by: int) -> str:
    pad = " " * by
    return "\n".join(pad + line if line else line for line in block.split("\n"))


def _victim_scan(ways: int) -> str:
    """Unrolled skewed-cache victim selection over the slot row."""
    names = [f"sa{w}" for w in range(ways)]
    lines = [f"{names[w]} = s{w}[i]" for w in range(ways)]
    if ways == 1:
        lines.append(f"victim = {names[0]}")
        return "\n".join(lines)
    for w, name in enumerate(names):
        kw = "if" if w == 0 else "elif"
        lines.append(f"{kw} a_lines[{name}] is None:")
        lines.append(f"    victim = {name}")
    lines.append("else:")
    lines.append(f"    victim = {names[0]}")
    lines.append(f"    vt = a_time[{names[0]}]")
    for w, name in enumerate(names[1:], start=1):
        last = w == ways - 1
        lines.append(f"    t = a_time[{name}]")
        lines.append("    if t < vt:")
        if last:
            lines.append(f"        victim = {name}")
        else:
            lines.append(f"        victim = {name}; vt = t")
    return "\n".join(lines)


def _store_read(prefix: str, store_kind: str) -> str:
    default = (
        f"o_e = ({prefix}_lo if delta < {prefix}_lo else "
        f"{prefix}_hi if delta > {prefix}_hi else delta)"
    )
    if store_kind == "unbounded":
        return f"""st_reads += 1
o_e = ub_get(line)
if o_e is None:
    st_misses += 1
    {default}"""
    return f"""st_reads += 1
st_clock += 1
sslot = st_idx_get(line)
if sslot is not None:
    st_time[sslot] = st_clock
    o_e = st_values[sslot]
else:
    st_misses += 1
    {default}"""


def _store_write(store_kind: str, slots_shared: bool) -> str:
    if store_kind == "unbounded":
        return """st_writes += 1
ub_values[evicted[0]] = o_f"""
    if slots_shared:
        row_source = """erow = evicted[2]
    if erow is None:
        erow = [wy * st_num_sets + skew_hash(eline, wy, st_index_bits)
                for wy in st_way_range]"""
    else:
        row_source = """erow = [wy * st_num_sets + skew_hash(eline, wy, st_index_bits)
            for wy in st_way_range]"""
    return f"""st_writes += 1
st_clock += 1
eline = evicted[0]
wslot = st_idx_get(eline)
if wslot is not None:
    st_values[wslot] = o_f
    st_time[wslot] = st_clock
else:
    {row_source}
    svictim = -1
    svictim_time = None
    for s in erow:
        if st_lines[s] is None:
            svictim = s
            svictim_time = None
            break
        s_t = st_time[s]
        if svictim_time is None or s_t < svictim_time:
            svictim = s
            svictim_time = s_t
    vl = st_lines[svictim]
    if vl is not None:
        st_evictions += 1
        del st_idx[vl]
    st_lines[svictim] = eline
    st_values[svictim] = o_f
    st_time[svictim] = st_clock
    st_idx[eline] = svictim"""


_MIGRATION_FLUSH = """if subset != active:
    transitions += 1
    migrations += 1
    clock_fl[active] = cbase + i
    acc_fl[active] += i + 1 - reign_start
    miss_fl[active] += a_miss
    evict_fl[active] += a_evict
    wb_fl[active] += a_wb
    last_fl[active] = a_lastev if a_lastmiss == i else None
    active = subset
    a_lines = lines_by_core[active]
    a_dirty = dirty_by_core[active]
    a_time = time_by_core[active]
    a_idx = idx_by_core[active]
    a_idx_get = a_idx.get
    a_miss = a_evict = a_wb = 0
    a_lastev = last_fl[active]
    a_lastmiss = -2
    reign_start = i + 1
    cbase = clock_fl[active] - reign_start + 1
    occ = tuple(cc for cc in range(num_cores)
                if cc != active and idx_by_core[cc])"""


def _filter_update(fp: str, subset_source: str, l2_filtering: bool) -> str:
    body = f"""{fp}_upd += 1
value = {fp}_v + a_e
{fp}_v = {fp}_lo if value < {fp}_lo else {fp}_hi if value > {fp}_hi else value
{subset_source}
updates += 1
{_MIGRATION_FLUSH}"""
    if l2_filtering:
        return "if l2_miss:\n" + _indent(body, 4)
    return body


def _mechanism_block(
    prefix: str,
    sig_track: bool,
    store_kind: str,
    slots_shared: bool,
    filter_source: str,
) -> str:
    p = prefix
    entry = f"(line, i_e, row)" if slots_shared else "make_entry(line, i_e)"
    if sig_track:
        step_source = f"""if {p}_w >= 0:
    step = 1
    value = {p}_d + 1
else:
    step = -1
    value = {p}_d - 1
{p}_d = {p}_dlo if value < {p}_dlo else {p}_dhi if value > {p}_dhi else value
value = {p}_w + {p}_len * step
{p}_w = {p}_wlo if value < {p}_wlo else {p}_whi if value > {p}_whi else value"""
    else:
        step_source = f"""if {p}_w >= 0:
    value = {p}_d + 1
else:
    value = {p}_d - 1
{p}_d = {p}_dlo if value < {p}_dlo else {p}_dhi if value > {p}_dhi else value"""
    return f"""delta = {p}_d
{_store_read(p, store_kind)}
value = o_e - delta
a_e = {p}_lo if value < {p}_lo else {p}_hi if value > {p}_hi else value
value = o_e - 2 * delta
i_e = {p}_lo if value < {p}_lo else {p}_hi if value > {p}_hi else value
{p}_append({entry})
if {p}_len >= {p}_ws:
    evicted = {p}_popleft()
    value = evicted[1] + 2 * delta
    o_f = {p}_lo if value < {p}_lo else {p}_hi if value > {p}_hi else value
{_indent(_store_write(store_kind, slots_shared), 4)}
    value = {p}_w + (o_e - o_f)
else:
    {p}_len += 1
    value = {p}_w + a_e
{p}_w = {p}_wlo if value < {p}_wlo else {p}_whi if value > {p}_whi else value
{step_source}
{filter_source}"""


_SUBSET_X_4WAY = """if fx_v >= 0:
    if fx_ls != 1:
        fx_sc += 1
        fx_ls = 1
    subset = 0 if fp_v >= 0 else 1
else:
    if fx_ls != -1:
        fx_sc += 1
        fx_ls = -1
    subset = 2 if fn_v >= 0 else 3"""

_SUBSET_X_2WAY = """if fx_v >= 0:
    if fx_ls != 1:
        fx_sc += 1
        fx_ls = 1
    subset = 0
else:
    if fx_ls != -1:
        fx_sc += 1
        fx_ls = -1
    subset = 1"""


def _subset_y(fp: str) -> str:
    return f"""if {fp}_v >= 0:
    if {fp}_ls != 1:
        {fp}_sc += 1
        {fp}_ls = 1
else:
    if {fp}_ls != -1:
        {fp}_sc += 1
        {fp}_ls = -1
if fx_v >= 0:
    subset = 0 if fp_v >= 0 else 1
else:
    subset = 2 if fn_v >= 0 else 3"""


def _mech_locals(prefix: str, index: int, slots_shared: bool) -> str:
    p = prefix
    source = f"""_m{index} = mechs[{index}]
{p}_ws = _m{index}.window_size
{p}_lo = -(1 << (_m{index}.affinity_bits - 1))
{p}_hi = (1 << (_m{index}.affinity_bits - 1)) - 1
{p}_dlo = _m{index}.delta._lo
{p}_dhi = _m{index}.delta._hi
{p}_d = _m{index}.delta._value
{p}_wlo = _m{index}.window_affinity._lo
{p}_whi = _m{index}.window_affinity._hi
{p}_w = _m{index}.window_affinity._value
{p}_fifo = _m{index}._fifo
{p}_append = {p}_fifo.append
{p}_popleft = {p}_fifo.popleft
{p}_len = len({p}_fifo)"""
    if slots_shared:
        source += f"""
if {p}_len:
    entries = [(e[0], e[1], None) for e in {p}_fifo]
    {p}_fifo.clear()
    {p}_fifo.extend(entries)"""
    return source


def _mech_flush(prefix: str, index: int, refs: str, slots_shared: bool) -> str:
    p = prefix
    source = f"""mechs[{index}].delta._value = {p}_d
mechs[{index}].window_affinity._value = {p}_w
mechs[{index}].references += {refs}"""
    if slots_shared:
        source += f"""
if {p}_fifo:
    entries = [make_entry(e[0], e[1]) for e in {p}_fifo]
    {p}_fifo.clear()
    {p}_fifo.extend(entries)"""
    return source


def _filter_locals(fp: str, expr: str) -> str:
    return f"""_f_{fp} = {expr}
{fp}_lo = _f_{fp}._counter._lo
{fp}_hi = _f_{fp}._counter._hi
{fp}_v = _f_{fp}._counter._value
{fp}_upd = 0
{fp}_sc = 0
{fp}_ls = _f_{fp}._last_sign"""


def _filter_flush(fp: str) -> str:
    return f"""_f_{fp}._counter._value = {fp}_v
_f_{fp}.updates += {fp}_upd
_f_{fp}.sign_changes += {fp}_sc
_f_{fp}._last_sign = {fp}_ls"""


def _build_source(sig: tuple) -> str:
    (ways, migration, four_way, store_kind, slots_shared,
     l2_filtering, track) = sig

    cols_unpack = ", ".join(f"s{w}" for w in range(ways))
    if ways == 1:
        cols_unpack += ","

    # --- per-record L2 section of the loop body -----------------------
    demote = """if occ:
    for core in occ:
        oslot = idx_by_core[core].get(line)
        if oslot is not None:
            dirty_by_core[core][oslot] = False
            coh_updates += 1"""
    if migration:
        hit_tail = "if not c:\n    continue\nl2_miss = False"
        miss_tail = "if not c:\n    continue\nl2_miss = True"
        if slots_shared:
            row_hit = "(" + ", ".join(f"s{w}[i]" for w in range(ways)) + (
                ",)" if ways == 1 else ")"
            )
            row_miss = "(" + ", ".join(f"sa{w}" for w in range(ways)) + (
                ",)" if ways == 1 else ")"
            )
            hit_tail += f"\nrow = {row_hit}"
            miss_tail += f"\nrow = {row_miss}"
    else:
        hit_tail = "continue"
        miss_tail = "continue"

    loop_vars = "line, w, c" if migration else "line, w"
    zip_args = "seq_line, seq_w, seq_c" if migration else "seq_line, seq_w"

    l2_body = f"""slot = a_idx_get(line)
if slot is not None:
    a_time[slot] = cbase + i
    if w:
        a_dirty[slot] = True
{_indent(demote, 8)}
{_indent(hit_tail, 4)}
else:
    a_miss += 1
{_indent(_victim_scan(ways), 4)}
    victim_line = a_lines[victim]
    if victim_line is not None:
        a_evict += 1
        vd = a_dirty[victim]
        if vd:
            a_wb += 1
            coh_writebacks += 1
        a_lastev = (victim_line, vd)
        del a_idx[victim_line]
    else:
        a_lastev = None
    a_lastmiss = i
    a_lines[victim] = line
    a_dirty[victim] = True if w else False
    a_time[victim] = cbase + i
    a_idx[line] = victim
    if occ:
        forwarded = False
        for core in occ:
            oslot = idx_by_core[core].get(line)
            if oslot is not None:
                if dirty_by_core[core][oslot]:
                    dirty_by_core[core][oslot] = False
                    forwarded = True
                    break
        if forwarded:
            coh_forwards += 1
        else:
            coh_l3 += 1
        if w:
            for core in occ:
                oslot = idx_by_core[core].get(line)
                if oslot is not None:
                    dirty_by_core[core][oslot] = False
                    coh_updates += 1
    else:
        coh_l3 += 1
{_indent(miss_tail, 4)}"""

    # --- sampled controller step --------------------------------------
    if not migration:
        ctrl_body = ""
    elif four_way:
        block_x = _mechanism_block(
            "x", track, store_kind, slots_shared,
            _filter_update("fx", _SUBSET_X_4WAY, l2_filtering),
        )
        block_p = _mechanism_block(
            "p", track, store_kind, slots_shared,
            _filter_update("fp", _subset_y("fp"), l2_filtering),
        )
        block_m = _mechanism_block(
            "m", track, store_kind, slots_shared,
            _filter_update("fn", _subset_y("fn"), l2_filtering),
        )
        ctrl_body = f"""if c == 1:
{_indent(block_x, 4)}
elif fx_v >= 0:
    p_refs += 1
{_indent(block_p, 4)}
else:
    m_refs += 1
{_indent(block_m, 4)}"""
    else:
        ctrl_body = _mechanism_block(
            "x", track, store_kind, slots_shared,
            _filter_update("fx", _SUBSET_X_2WAY, l2_filtering),
        )

    # --- controller locals + flush ------------------------------------
    if migration:
        prefixes = [("x", 0), ("p", 1), ("m", 2)] if four_way else [("x", 0)]
        filters = (
            [("fx", "controller.filter_x"),
             ("fp", "controller.filter_y[+1]"),
             ("fn", "controller.filter_y[-1]")]
            if four_way
            else [("fx", "controller.filter_x")]
        )
        if store_kind == "cache":
            store_locals = """st_lines = store._lines
st_values = store._values
st_time = store._time
st_num_sets = store._num_sets
st_index_bits = store._index_bits
st_way_range = range(store.ways)
st_clock = store._clock
st_idx = {}
for slot, ln in enumerate(st_lines):
    if ln is not None:
        st_idx[ln] = slot
st_idx_get = st_idx.get
st_reads = st_writes = st_misses = st_evictions = 0"""
            store_flush = """store.reads += st_reads
store.writes += st_writes
store.misses += st_misses
store.evictions += st_evictions
store._clock = st_clock"""
        else:
            store_locals = """ub_values = store._values
ub_get = ub_values.get
st_reads = st_writes = st_misses = 0"""
            store_flush = """store.reads += st_reads
store.writes += st_writes
store.misses += st_misses"""
        ctrl_locals = "\n".join(
            ["controller = chip.controller",
             "store = controller.store",
             "mechs = controller.mechanisms()",
             store_locals]
            + [_mech_locals(p, idx, slots_shared) for p, idx in prefixes]
            + [_filter_locals(fp, expr) for fp, expr in filters]
            + (["p_refs = m_refs = 0"] if four_way else [])
            + ["updates = transitions = 0"]
        )
        mech_refs = (
            [("x", 0, "x_refs"), ("p", 1, "p_refs"), ("m", 2, "m_refs")]
            if four_way
            else [("x", 0, "x_refs")]
        )
        ctrl_flush = "\n".join(
            ["ctrl_references, sampled_count, x_refs = ctrl_counts",
             "cstats = controller.stats",
             "cstats.references += ctrl_references",
             "cstats.sampled_references += sampled_count",
             "cstats.filter_updates += updates",
             "cstats.transitions += transitions",
             "controller._previous_subset = active"]
            + [_mech_flush(p, idx, refs, slots_shared)
               for p, idx, refs in mech_refs]
            + [_filter_flush(fp) for fp, _ in filters]
            + [store_flush]
        )
    else:
        ctrl_locals = ""
        ctrl_flush = ""

    loop = f"""i = start - 1
for {loop_vars} in zip({zip_args}):
    i += 1
{_indent(l2_body, 4)}
{_indent(ctrl_body, 4)}"""

    source = f"""def _replay(chip, seq_line, seq_w, seq_c, cols, start, end,
            n_accesses, max_instruction, kind_counts, ctrl_counts):
    caches = chip.l2s.caches
    num_cores = len(caches)
    engine = chip.engine
    lines_by_core = [c._lines for c in caches]
    dirty_by_core = [c._dirty for c in caches]
    time_by_core = [c._time for c in caches]
    idx_by_core = []
    for cl in lines_by_core:
        d = {{}}
        for slot, ln in enumerate(cl):
            if ln is not None:
                d[ln] = slot
        idx_by_core.append(d)
    active = engine.active_core
    migrations = 0
    {cols_unpack} = cols
{_indent(ctrl_locals, 4)}
    acc_fl = [0] * num_cores
    miss_fl = [0] * num_cores
    evict_fl = [0] * num_cores
    wb_fl = [0] * num_cores
    clock_fl = [c._clock for c in caches]
    last_fl = [_UNSET] * num_cores
    coh_forwards = coh_l3 = coh_updates = coh_writebacks = 0
    a_lines = lines_by_core[active]
    a_dirty = dirty_by_core[active]
    a_time = time_by_core[active]
    a_idx = idx_by_core[active]
    a_idx_get = a_idx.get
    a_miss = a_evict = a_wb = 0
    a_lastev = None
    a_lastmiss = -2
    reign_start = start
    cbase = clock_fl[active] - reign_start + 1
    occ = tuple(c for c in range(num_cores) if c != active and idx_by_core[c])
{_indent(loop, 4)}
    if end > start:
        clock_fl[active] = cbase + end - 1
        acc_fl[active] += end - reign_start
        miss_fl[active] += a_miss
        evict_fl[active] += a_evict
        wb_fl[active] += a_wb
        if end > reign_start:
            last_fl[active] = a_lastev if a_lastmiss == end - 1 else None
    g_miss = sum(miss_fl)
    for core in range(num_cores):
        cache = caches[core]
        l2_stats = cache.stats
        l2_stats.accesses += acc_fl[core]
        l2_stats.hits += acc_fl[core] - miss_fl[core]
        l2_stats.misses += miss_fl[core]
        l2_stats.evictions += evict_fl[core]
        l2_stats.writebacks += wb_fl[core]
        cache._clock = clock_fl[core]
        lf = last_fl[core]
        if lf is not _UNSET:
            cache.last_eviction = EvictedLine(*lf) if lf is not None else None
    records_span = end - start
    coherence = chip.l2s.stats
    coherence.accesses += records_span
    coherence.hits += records_span - g_miss
    coherence.misses += g_miss
    coherence.forwards += coh_forwards
    coherence.l3_fetches += coh_l3
    coherence.writebacks += coh_writebacks
    coherence.inactive_updates += coh_updates
    engine.active_core = active
    engine.migrations += migrations
{_indent(ctrl_flush, 4)}
    fetch_misses, load_misses, store_hits, store_misses = kind_counts
    stats = chip.stats
    stats.accesses += n_accesses
    if max_instruction is not None and max_instruction >= stats.instructions:
        stats.instructions = max_instruction + 1
    stats.il1_misses += fetch_misses
    stats.dl1_misses += load_misses + store_misses
    stats.l1_miss_requests += fetch_misses + load_misses + store_misses
    stats.l2_accesses += records_span
    stats.l2_misses += g_miss
    stats.migrations += migrations
    bus = chip.bus_traffic
    bus.record_l1_fill(chip.config.caches.line_size,
                       fetch_misses + load_misses)
    bus.record_store(store_hits + store_misses)
"""
    return source


def _kernel_for(sig: tuple):
    entry = _KERNELS.get(sig)
    if entry is None:
        source = _build_source(sig)
        namespace = {
            "EvictedLine": EvictedLine,
            "skew_hash": skew_hash,
            "make_entry": RWindowEntry,
            "_UNSET": _UNSET,
        }
        exec(compile(source, f"<specialized {sig}>", "exec"), namespace)
        entry = (namespace["_replay"], source)
        _KERNELS[sig] = entry
    return entry[0]


# -- per-record precomputation (memoised on the record) -----------------


def _precompute(record, chip, sig):
    ways, migration, four_way = sig[0], sig[1], sig[2]
    first = chip.l2s.caches[0]
    num_sets = first.num_sets
    if migration:
        sampling = chip.controller.config.sampling
        sampling_key = (sampling.modulus, sampling.sampled_residues)
    else:
        sampling_key = None
    key = (num_sets, ways, migration, four_way, sampling_key)
    memo = record.__dict__.setdefault(_PRECOMP_ATTR, {})
    hit = memo.get(key)
    if hit is not None:
        return hit
    lines_np = record.lines
    kinds_np = record.kinds
    n = len(lines_np)
    smat = skew_slot_matrix(lines_np, num_sets, ways)
    cols = tuple(smat[:, w].tolist() for w in range(ways))
    w_b = (kinds_np >= 2).astype(np.uint8).tobytes()
    if migration:
        modulus, residues = sampling_key
        req = kinds_np != 2
        if residues is None:
            samp = req
            res = None
        else:
            res = lines_np % modulus
            samp = np.isin(res, np.fromiter(residues, dtype=np.int64)) & req
        ctrl = np.zeros(n, np.uint8)
        if four_way:
            if res is None:
                res = lines_np % modulus
            odd = (res & 1) == 1
            ctrl[samp & odd] = 1
            ctrl[samp & ~odd] = 2
        else:
            ctrl[samp] = 1
        c_b = ctrl.tobytes()
    else:
        c_b = None
    full_counts = _kind_counts(kinds_np, 0, n)
    out = (record.lines.tolist(), cols, w_b, c_b, full_counts)
    memo[key] = out
    return out


def _kind_counts(kinds_np, start, end):
    ks = kinds_np[start:end]
    return (
        int(np.count_nonzero(ks == 0)),
        int(np.count_nonzero(ks == 1)),
        int(np.count_nonzero(ks == 2)),
        int(np.count_nonzero(ks == 3)),
    )


# -- public replay API --------------------------------------------------


def replay_chip_slice(
    chip,
    record,
    start: int,
    end: int,
    *,
    n_accesses: "int | None" = None,
    max_instruction: "int | None" = None,
):
    """Replay records ``[start, end)`` of ``record`` through ``chip``.

    ``n_accesses`` is the number of *original trace accesses* this
    slice accounts for (``record.indices`` spans); it defaults to the
    whole record's access count, which is only correct for a full
    ``[0, n)`` replay.  ``max_instruction`` applies the record's
    instruction high-water mark — pass it on the final slice only
    (instruction counts are monotonic, so the final value is exact).

    Replaying ``[0, n)`` as any sequence of consecutive slices leaves
    the chip bit-identical to a single full replay.
    """
    record.require_match(chip.config.caches)
    if not _chip_fast_eligible(chip):
        raise ValueError(
            "chip is not specializable (probe, prefetcher, or "
            "non-standard component); use run_filtered instead"
        )
    n = len(record.lines)
    if not 0 <= start <= end <= n:
        raise ValueError(f"bad slice [{start}, {end}) of {n} records")
    sig = chip_signature(chip)
    kernel = _kernel_for(sig)
    rec_line, cols, w_b, c_b, full_counts = _precompute(record, chip, sig)
    full = start == 0 and end == n
    if full:
        seq_line, seq_w, seq_c = rec_line, w_b, c_b
        kind_counts = full_counts
    else:
        seq_line = rec_line[start:end]
        seq_w = w_b[start:end]
        seq_c = c_b[start:end] if c_b is not None else None
        kind_counts = _kind_counts(record.kinds, start, end)
    if n_accesses is None:
        n_accesses = record.accesses
    migration = sig[1]
    if migration:
        records_span = end - start
        ctrl_references = records_span - kind_counts[2]
        x_refs = seq_c.count(1)
        sampled = x_refs + (seq_c.count(2) if sig[2] else 0)
        ctrl_counts = (ctrl_references, sampled, x_refs)
    else:
        ctrl_counts = (0, 0, 0)
    kernel(
        chip, seq_line, seq_w, seq_c, cols, start, end,
        n_accesses, max_instruction, kind_counts, ctrl_counts,
    )
    return chip.stats


def replay_chip_specialized(chip, record):
    """Full-record replay through the chip's specialized kernel.

    Drop-in equivalent of the inline fast path: bit-identical final
    state, selected automatically by ``run_chip_filtered`` when the
    chip is eligible.
    """
    return replay_chip_slice(
        chip,
        record,
        0,
        len(record.lines),
        n_accesses=record.accesses,
        max_instruction=record.max_instruction,
    )
