"""Trace-specialized chip replay kernels (generated per chip shape).

The batched fast path in :mod:`repro.kernels.batch` is one inline loop
covering *every* eligible chip: each per-miss iteration still pays for
configuration branches (L2 filtering on/off, 2-way vs 4-way routing,
store kind, exact-window tracking) and closure indirection.  This
module generates the inner loop **per chip shape** instead: every
configuration branch is hoisted out of the loop at code-generation
time, the mechanism/filter/store state lives in flat locals, L2
residency is tracked in per-core ``line -> slot`` dicts (an O(1) hit
check replacing the per-way tag scan), and per-record clocks are
derived from the loop index instead of incremented (the LRU timestamp
of record ``i`` in a reign is ``cbase + i``).

The **shape signature** — the dispatch key — is::

    (l2_ways, migration_enabled, four_way, store_kind, slots_shared,
     l2_filtering, track_window_affinity, store_ways)

``store_ways`` is non-zero only for a finite affinity cache whose
geometry *differs* from the L2s: those kernels carry a second
precomputed slot matrix for the store, so affinity-cache misses on
R-window evictions never hash scalar-ly in the loop (when the
geometries agree — ``slots_shared`` — the L2 row is reused, as
before).

Generated kernels are cached in a module dispatch table
(:func:`dispatch_table`); per-record precomputation (slot-matrix
columns, store/control byte streams) is memoised on the record object
in a small LRU (:data:`_PRECOMP_CAP` geometry keys; evictions counted
on the process obs registry as ``kernels.precompute.evictions``), so
sweeps replaying one record through many variants pay it once while
long-lived service processes stay bounded.

The single-core baseline gets the same treatment:
:func:`replay_hierarchy_specialized` generates a per-associativity
kernel for the skewed L2 of ``SingleCoreHierarchy`` (dict-based
residency, index-derived clocks, precomputed slot columns) — the
inline loop in :mod:`repro.kernels.batch` stays as its reference twin.

Exactness contract: replaying through a specialized kernel leaves the
chip in **bit-identical** state to the per-access seed simulator —
``ChipStats``, per-cache ``CacheStats`` and contents, controller,
affinity store, filters, and update-bus bytes (the differential suite
in ``tests/kernels`` enforces this).  The kernel also exposes a slice
API (:func:`replay_chip_slice`): replaying ``[0, n)`` in any partition
of consecutive slices is state-identical to one full replay, which is
the property segment-parallel replay (:mod:`repro.kernels.segmented`)
is built on.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.caches.base import EvictedLine
from repro.caches.skewed import skew_hash
from repro.core.affinity_store import AffinityCache
from repro.core.mechanism import RWindowEntry
from repro.kernels.arrays import skew_slot_matrix
from repro.kernels.batch import (
    _UNSET,
    _chip_fast_eligible,
    _hierarchy_fast_eligible,
)
from repro.obs.metrics import process_counter

_PRECOMP_ATTR = "_specialized_precomp"
_BASE_ATTR = "_specialized_base"

#: geometry keys kept per record before LRU eviction
_PRECOMP_CAP = 8

#: signature -> (compiled kernel, generated source)
_KERNELS: dict = {}


def specializable(chip) -> bool:
    """Whether a specialized kernel is exact for this chip (same
    eligibility as the inline fast path)."""
    return _chip_fast_eligible(chip)


def chip_signature(chip) -> tuple:
    """The shape signature keying the kernel dispatch table."""
    first = chip.l2s.caches[0]
    if not chip.config.migration_enabled:
        return (first.ways, False, False, "none", False, False, False, 0)
    controller = chip.controller
    cfg = controller.config
    store = controller.store
    if type(store) is AffinityCache:
        store_kind = "cache"
        slots_shared = (
            store._num_sets == first.num_sets and store.ways == first.ways
        )
        store_ways = 0 if slots_shared else store.ways
    else:
        store_kind = "unbounded"
        slots_shared = False
        store_ways = 0
    return (
        first.ways,
        True,
        cfg.num_subsets == 4,
        store_kind,
        slots_shared,
        cfg.l2_filtering,
        controller.mechanism_x.track_true_window_affinity,
        store_ways,
    )


def dispatch_table() -> "dict[tuple, str]":
    """Generated kernels so far this process: signature -> source."""
    return {sig: source for sig, (_, source) in _KERNELS.items()}


# -- code generation ----------------------------------------------------


def _indent(block: str, by: int) -> str:
    pad = " " * by
    return "\n".join(pad + line if line else line for line in block.split("\n"))


def _victim_scan(ways: int) -> str:
    """Unrolled skewed-cache victim selection over the slot row."""
    names = [f"sa{w}" for w in range(ways)]
    lines = [f"{names[w]} = s{w}[i]" for w in range(ways)]
    if ways == 1:
        lines.append(f"victim = {names[0]}")
        return "\n".join(lines)
    for w, name in enumerate(names):
        kw = "if" if w == 0 else "elif"
        lines.append(f"{kw} a_lines[{name}] is None:")
        lines.append(f"    victim = {name}")
    lines.append("else:")
    lines.append(f"    victim = {names[0]}")
    lines.append(f"    vt = a_time[{names[0]}]")
    for w, name in enumerate(names[1:], start=1):
        last = w == ways - 1
        lines.append(f"    t = a_time[{name}]")
        lines.append("    if t < vt:")
        if last:
            lines.append(f"        victim = {name}")
        else:
            lines.append(f"        victim = {name}; vt = t")
    return "\n".join(lines)


def _store_read(prefix: str, store_kind: str) -> str:
    default = (
        f"o_e = ({prefix}_lo if delta < {prefix}_lo else "
        f"{prefix}_hi if delta > {prefix}_hi else delta)"
    )
    if store_kind == "unbounded":
        return f"""st_reads += 1
o_e = ub_get(line)
if o_e is None:
    st_misses += 1
    {default}"""
    return f"""st_reads += 1
st_clock += 1
sslot = st_idx_get(line)
if sslot is not None:
    st_time[sslot] = st_clock
    o_e = st_values[sslot]
else:
    st_misses += 1
    {default}"""


def _store_victim_scan(col_names: "list[str]") -> str:
    """Unrolled store victim selection over the entry's slot row
    (``s*``/``t*`` columns indexed by the FIFO entry's record index):
    first empty slot wins, else strict LRU with first-wins ties —
    exactly the generic ``erow`` loop's order."""
    names = [f"b{w}" for w in range(len(col_names))]
    lines = [
        f"{b} = {col}[ej]" for b, col in zip(names, col_names)
    ]
    if len(names) == 1:
        lines.append(f"svictim = {names[0]}")
        return "\n".join(lines)
    for w, name in enumerate(names):
        kw = "if" if w == 0 else "elif"
        lines.append(f"{kw} st_lines[{name}] is None:")
        lines.append(f"    svictim = {name}")
    lines.append("else:")
    lines.append(f"    svictim = {names[0]}")
    lines.append(f"    vt = st_time[{names[0]}]")
    for w, name in enumerate(names[1:], start=1):
        last = w == len(names) - 1
        lines.append(f"    t = st_time[{name}]")
        lines.append("    if t < vt:")
        if last:
            lines.append(f"        svictim = {name}")
        else:
            lines.append(f"        svictim = {name}; vt = t")
    return "\n".join(lines)


def _store_write(store_kind: str, col_names: "list[str] | None") -> str:
    if store_kind == "unbounded":
        return """st_writes += 1
ub_values[evicted[0]] = o_f"""
    # A finite store: every R-window entry carries the *record index*
    # of the reference that enqueued it, so a write miss probes the
    # precomputed slot columns directly (no per-entry row tuple); the
    # scalar skew_hash loop is only the fallback for entries inherited
    # from a previous replay.
    fallback = """erow = [wy * st_num_sets + skew_hash(eline, wy, st_index_bits)
        for wy in st_way_range]
svictim = -1
svictim_time = None
for s in erow:
    if st_lines[s] is None:
        svictim = s
        svictim_time = None
        break
    s_t = st_time[s]
    if svictim_time is None or s_t < svictim_time:
        svictim = s
        svictim_time = s_t"""
    return f"""st_writes += 1
st_clock += 1
eline = evicted[0]
wslot = st_idx_get(eline)
if wslot is not None:
    st_values[wslot] = o_f
    st_time[wslot] = st_clock
else:
    ej = evicted[2]
    if ej is None:
{_indent(fallback, 8)}
    else:
{_indent(_store_victim_scan(col_names), 8)}
    vl = st_lines[svictim]
    if vl is not None:
        st_evictions += 1
        del st_idx[vl]
    st_lines[svictim] = eline
    st_values[svictim] = o_f
    st_time[svictim] = st_clock
    st_idx[eline] = svictim"""


_MIGRATION_FLUSH = """if subset != active:
    transitions += 1
    migrations += 1
    clock_fl[active] = cbase + i
    acc_fl[active] += i + 1 - reign_start
    miss_fl[active] += a_miss
    evict_fl[active] += a_evict
    wb_fl[active] += a_wb
    last_fl[active] = a_lastev if a_lastmiss == i else None
    active = subset
    a_lines = lines_by_core[active]
    a_dirty = dirty_by_core[active]
    a_time = time_by_core[active]
    a_idx = idx_by_core[active]
    a_idx_get = a_idx.get
    a_miss = a_evict = a_wb = 0
    a_lastev = last_fl[active]
    a_lastmiss = -2
    reign_start = i + 1
    cbase = clock_fl[active] - reign_start + 1
    occ = tuple((idx_by_core[cc].get, dirty_by_core[cc])
                for cc in range(num_cores)
                if cc != active and idx_by_core[cc])"""


def _filter_update(fp: str, subset_source: str, l2_filtering: bool) -> str:
    body = f"""{fp}_upd += 1
value = {fp}_v + a_e
{fp}_v = {fp}_lo if value < {fp}_lo else {fp}_hi if value > {fp}_hi else value
{subset_source}
updates += 1
{_MIGRATION_FLUSH}"""
    if l2_filtering:
        return "if l2_miss:\n" + _indent(body, 4)
    return body


def _mechanism_block(
    prefix: str,
    sig_track: bool,
    store_kind: str,
    st_col_names: "list[str] | None",
    filter_source: str,
) -> str:
    p = prefix
    if st_col_names is not None:
        # finite store: carry the record index; the write-miss path
        # probes the precomputed slot columns by that index
        entry = "(line, i_e, i)"
    else:
        entry = "make_entry(line, i_e)"
    if sig_track:
        step_source = f"""if {p}_w >= 0:
    step = 1
    value = {p}_d + 1
else:
    step = -1
    value = {p}_d - 1
{p}_d = {p}_dlo if value < {p}_dlo else {p}_dhi if value > {p}_dhi else value
value = {p}_w + {p}_len * step
{p}_w = {p}_wlo if value < {p}_wlo else {p}_whi if value > {p}_whi else value"""
    else:
        step_source = f"""if {p}_w >= 0:
    value = {p}_d + 1
else:
    value = {p}_d - 1
{p}_d = {p}_dlo if value < {p}_dlo else {p}_dhi if value > {p}_dhi else value"""
    return f"""delta = {p}_d
{_store_read(p, store_kind)}
value = o_e - delta
a_e = {p}_lo if value < {p}_lo else {p}_hi if value > {p}_hi else value
value = o_e - 2 * delta
i_e = {p}_lo if value < {p}_lo else {p}_hi if value > {p}_hi else value
{p}_append({entry})
if {p}_len >= {p}_ws:
    evicted = {p}_popleft()
    value = evicted[1] + 2 * delta
    o_f = {p}_lo if value < {p}_lo else {p}_hi if value > {p}_hi else value
{_indent(_store_write(store_kind, st_col_names), 4)}
    value = {p}_w + (o_e - o_f)
else:
    {p}_len += 1
    value = {p}_w + a_e
{p}_w = {p}_wlo if value < {p}_wlo else {p}_whi if value > {p}_whi else value
{step_source}
{filter_source}"""


_SUBSET_X_4WAY = """if fx_v >= 0:
    if fx_ls != 1:
        fx_sc += 1
        fx_ls = 1
    subset = 0 if fp_v >= 0 else 1
else:
    if fx_ls != -1:
        fx_sc += 1
        fx_ls = -1
    subset = 2 if fn_v >= 0 else 3"""

_SUBSET_X_2WAY = """if fx_v >= 0:
    if fx_ls != 1:
        fx_sc += 1
        fx_ls = 1
    subset = 0
else:
    if fx_ls != -1:
        fx_sc += 1
        fx_ls = -1
    subset = 1"""


def _subset_y(fp: str) -> str:
    return f"""if {fp}_v >= 0:
    if {fp}_ls != 1:
        {fp}_sc += 1
        {fp}_ls = 1
else:
    if {fp}_ls != -1:
        {fp}_sc += 1
        {fp}_ls = -1
if fx_v >= 0:
    subset = 0 if fp_v >= 0 else 1
else:
    subset = 2 if fn_v >= 0 else 3"""


def _mech_locals(prefix: str, index: int, triple_entries: bool) -> str:
    p = prefix
    source = f"""_m{index} = mechs[{index}]
{p}_ws = _m{index}.window_size
{p}_lo = -(1 << (_m{index}.affinity_bits - 1))
{p}_hi = (1 << (_m{index}.affinity_bits - 1)) - 1
{p}_dlo = _m{index}.delta._lo
{p}_dhi = _m{index}.delta._hi
{p}_d = _m{index}.delta._value
{p}_wlo = _m{index}.window_affinity._lo
{p}_whi = _m{index}.window_affinity._hi
{p}_w = _m{index}.window_affinity._value
{p}_fifo = _m{index}._fifo
{p}_append = {p}_fifo.append
{p}_popleft = {p}_fifo.popleft
{p}_len = len({p}_fifo)"""
    if triple_entries:
        source += f"""
if {p}_len:
    entries = [(e[0], e[1], None) for e in {p}_fifo]
    {p}_fifo.clear()
    {p}_fifo.extend(entries)"""
    return source


def _mech_flush(prefix: str, index: int, refs: str, triple_entries: bool) -> str:
    p = prefix
    source = f"""mechs[{index}].delta._value = {p}_d
mechs[{index}].window_affinity._value = {p}_w
mechs[{index}].references += {refs}"""
    if triple_entries:
        source += f"""
if {p}_fifo:
    entries = [make_entry(e[0], e[1]) for e in {p}_fifo]
    {p}_fifo.clear()
    {p}_fifo.extend(entries)"""
    return source


def _filter_locals(fp: str, expr: str) -> str:
    return f"""_f_{fp} = {expr}
{fp}_lo = _f_{fp}._counter._lo
{fp}_hi = _f_{fp}._counter._hi
{fp}_v = _f_{fp}._counter._value
{fp}_upd = 0
{fp}_sc = 0
{fp}_ls = _f_{fp}._last_sign"""


def _filter_flush(fp: str) -> str:
    return f"""_f_{fp}._counter._value = {fp}_v
_f_{fp}.updates += {fp}_upd
_f_{fp}.sign_changes += {fp}_sc
_f_{fp}._last_sign = {fp}_ls"""


def _build_source(sig: tuple) -> str:
    (ways, migration, four_way, store_kind, slots_shared,
     l2_filtering, track, st_ways) = sig

    cols_unpack = ", ".join(f"s{w}" for w in range(ways))
    if ways == 1:
        cols_unpack += ","
    st_unpack = ""
    if st_ways:
        st_unpack = ", ".join(f"t{w}" for w in range(st_ways))
        if st_ways == 1:
            st_unpack += ","
        st_unpack = f"{st_unpack} = st_cols"

    # --- per-record L2 section of the loop body -----------------------
    # ``occ`` carries prebuilt (idx.get, dirty_list) pairs per occupied
    # inactive core — rebuilt only at migrations, so the per-reference
    # coherence probes skip the two indexed lookups per core.  ``share``
    # counts how many cores hold each line; only the active core ever
    # installs or evicts, so two dict updates per miss keep it exact,
    # and the probe loops run only when another copy actually exists
    # (the common case — no copy anywhere else — costs one dict get).
    demote = """if share_get(line) > 1:
    for og, od in occ:
        oslot = og(line)
        if oslot is not None:
            od[oslot] = False
            coh_updates += 1"""
    if migration:
        hit_tail = "if not c:\n    continue\nl2_miss = False"
        miss_tail = "if not c:\n    continue\nl2_miss = True"
    else:
        hit_tail = "continue"
        miss_tail = "continue"

    loop_vars = "line, w, c" if migration else "line, w"
    zip_args = "seq_line, seq_w, seq_c" if migration else "seq_line, seq_w"

    l2_body = f"""slot = a_idx_get(line)
if slot is not None:
    a_time[slot] = cbase + i
    if w:
        a_dirty[slot] = True
{_indent(demote, 8)}
{_indent(hit_tail, 4)}
else:
    a_miss += 1
{_indent(_victim_scan(ways), 4)}
    victim_line = a_lines[victim]
    if victim_line is not None:
        a_evict += 1
        vd = a_dirty[victim]
        if vd:
            a_wb += 1
            coh_writebacks += 1
        a_lastev = (victim_line, vd)
        del a_idx[victim_line]
        vs_ = share[victim_line]
        if vs_ == 1:
            del share[victim_line]
        else:
            share[victim_line] = vs_ - 1
    else:
        a_lastev = None
    a_lastmiss = i
    a_lines[victim] = line
    a_dirty[victim] = True if w else False
    a_time[victim] = cbase + i
    a_idx[line] = victim
    others = share_get(line, 0)
    share[line] = others + 1
    if others:
        forwarded = False
        for og, od in occ:
            oslot = og(line)
            if oslot is not None:
                if od[oslot]:
                    od[oslot] = False
                    forwarded = True
                    break
        if forwarded:
            coh_forwards += 1
        else:
            coh_l3 += 1
        if w:
            for og, od in occ:
                oslot = og(line)
                if oslot is not None:
                    od[oslot] = False
                    coh_updates += 1
    else:
        coh_l3 += 1
{_indent(miss_tail, 4)}"""

    # --- sampled controller step --------------------------------------
    # Slot columns the store's write-miss path probes by record index:
    # the L2's own ``s*`` columns when the geometries agree, a second
    # ``t*`` matrix when the store is finite but shaped differently.
    if store_kind != "cache":
        st_col_names = None
    elif slots_shared:
        st_col_names = [f"s{w}" for w in range(ways)]
    else:
        st_col_names = [f"t{w}" for w in range(st_ways)]
    if not migration:
        ctrl_body = ""
    elif four_way:
        block_x = _mechanism_block(
            "x", track, store_kind, st_col_names,
            _filter_update("fx", _SUBSET_X_4WAY, l2_filtering),
        )
        block_p = _mechanism_block(
            "p", track, store_kind, st_col_names,
            _filter_update("fp", _subset_y("fp"), l2_filtering),
        )
        block_m = _mechanism_block(
            "m", track, store_kind, st_col_names,
            _filter_update("fn", _subset_y("fn"), l2_filtering),
        )
        ctrl_body = f"""if c == 1:
{_indent(block_x, 4)}
elif fx_v >= 0:
    p_refs += 1
{_indent(block_p, 4)}
else:
    m_refs += 1
{_indent(block_m, 4)}"""
    else:
        ctrl_body = _mechanism_block(
            "x", track, store_kind, st_col_names,
            _filter_update("fx", _SUBSET_X_2WAY, l2_filtering),
        )

    # --- controller locals + flush ------------------------------------
    if migration:
        prefixes = [("x", 0), ("p", 1), ("m", 2)] if four_way else [("x", 0)]
        filters = (
            [("fx", "controller.filter_x"),
             ("fp", "controller.filter_y[+1]"),
             ("fn", "controller.filter_y[-1]")]
            if four_way
            else [("fx", "controller.filter_x")]
        )
        if store_kind == "cache":
            store_locals = """st_lines = store._lines
st_values = store._values
st_time = store._time
st_num_sets = store._num_sets
st_index_bits = store._index_bits
st_way_range = range(store.ways)
st_clock = store._clock
st_idx = {}
for slot, ln in enumerate(st_lines):
    if ln is not None:
        st_idx[ln] = slot
st_idx_get = st_idx.get
st_reads = st_writes = st_misses = st_evictions = 0"""
            store_flush = """store.reads += st_reads
store.writes += st_writes
store.misses += st_misses
store.evictions += st_evictions
store._clock = st_clock"""
        else:
            store_locals = """ub_values = store._values
ub_get = ub_values.get
st_reads = st_writes = st_misses = 0"""
            store_flush = """store.reads += st_reads
store.writes += st_writes
store.misses += st_misses"""
        triple_entries = store_kind == "cache"
        ctrl_locals = "\n".join(
            ["controller = chip.controller",
             "store = controller.store",
             "mechs = controller.mechanisms()",
             store_locals]
            + ([st_unpack] if st_ways else [])
            + [_mech_locals(p, idx, triple_entries) for p, idx in prefixes]
            + [_filter_locals(fp, expr) for fp, expr in filters]
            + (["p_refs = m_refs = 0"] if four_way else [])
            + ["updates = transitions = 0"]
        )
        mech_refs = (
            [("x", 0, "x_refs"), ("p", 1, "p_refs"), ("m", 2, "m_refs")]
            if four_way
            else [("x", 0, "x_refs")]
        )
        ctrl_flush = "\n".join(
            ["ctrl_references, sampled_count, x_refs = ctrl_counts",
             "cstats = controller.stats",
             "cstats.references += ctrl_references",
             "cstats.sampled_references += sampled_count",
             "cstats.filter_updates += updates",
             "cstats.transitions += transitions",
             "controller._previous_subset = active"]
            + [_mech_flush(p, idx, refs, triple_entries)
               for p, idx, refs in mech_refs]
            + [_filter_flush(fp) for fp, _ in filters]
            + [store_flush]
        )
    else:
        ctrl_locals = ""
        ctrl_flush = ""

    loop = f"""i = start - 1
for {loop_vars} in zip({zip_args}):
    i += 1
{_indent(l2_body, 4)}
{_indent(ctrl_body, 4)}"""

    source = f"""def _replay(chip, seq_line, seq_w, seq_c, cols, st_cols,
            start, end, n_accesses, max_instruction, kind_counts,
            ctrl_counts):
    caches = chip.l2s.caches
    num_cores = len(caches)
    engine = chip.engine
    lines_by_core = [c._lines for c in caches]
    dirty_by_core = [c._dirty for c in caches]
    time_by_core = [c._time for c in caches]
    idx_by_core = []
    for cl in lines_by_core:
        d = {{}}
        for slot, ln in enumerate(cl):
            if ln is not None:
                d[ln] = slot
        idx_by_core.append(d)
    share = {{}}
    share_get = share.get
    for d in idx_by_core:
        for ln in d:
            share[ln] = share_get(ln, 0) + 1
    active = engine.active_core
    migrations = 0
    {cols_unpack} = cols
{_indent(ctrl_locals, 4)}
    acc_fl = [0] * num_cores
    miss_fl = [0] * num_cores
    evict_fl = [0] * num_cores
    wb_fl = [0] * num_cores
    clock_fl = [c._clock for c in caches]
    last_fl = [_UNSET] * num_cores
    coh_forwards = coh_l3 = coh_updates = coh_writebacks = 0
    a_lines = lines_by_core[active]
    a_dirty = dirty_by_core[active]
    a_time = time_by_core[active]
    a_idx = idx_by_core[active]
    a_idx_get = a_idx.get
    a_miss = a_evict = a_wb = 0
    a_lastev = None
    a_lastmiss = -2
    reign_start = start
    cbase = clock_fl[active] - reign_start + 1
    occ = tuple((idx_by_core[c].get, dirty_by_core[c])
                for c in range(num_cores)
                if c != active and idx_by_core[c])
{_indent(loop, 4)}
    if end > start:
        clock_fl[active] = cbase + end - 1
        acc_fl[active] += end - reign_start
        miss_fl[active] += a_miss
        evict_fl[active] += a_evict
        wb_fl[active] += a_wb
        if end > reign_start:
            last_fl[active] = a_lastev if a_lastmiss == end - 1 else None
    g_miss = sum(miss_fl)
    for core in range(num_cores):
        cache = caches[core]
        l2_stats = cache.stats
        l2_stats.accesses += acc_fl[core]
        l2_stats.hits += acc_fl[core] - miss_fl[core]
        l2_stats.misses += miss_fl[core]
        l2_stats.evictions += evict_fl[core]
        l2_stats.writebacks += wb_fl[core]
        cache._clock = clock_fl[core]
        lf = last_fl[core]
        if lf is not _UNSET:
            cache.last_eviction = EvictedLine(*lf) if lf is not None else None
    records_span = end - start
    coherence = chip.l2s.stats
    coherence.accesses += records_span
    coherence.hits += records_span - g_miss
    coherence.misses += g_miss
    coherence.forwards += coh_forwards
    coherence.l3_fetches += coh_l3
    coherence.writebacks += coh_writebacks
    coherence.inactive_updates += coh_updates
    engine.active_core = active
    engine.migrations += migrations
{_indent(ctrl_flush, 4)}
    fetch_misses, load_misses, store_hits, store_misses = kind_counts
    stats = chip.stats
    stats.accesses += n_accesses
    if max_instruction is not None and max_instruction >= stats.instructions:
        stats.instructions = max_instruction + 1
    stats.il1_misses += fetch_misses
    stats.dl1_misses += load_misses + store_misses
    stats.l1_miss_requests += fetch_misses + load_misses + store_misses
    stats.l2_accesses += records_span
    stats.l2_misses += g_miss
    stats.migrations += migrations
    bus = chip.bus_traffic
    bus.record_l1_fill(chip.config.caches.line_size,
                       fetch_misses + load_misses)
    bus.record_store(store_hits + store_misses)
"""
    return source


def _kernel_for(sig: tuple):
    entry = _KERNELS.get(sig)
    if entry is None:
        source = _build_source(sig)
        namespace = {
            "EvictedLine": EvictedLine,
            "skew_hash": skew_hash,
            "make_entry": RWindowEntry,
            "_UNSET": _UNSET,
        }
        exec(compile(source, f"<specialized {sig}>", "exec"), namespace)
        entry = (namespace["_replay"], source)
        _KERNELS[sig] = entry
    return entry[0]


# -- per-record precomputation (memoised on the record) -----------------
#
# Two tiers: geometry-independent work (line list, write bytes, kind
# counts) is computed once per record (`_record_base`); everything
# keyed by chip geometry/sampling (slot columns, control bytes, store
# columns) lives in a small LRU so a tuner replaying one record through
# hundreds of distinct geometries cannot grow a service process without
# bound.  LRU evictions are counted on the process obs registry.


def _record_base(record):
    """``(rec_line list, w_b bytes, full kind counts)`` — shared by
    every geometry (and by the hierarchy kernel)."""
    base = record.__dict__.get(_BASE_ATTR)
    if base is None:
        kinds_np = record.kinds
        base = (
            record.lines.tolist(),
            (kinds_np >= 2).astype(np.uint8).tobytes(),
            _kind_counts(kinds_np, 0, len(kinds_np)),
        )
        record.__dict__[_BASE_ATTR] = base
    return base


def _precomp_memo(record) -> "OrderedDict":
    memo = record.__dict__.get(_PRECOMP_ATTR)
    if memo is None:
        memo = record.__dict__[_PRECOMP_ATTR] = OrderedDict()
    return memo


def _trim_memo(memo: "OrderedDict") -> None:
    while len(memo) > _PRECOMP_CAP:
        memo.popitem(last=False)
        process_counter("kernels.precompute.evictions").inc()


def _slot_cols(record, num_sets: int, ways: int, memo):
    """Slot columns for one skewed geometry, memoised independently of
    any controller state so every same-geometry consumer — the baseline
    hierarchy, each chip variant, a non-shared store — reuses one
    entry."""
    key = ("cols", num_sets, ways)
    hit = memo.get(key)
    if hit is not None:
        memo.move_to_end(key)
        return hit
    smat = skew_slot_matrix(record.lines, num_sets, ways)
    cols = tuple(smat[:, w].tolist() for w in range(ways))
    memo[key] = cols
    _trim_memo(memo)
    return cols


def _precompute(record, chip, sig):
    ways, migration, four_way, st_ways = sig[0], sig[1], sig[2], sig[7]
    first = chip.l2s.caches[0]
    num_sets = first.num_sets
    rec_line, w_b, full_counts = _record_base(record)
    memo = _precomp_memo(record)
    cols = _slot_cols(record, num_sets, ways, memo)
    lines_np = record.lines
    kinds_np = record.kinds
    n = len(lines_np)
    if migration:
        sampling = chip.controller.config.sampling
        sampling_key = (sampling.modulus, sampling.sampled_residues)
        ckey = ("ctrl", sampling_key, four_way)
        c_b = memo.get(ckey)
        if c_b is not None:
            memo.move_to_end(ckey)
        else:
            modulus, residues = sampling_key
            req = kinds_np != 2
            if residues is None:
                samp = req
                res = None
            else:
                res = lines_np % modulus
                samp = np.isin(
                    res, np.fromiter(residues, dtype=np.int64)
                ) & req
            ctrl = np.zeros(n, np.uint8)
            if four_way:
                if res is None:
                    res = lines_np % modulus
                odd = (res & 1) == 1
                ctrl[samp & odd] = 1
                ctrl[samp & ~odd] = 2
            else:
                ctrl[samp] = 1
            c_b = ctrl.tobytes()
            memo[ckey] = c_b
            _trim_memo(memo)
    else:
        c_b = None
    if st_ways:
        store_sets = chip.controller.store._num_sets
        st_cols = _slot_cols(record, store_sets, st_ways, memo)
    else:
        st_cols = None
    return (rec_line, cols, w_b, c_b, full_counts, st_cols)


def _kind_counts(kinds_np, start, end):
    ks = kinds_np[start:end]
    return (
        int(np.count_nonzero(ks == 0)),
        int(np.count_nonzero(ks == 1)),
        int(np.count_nonzero(ks == 2)),
        int(np.count_nonzero(ks == 3)),
    )


# -- public replay API --------------------------------------------------


def replay_chip_slice(
    chip,
    record,
    start: int,
    end: int,
    *,
    n_accesses: "int | None" = None,
    max_instruction: "int | None" = None,
):
    """Replay records ``[start, end)`` of ``record`` through ``chip``.

    ``n_accesses`` is the number of *original trace accesses* this
    slice accounts for (``record.indices`` spans); it defaults to the
    whole record's access count, which is only correct for a full
    ``[0, n)`` replay.  ``max_instruction`` applies the record's
    instruction high-water mark — pass it on the final slice only
    (instruction counts are monotonic, so the final value is exact).

    Replaying ``[0, n)`` as any sequence of consecutive slices leaves
    the chip bit-identical to a single full replay.
    """
    record.require_match(chip.config.caches)
    if not _chip_fast_eligible(chip):
        raise ValueError(
            "chip is not specializable (probe, prefetcher, or "
            "non-standard component); use run_filtered instead"
        )
    n = len(record.lines)
    if not 0 <= start <= end <= n:
        raise ValueError(f"bad slice [{start}, {end}) of {n} records")
    sig = chip_signature(chip)
    kernel = _kernel_for(sig)
    rec_line, cols, w_b, c_b, full_counts, st_cols = _precompute(
        record, chip, sig
    )
    full = start == 0 and end == n
    if full:
        seq_line, seq_w, seq_c = rec_line, w_b, c_b
        kind_counts = full_counts
    else:
        seq_line = rec_line[start:end]
        seq_w = w_b[start:end]
        seq_c = c_b[start:end] if c_b is not None else None
        kind_counts = _kind_counts(record.kinds, start, end)
    if n_accesses is None:
        n_accesses = record.accesses
    migration = sig[1]
    if migration:
        records_span = end - start
        ctrl_references = records_span - kind_counts[2]
        x_refs = seq_c.count(1)
        sampled = x_refs + (seq_c.count(2) if sig[2] else 0)
        ctrl_counts = (ctrl_references, sampled, x_refs)
    else:
        ctrl_counts = (0, 0, 0)
    kernel(
        chip, seq_line, seq_w, seq_c, cols, st_cols, start, end,
        n_accesses, max_instruction, kind_counts, ctrl_counts,
    )
    return chip.stats


def replay_chip_specialized(chip, record):
    """Full-record replay through the chip's specialized kernel.

    Drop-in equivalent of the inline fast path: bit-identical final
    state, selected automatically by ``run_chip_filtered`` when the
    chip is eligible.
    """
    return replay_chip_slice(
        chip,
        record,
        0,
        len(record.lines),
        n_accesses=record.accesses,
        max_instruction=record.max_instruction,
    )


# -- the single-core baseline's specialized replay ----------------------
#
# The baseline hierarchy replays a record through one skewed L2; the
# inline loop in repro.kernels.batch (_replay_hierarchy_fast, the
# reference twin) scans the slot row per record and recomputes the
# whole slot matrix per call.  The generated kernel below applies the
# chip kernel's tricks — dict-based residency for an O(1) hit check,
# timestamps derived from the loop index, slot *columns* memoised on
# the record — and is selected by ``run_hierarchy_filtered`` whenever
# the hierarchy is fast-eligible.

#: l2 ways -> (compiled kernel, generated source)
_HIER_KERNELS: dict = {}


def hierarchy_specializable(hierarchy) -> bool:
    """Same eligibility as the inline hierarchy fast path."""
    return _hierarchy_fast_eligible(hierarchy)


def _build_hierarchy_source(ways: int) -> str:
    cols_unpack = ", ".join(f"s{w}" for w in range(ways))
    if ways == 1:
        cols_unpack += ","
    source = f"""def _replay_hier(hierarchy, seq_line, seq_w, cols, n_records,
                 n_accesses, l1_miss_count, max_instruction):
    l2 = hierarchy.l2
    a_lines = l2._lines
    a_dirty = l2._dirty
    a_time = l2._time
    a_idx = {{}}
    for slot, ln in enumerate(a_lines):
        if ln is not None:
            a_idx[ln] = slot
    a_idx_get = a_idx.get
    cbase = l2._clock + 1
    {cols_unpack} = cols
    hits = evictions = writebacks = 0
    last_eviction = _UNSET
    i = -1
    for line, w in zip(seq_line, seq_w):
        i += 1
        slot = a_idx_get(line)
        if slot is not None:
            hits += 1
            a_time[slot] = cbase + i
            if w:
                a_dirty[slot] = True
            last_eviction = None
            continue
{_indent(_victim_scan(ways), 8)}
        victim_line = a_lines[victim]
        if victim_line is not None:
            evictions += 1
            vd = a_dirty[victim]
            if vd:
                writebacks += 1
            last_eviction = (victim_line, vd)
            del a_idx[victim_line]
        else:
            last_eviction = None
        a_lines[victim] = line
        a_dirty[victim] = True if w else False
        a_time[victim] = cbase + i
        a_idx[line] = victim
    stats = l2.stats
    stats.accesses += n_records
    stats.hits += hits
    stats.misses += n_records - hits
    stats.evictions += evictions
    stats.writebacks += writebacks
    l2._clock = cbase + n_records - 1
    if last_eviction is not _UNSET:
        l2.last_eviction = (
            EvictedLine(*last_eviction) if last_eviction is not None else None
        )
    hstats = hierarchy.stats
    hstats.accesses += n_accesses
    hstats.l1_misses += l1_miss_count
    hstats.l2_accesses += n_records
    hstats.l2_misses += n_records - hits
    if max_instruction >= hstats.instructions:
        hstats.instructions = max_instruction + 1
"""
    return source


def _hier_kernel_for(ways: int):
    entry = _HIER_KERNELS.get(ways)
    if entry is None:
        source = _build_hierarchy_source(ways)
        namespace = {"EvictedLine": EvictedLine, "_UNSET": _UNSET}
        exec(compile(source, f"<specialized hier {ways}w>", "exec"), namespace)
        entry = (namespace["_replay_hier"], source)
        _HIER_KERNELS[ways] = entry
    return entry[0]


def _hier_cols(record, num_sets: int, ways: int):
    """Slot columns for the baseline L2, through the same LRU memo the
    chip kernels use — a baseline and any chip variant of the same L2
    geometry share one entry, so a population sweep computes the slot
    matrix exactly once per (record, geometry)."""
    return _slot_cols(record, num_sets, ways, _precomp_memo(record))


def replay_hierarchy_specialized(hierarchy, record):
    """Full-record replay through the baseline's specialized kernel.

    Drop-in equivalent of the inline hierarchy fast path: bit-identical
    final state (L2 contents, timestamps, clock, ``last_eviction``,
    every stat), selected automatically by ``run_hierarchy_filtered``
    when the hierarchy is eligible.
    """
    record.require_match(hierarchy.config)
    if not _hierarchy_fast_eligible(hierarchy):
        raise ValueError(
            "hierarchy is not specializable (probe, prefetcher, or "
            "non-standard L2); use run_filtered instead"
        )
    l2 = hierarchy.l2
    kernel = _hier_kernel_for(l2.ways)
    rec_line, w_b, full_counts = _record_base(record)
    cols = _hier_cols(record, l2.num_sets, l2.ways)
    kernel(
        hierarchy, rec_line, w_b, cols, len(rec_line), record.accesses,
        full_counts[0] + full_counts[1] + full_counts[3],
        record.max_instruction,
    )
    return hierarchy.stats
