"""Configuration for one service instance.

Everything the serve CLI exposes as a flag lives here as a field, so a
programmatic embedding (tests, a fleet supervisor) and the command line
construct the same object.
"""

from __future__ import annotations

from dataclasses import dataclass

#: default TCP port (unassigned by IANA; "repro" on a phone keypad-ish)
DEFAULT_PORT = 8321


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one ``repro.service`` instance."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT  #: 0 = ephemeral (the bound port is reported)
    workers: int = 2  #: concurrent job executions
    queue_capacity: int = 64  #: queued-but-not-running submissions
    isolate: bool = True  #: run each job in its own worker process
    timeout: "float | None" = None  #: per-job wall-clock limit, seconds
    retries: int = 1  #: crash retries (worker-process mode)
    use_cache: bool = True  #: serve and populate the shared ResultCache
    cache_dir: "str | None" = None  #: cache root override
    drain_grace: float = 30.0  #: seconds to let running jobs finish on drain
    retry_after: float = 2.0  #: Retry-After seconds on 429/503
    runlog: "str | None" = None  #: JSONL run log of every scheduler event
    obs_dir: "str | None" = None  #: export service metrics + trace here
    quiet: bool = False  #: suppress per-job stderr progress lines
    max_body_bytes: int = 1 << 20  #: request-body cap (413 beyond)
    request_timeout: float = 30.0  #: seconds to receive a full request (408)
    max_records: int = 4096  #: finished records kept in memory (LRU)
    fn_prefixes: "tuple[str, ...]" = ("repro.",)  #: allowed job fn roots

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.drain_grace < 0:
            raise ValueError(
                f"drain_grace must be >= 0, got {self.drain_grace}"
            )
        if self.retry_after <= 0:
            raise ValueError(
                f"retry_after must be positive, got {self.retry_after}"
            )
        if self.max_records < 1:
            raise ValueError(
                f"max_records must be >= 1, got {self.max_records}"
            )
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if not self.fn_prefixes:
            raise ValueError("fn_prefixes must name at least one prefix")

    def allows_fn(self, fn: str) -> bool:
        """Is this job-function import path accepted for execution?

        The service resolves and calls arbitrary ``module:function``
        strings, so submissions are restricted to known roots
        (``repro.`` by default) — an open listener must not be a
        remote-import-and-call gadget.
        """
        return any(fn.startswith(prefix) for prefix in self.fn_prefixes)
