"""Service-level telemetry on the existing ``repro.obs`` registry.

The obs package already knows how to count, bucket, export and merge —
the service just names the instruments a scheduler-as-a-service needs
(the lead/follow-style service metrics Affinity Tailor reports):
admission counters split by how each submission was served (cold
execution vs dedup-attach vs cache hit), backpressure rejections,
queue-depth/in-flight gauges, and latency histograms for queue wait,
execution, and end-to-end service time.  ``snapshot()`` is the
``GET /status`` body's ``metrics`` section and merges across instances
with :meth:`~repro.obs.metrics.MetricsRegistry.merge_dicts`.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry

#: histogram values are recorded in microseconds (ints keep HDR buckets)
_US = 1_000_000


def _tenant_slug(tenant: str) -> str:
    return re.sub(r"[^A-Za-z0-9_-]+", "-", tenant)[:64] or "anon"


class ServiceMetrics:
    """Named instruments for one service instance."""

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        # Touch the headline instruments so /status shows explicit
        # zeros from the first request on, not a shape that grows.
        for name in (
            "service.submissions",
            "service.enqueued",
            "service.dedup_hits",
            "service.cache_hits",
            "service.rejected",
            "service.executed",
            "service.failed",
            "service.cancelled",
            "service.http.requests",
            "service.http.errors",
        ):
            self.registry.counter(name)
        self.registry.gauge("service.queue_depth")
        self.registry.gauge("service.inflight")

    # -- admission ------------------------------------------------------

    def submission(self, tenant: str, kind: str) -> None:
        """One accepted submission, by how it was served: ``submitted``
        (cold, enqueued), ``attached`` (dedup to in-flight), or
        ``cache-hit`` (served from the result cache, no pool work)."""
        self.registry.counter("service.submissions").inc()
        self.registry.counter(
            f"service.tenant.{_tenant_slug(tenant)}.submissions"
        ).inc()
        if kind == "cache-hit":
            self.registry.counter("service.cache_hits").inc()
        elif kind == "attached":
            self.registry.counter("service.dedup_hits").inc()
        else:
            self.registry.counter("service.enqueued").inc()

    def rejected(self, tenant: str) -> None:
        """One submission bounced by backpressure (429)."""
        self.registry.counter("service.rejected").inc()
        self.registry.counter(
            f"service.tenant.{_tenant_slug(tenant)}.rejected"
        ).inc()

    # -- execution lifecycle --------------------------------------------

    def started(self, queue_wait_s: float) -> None:
        self.registry.histogram("service.queue_wait_us").record(
            int(max(0.0, queue_wait_s) * _US)
        )

    def finished(self, state: str, run_s: float, total_s: float) -> None:
        """One record reached a terminal state (``finished`` /
        ``failed`` / ``cancelled``)."""
        counter = {
            "finished": "service.executed",
            "failed": "service.failed",
        }.get(state, "service.cancelled")
        self.registry.counter(counter).inc()
        self.registry.histogram("service.run_us").record(
            int(max(0.0, run_s) * _US)
        )
        self.registry.histogram("service.latency_us").record(
            int(max(0.0, total_s) * _US)
        )

    # -- load gauges ----------------------------------------------------

    def set_depth(self, queue_depth: int, inflight: int) -> None:
        self.registry.gauge("service.queue_depth").set(queue_depth)
        self.registry.gauge("service.inflight").set(inflight)

    # -- HTTP front ------------------------------------------------------

    def http_request(self, status: int) -> None:
        self.registry.counter("service.http.requests").inc()
        if status >= 400:
            self.registry.counter("service.http.errors").inc()

    # -- export ---------------------------------------------------------

    def snapshot(self) -> "dict[str, object]":
        return self.registry.to_dict()
