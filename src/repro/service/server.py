"""The HTTP+JSON front end: ``asyncio.start_server`` and nothing else.

Endpoints (all JSON in, JSON out; one request per connection)::

    POST /jobs                submit one job (429/503 under pressure)
    POST /sweeps              submit a batch / a named experiment sweep
    GET  /jobs/<hash>         one job's state (+ payload when finished)
    GET  /jobs/<hash>/events  streaming JSONL: history replay + live tail
    GET  /status              machine dashboard: queue, cache, runtime
    GET  /metrics             Prometheus text exposition of the same
    GET  /dashboard           human dashboard (self-refreshing HTML)
    GET  /healthz             liveness probe

The protocol layer is deliberately tiny — request line, headers,
``Content-Length`` body, ``Connection: close`` responses — because the
clients are curl, the stdlib client in :mod:`repro.service.client`,
and CI.  Request bodies are parsed *strictly*: the non-standard
``NaN``/``Infinity`` tokens (which ``json.loads`` accepts by default)
are rejected with 400, closing the cross-client hash-divergence hole
the same way :func:`repro.runtime.job.canonical_json` does on the
producer side.
"""

from __future__ import annotations

import asyncio
import json
import re
import sys
from typing import Callable, Mapping

from repro import faults
from repro.runtime.job import Job
from repro.service.broker import BackpressureError, DrainingError, JobBroker
from repro.service.config import ServiceConfig
from repro.service.records import FINISHED, STREAM_END

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_JOB_PATH = re.compile(r"^/jobs/(?P<hash>[0-9a-f]{8,64})(?P<rest>/events)?$")


class HttpError(Exception):
    """Terminate the request with this status + JSON error body."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: "tuple[tuple[str, str], ...]" = (),
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers


class Request:
    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        headers: "Mapping[str, str]",
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


def _reject_nonfinite_constant(name: str) -> None:
    raise ValueError(
        f"non-finite JSON constant {name!r} is not allowed: it is not "
        "portable JSON and would make identical submissions hash apart"
    )


def parse_json_body(raw: bytes) -> object:
    """Strict JSON: UTF-8, no NaN/Infinity tokens."""
    try:
        return json.loads(
            raw.decode("utf-8"), parse_constant=_reject_nonfinite_constant
        )
    except (UnicodeDecodeError, ValueError) as exc:
        raise HttpError(400, f"invalid JSON body: {exc}") from exc


async def read_request(
    reader: "asyncio.StreamReader", max_body_bytes: int
) -> "Request | None":
    """Parse one request; ``None`` when the peer closed without one."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: "dict[str, str]" = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, sep, value = header.decode("latin-1", "replace").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as exc:
        raise HttpError(400, "invalid Content-Length") from exc
    if length > max_body_bytes:
        raise HttpError(413, f"body exceeds {max_body_bytes} bytes")
    body = await reader.readexactly(length) if length > 0 else b""
    path = target.partition("?")[0]
    return Request(method, path, headers, body)


def response_bytes(
    status: int,
    payload: object,
    headers: "tuple[tuple[str, str], ...]" = (),
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def raw_response_bytes(
    status: int, body: str, content_type: str
) -> bytes:
    """A non-JSON response (``/metrics`` text exposition, ``/dashboard``
    HTML) with the same close-per-request framing."""
    encoded = body.encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(encoded)}",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + encoded


def stream_head_bytes() -> bytes:
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/x-ndjson\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")


class ServiceServer:
    """Routes requests into one :class:`JobBroker`."""

    def __init__(self, broker: JobBroker, config: "ServiceConfig | None" = None):
        self.broker = broker
        self.config = config or broker.config
        self._server: "asyncio.base_events.Server | None" = None
        self.port: "int | None" = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        await self.broker.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def shutdown(self, grace: "float | None" = None) -> None:
        """Stop accepting, drain the broker, close the listener.

        Shared-memory records published by population sweeps this
        process coordinated are released with the drain (lazily — the
        sweep module is never imported just to shut down)."""
        if self._server is not None:
            self._server.close()
        await self.broker.drain(grace)
        sweep = sys.modules.get("repro.kernels.sweep")
        if sweep is not None:
            sweep.release_owned()
        if self._server is not None:
            await self._server.wait_closed()

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # -- connection handler ---------------------------------------------

    async def _handle(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        status = 500
        try:
            faults.fire("service.request")
            try:
                # A bounded read window bounds slow-loris connections: a
                # peer trickling bytes (or holding the socket open without
                # sending a request) is cut off with 408 instead of
                # pinning a handler task forever.
                request = await asyncio.wait_for(
                    read_request(reader, self.config.max_body_bytes),
                    timeout=self.config.request_timeout,
                )
            except asyncio.TimeoutError:
                raise HttpError(
                    408,
                    f"request not received within "
                    f"{self.config.request_timeout:g}s",
                ) from None
            if request is None:
                return
            try:
                status = await self._dispatch(request, writer)
            except HttpError as exc:
                status = exc.status
                writer.write(
                    response_bytes(
                        exc.status, {"error": exc.message}, exc.headers
                    )
                )
            except (ConnectionError, BrokenPipeError):
                raise
            except Exception as exc:  # noqa: BLE001 - a request never kills the server
                status = 500
                writer.write(
                    response_bytes(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                )
            await writer.drain()
        except HttpError as exc:
            status = exc.status
            try:
                writer.write(response_bytes(exc.status, {"error": exc.message}))
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass
        except (ConnectionError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request/stream
        finally:
            self.broker.metrics.http_request(status)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: "asyncio.StreamWriter"
    ) -> int:
        path, method = request.path, request.method
        if path == "/jobs" and method == "POST":
            return await self._post_job(request, writer)
        if path == "/sweeps" and method == "POST":
            return await self._post_sweep(request, writer)
        match = _JOB_PATH.match(path)
        if match is not None and method == "GET":
            if match.group("rest"):
                return await self._stream_events(match.group("hash"), writer)
            return self._get_job(match.group("hash"), writer)
        if path == "/status" and method == "GET":
            writer.write(response_bytes(200, self.broker.status()))
            return 200
        if path == "/metrics" and method == "GET":
            from repro.service.dashboard import prometheus_text

            writer.write(
                raw_response_bytes(
                    200,
                    prometheus_text(self.broker.status()),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            )
            return 200
        if path == "/dashboard" and method == "GET":
            from repro.service.dashboard import dashboard_html

            writer.write(
                raw_response_bytes(
                    200,
                    dashboard_html(self.broker.status()),
                    "text/html; charset=utf-8",
                )
            )
            return 200
        if path == "/healthz" and method == "GET":
            writer.write(
                response_bytes(
                    200, {"ok": True, "draining": self.broker.draining}
                )
            )
            return 200
        if path in (
            "/jobs",
            "/sweeps",
            "/status",
            "/metrics",
            "/dashboard",
            "/healthz",
        ) or (match is not None):
            raise HttpError(405, f"{method} not supported on {path}")
        raise HttpError(404, f"no route for {path}")

    # -- submission endpoints -------------------------------------------

    def _tenant_of(self, request: Request, body: "Mapping[str, object]") -> str:
        tenant = request.headers.get("x-repro-tenant") or body.get("tenant")
        return str(tenant) if tenant else "anon"

    def _job_from_spec(self, spec: "Mapping[str, object]") -> Job:
        fn = spec.get("fn")
        if not isinstance(fn, str) or ":" not in fn:
            raise HttpError(
                400, "job spec needs fn: 'module:function'"
            )
        if not self.config.allows_fn(fn):
            raise HttpError(
                403,
                f"job fn {fn!r} is outside the allowed prefixes "
                f"{list(self.config.fn_prefixes)}",
            )
        params = spec.get("params", {})
        if not isinstance(params, dict):
            raise HttpError(400, "job params must be an object")
        label = spec.get("label", "")
        if not isinstance(label, str):
            raise HttpError(400, "job label must be a string")
        try:
            return Job.create(fn, label=label, **params)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"invalid job: {exc}") from exc

    def _submit(self, job: Job, tenant: str):
        try:
            return self.broker.submit(job, tenant)
        except BackpressureError as exc:
            raise HttpError(
                429,
                str(exc),
                headers=(("Retry-After", f"{exc.retry_after:g}"),),
            ) from exc
        except DrainingError as exc:
            raise HttpError(
                503,
                "service is draining",
                headers=(
                    ("Retry-After", f"{self.config.retry_after:g}"),
                ),
            ) from exc

    def _submission_body(self, submission) -> "dict[str, object]":
        record = submission.record
        body: "dict[str, object]" = {
            "hash": record.job.hash,
            "label": record.job.name,
            "status": submission.kind,
            "state": record.state,
            "url": f"/jobs/{record.job.hash}",
            "events_url": f"/jobs/{record.job.hash}/events",
        }
        if record.state == FINISHED:
            body["payload"] = record.payload
        if record.error is not None:
            body["error"] = record.error
        return body

    async def _wait_terminal(self, record, timeout: "float | None") -> bool:
        """Wait for the record's terminal state; on timeout the caller
        answers 202 with the still-live state instead of erroring."""
        if timeout is None:
            await record.done.wait()
            return True
        try:
            await asyncio.wait_for(record.done.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def _post_job(
        self, request: Request, writer: "asyncio.StreamWriter"
    ) -> int:
        body = parse_json_body(request.body)
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        tenant = self._tenant_of(request, body)
        job = self._job_from_spec(body)
        submission = self._submit(job, tenant)
        if body.get("wait"):
            timeout = body.get("wait_timeout")
            await self._wait_terminal(
                submission.record,
                float(timeout) if timeout is not None else None,
            )
        status = 200 if submission.record.terminal else 202
        writer.write(response_bytes(status, self._submission_body(submission)))
        return status

    async def _post_sweep(
        self, request: Request, writer: "asyncio.StreamWriter"
    ) -> int:
        body = parse_json_body(request.body)
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        tenant = self._tenant_of(request, body)
        jobs = sweep_jobs(body)
        if not jobs:
            raise HttpError(400, "sweep expands to zero jobs")
        for job in jobs:
            if not self.config.allows_fn(job.fn):
                raise HttpError(
                    403, f"sweep fn {job.fn!r} is outside the allowed prefixes"
                )
        items: "list[dict[str, object]]" = []
        submissions = []
        counts = {"submitted": 0, "attached": 0, "cache-hit": 0, "rejected": 0}
        rejected = False
        for job in jobs:
            if rejected:
                counts["rejected"] += 1
                items.append(
                    {"hash": job.hash, "label": job.name, "status": "rejected"}
                )
                continue
            try:
                submission = self._submit(job, tenant)
            except HttpError as exc:
                if exc.status != 429:
                    raise
                # Bounded queue overflow mid-sweep: report the split
                # rather than failing what was already admitted.
                rejected = True
                counts["rejected"] += 1
                items.append(
                    {"hash": job.hash, "label": job.name, "status": "rejected"}
                )
                continue
            submissions.append(submission)
            counts[submission.kind] += 1
            items.append(self._submission_body(submission))
        if body.get("wait"):
            timeout = body.get("wait_timeout")
            for submission in submissions:
                await self._wait_terminal(
                    submission.record,
                    float(timeout) if timeout is not None else None,
                )
            for i, item in enumerate(items):
                job_hash = item.get("hash")
                record = self.broker.get(str(job_hash))
                if record is not None and item.get("status") != "rejected":
                    items[i] = {**item, "state": record.state}
                    if record.state == FINISHED:
                        items[i]["payload"] = record.payload
        status = 429 if counts["rejected"] and not submissions else 200
        headers: "tuple[tuple[str, str], ...]" = ()
        if counts["rejected"]:
            headers = (("Retry-After", f"{self.config.retry_after:g}"),)
        writer.write(
            response_bytes(
                status, {"jobs": items, "counts": counts}, headers
            )
        )
        return status

    # -- read endpoints -------------------------------------------------

    def _get_job(self, job_hash: str, writer: "asyncio.StreamWriter") -> int:
        record = self.broker.get(job_hash)
        if record is None:
            raise HttpError(404, f"unknown job hash {job_hash}")
        writer.write(response_bytes(200, record.describe()))
        return 200

    async def _stream_events(
        self, job_hash: str, writer: "asyncio.StreamWriter"
    ) -> int:
        record = self.broker.get(job_hash)
        if record is None:
            raise HttpError(404, f"unknown job hash {job_hash}")
        writer.write(stream_head_bytes())
        queue = record.subscribe()
        try:
            while True:
                item = await queue.get()
                if item is STREAM_END:
                    break
                writer.write(
                    (json.dumps(item, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
        finally:
            record.unsubscribe(queue)
        return 200


# -- sweep expansion ----------------------------------------------------


def _table2_sweep(body: "Mapping[str, object]") -> "list[Job]":
    from repro.experiments.table2 import table2_jobs
    from repro.experiments.workloads import WORKLOAD_NAMES

    workloads = body.get("workloads") or list(WORKLOAD_NAMES)
    if not isinstance(workloads, list):
        raise HttpError(400, "sweep workloads must be a list of names")
    scale = float(body.get("scale", 1.0))
    seed = body.get("seed")
    return table2_jobs(
        [str(name) for name in workloads],
        scale=scale,
        seed=int(seed) if seed is not None else None,
    )


#: named sweep expanders: experiment name -> jobs builder
SWEEPS: "dict[str, Callable[[Mapping[str, object]], list[Job]]]" = {
    "table2": _table2_sweep,
}


def sweep_jobs(body: "Mapping[str, object]") -> "list[Job]":
    """Expand a sweep request into its job list.

    Two shapes: ``{"experiment": "table2", "workloads": [...], ...}``
    (a named experiment sweep) or ``{"jobs": [{fn, params, label}, ...]}``
    (an explicit batch).
    """
    experiment = body.get("experiment")
    if experiment is not None:
        expander = SWEEPS.get(str(experiment))
        if expander is None:
            raise HttpError(
                400,
                f"unknown sweep experiment {experiment!r}; "
                f"known: {sorted(SWEEPS)}",
            )
        try:
            return expander(body)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"invalid sweep: {exc}") from exc
    specs = body.get("jobs")
    if not isinstance(specs, list):
        raise HttpError(
            400, "sweep body needs 'experiment' or a 'jobs' list"
        )
    jobs: "list[Job]" = []
    for spec in specs:
        if not isinstance(spec, dict):
            raise HttpError(400, "each sweep job must be an object")
        fn = spec.get("fn")
        if not isinstance(fn, str) or ":" not in fn:
            raise HttpError(400, "each sweep job needs fn: 'module:function'")
        params = spec.get("params", {})
        if not isinstance(params, dict):
            raise HttpError(400, "sweep job params must be an object")
        try:
            jobs.append(
                Job.create(fn, label=str(spec.get("label", "")), **params)
            )
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"invalid sweep job: {exc}") from exc
    return jobs


async def run_service(
    config: ServiceConfig,
    ready: "Callable[[ServiceServer], None] | None" = None,
    stop: "asyncio.Event | None" = None,
) -> None:
    """Build, serve, and drain one service instance.

    ``ready`` is called once listening (with the bound server — tests
    and the CLI read the ephemeral port from it); ``stop`` ends the
    instance: the listener closes, the broker drains, sinks flush.
    """
    broker = JobBroker(config)
    server = ServiceServer(broker, config)
    await server.start()
    if ready is not None:
        ready(server)
    if stop is None:
        stop = asyncio.Event()
    await stop.wait()
    await server.shutdown()


__all__ = [
    "HttpError",
    "Request",
    "ServiceServer",
    "parse_json_body",
    "run_service",
    "sweep_jobs",
]
