"""repro.service — simulation as a service.

The runtime made sweeps cheap (content-hashed jobs, worker pool,
shared result cache); this package makes them *shared*.  A persistent
HTTP+JSON front end accepts job and sweep submissions from any number
of clients, dedups identical submissions onto one execution via the
job content hash, answers repeats straight from the multi-tenant
result cache without touching the pool, applies bounded backpressure
(429 + Retry-After) when the queue fills, streams per-job progress as
JSONL, and drains gracefully on SIGTERM.

* :mod:`repro.service.config` — :class:`ServiceConfig`, every knob;
* :mod:`repro.service.records` — per-hash lifecycle records and event
  histories;
* :mod:`repro.service.broker` — admission/dedup/backpressure, worker
  slots over :class:`~repro.runtime.scheduler.ExperimentRuntime`,
  graceful drain;
* :mod:`repro.service.bridge` — marshals scheduler bus events onto
  the loop;
* :mod:`repro.service.metrics` — service counters/gauges/histograms
  on the :mod:`repro.obs` registry;
* :mod:`repro.service.server` — the ``asyncio.start_server`` HTTP
  layer (``POST /jobs``, ``POST /sweeps``, ``GET /jobs/<hash>``,
  ``GET /jobs/<hash>/events``, ``GET /status``);
* :mod:`repro.service.client` — stdlib client +
  :class:`~repro.service.client.RemoteRuntime`, the facade behind
  ``run_all --server URL``.

Command line: ``python -m repro.service {serve,submit,sweep,status}``.
"""

from repro.service.broker import BackpressureError, DrainingError, JobBroker
from repro.service.client import (
    CircuitBreaker,
    CircuitOpenError,
    RemoteRuntime,
    RetryBudgetError,
    ServiceClient,
    ServiceError,
)
from repro.service.config import ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.records import JobRecord, Submission
from repro.service.server import ServiceServer, run_service

__all__ = [
    "BackpressureError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DrainingError",
    "JobBroker",
    "JobRecord",
    "RemoteRuntime",
    "RetryBudgetError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "Submission",
    "run_service",
]
