"""The service's human and scrape-facing views of ``broker.status()``.

Two renderers over the same status dict, both stdlib-only:

* :func:`prometheus_text` — the ``GET /metrics`` body in Prometheus
  text exposition format (version 0.0.4): every counter/gauge from the
  service registry, histograms as ``_count``/``_sum`` plus quantile
  samples, the runtime roll-up, fault/recovery health counters, and
  the load gauges (queue depth, in-flight, backpressure state).  Names
  are sanitised to ``repro_<section>_<metric>``.
* :func:`dashboard_html` — the ``GET /dashboard`` page: a
  self-refreshing static HTML table set (no JS frameworks, no external
  assets) showing uptime, queue/in-flight load, cache hit ratio,
  admission split, and p50/p99 latency — enough to watch a sweep
  land without leaving the terminal's browser.
"""

from __future__ import annotations

import html
import re

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: histogram quantiles exposed as Prometheus summary-style samples
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _metric_name(*parts: str) -> str:
    joined = "_".join(p for p in parts if p)
    name = _NAME_RE.sub("_", joined)
    if not name.startswith("repro_"):
        name = "repro_" + name
    return re.sub(r"__+", "_", name).strip("_")


def _sample(name: str, value: object, labels: str = "") -> str:
    try:
        number = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        number = 0.0
    if number == int(number):
        rendered = str(int(number))
    else:
        rendered = repr(number)
    return f"{name}{labels} {rendered}"


def prometheus_text(status: "dict[str, object]") -> str:
    """Render one ``broker.status()`` dict as Prometheus exposition
    text.  Pure function of its input — callable off-loop, testable
    without a socket."""
    lines: "list[str]" = []

    def emit(name: str, kind: str, value: object) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.append(_sample(name, value))

    service = status.get("service", {})
    if isinstance(service, dict):
        emit("repro_service_uptime_seconds", "gauge", service.get("uptime_s", 0))
        emit(
            "repro_service_draining",
            "gauge",
            1 if service.get("draining") else 0,
        )
        emit("repro_service_workers", "gauge", service.get("workers", 0))
        emit(
            "repro_service_queue_capacity",
            "gauge",
            service.get("queue_capacity", 0),
        )
        records = service.get("records", {})
        if isinstance(records, dict):
            name = "repro_service_records"
            lines.append(f"# TYPE {name} gauge")
            for state, count in sorted(records.items()):
                if state == "total":
                    continue
                lines.append(_sample(name, count, f'{{state="{state}"}}'))

    metrics = status.get("metrics", {})
    if isinstance(metrics, dict):
        for raw_name, metric in sorted(metrics.items()):
            if not isinstance(metric, dict):
                continue
            kind = metric.get("type")
            name = _metric_name(raw_name)
            if kind == "counter":
                lines.append(f"# TYPE {name}_total counter")
                lines.append(_sample(f"{name}_total", metric.get("value", 0)))
            elif kind == "gauge":
                emit(name, "gauge", metric.get("value", 0))
            elif kind == "histogram":
                lines.append(f"# TYPE {name} summary")
                for quantile, key in _QUANTILES:
                    lines.append(
                        _sample(
                            name,
                            metric.get(key, 0),
                            f'{{quantile="{quantile}"}}',
                        )
                    )
                lines.append(_sample(f"{name}_sum", metric.get("total", 0)))
                lines.append(_sample(f"{name}_count", metric.get("count", 0)))

    runtime = status.get("runtime", {})
    if isinstance(runtime, dict):
        for key, value in sorted(runtime.items()):
            if isinstance(value, (int, float)):
                kind = "gauge" if key == "wall_time" else "counter"
                name = _metric_name("runtime", key)
                if kind == "counter":
                    lines.append(f"# TYPE {name}_total counter")
                    lines.append(_sample(f"{name}_total", value))
                else:
                    emit(name, "gauge", value)

    health = status.get("health", {})
    if isinstance(health, dict):
        for key, value in sorted(health.items()):
            name = _metric_name("health", key)
            lines.append(f"# TYPE {name}_total counter")
            lines.append(_sample(f"{name}_total", value))

    cache = status.get("cache", {})
    if isinstance(cache, dict):
        emit(
            "repro_cache_entries",
            "gauge",
            cache.get("current_entries", 0),
        )

    return "\n".join(lines) + "\n"


# -- the HTML dashboard --------------------------------------------------


def _counter(metrics: "dict[str, object]", name: str) -> float:
    metric = metrics.get(name)
    if isinstance(metric, dict) and isinstance(
        metric.get("value"), (int, float)
    ):
        return float(metric["value"])
    return 0.0


def _hist(metrics: "dict[str, object]", name: str) -> "dict[str, object]":
    metric = metrics.get(name)
    return metric if isinstance(metric, dict) else {}


def _rows(pairs: "list[tuple[str, object]]") -> str:
    return "\n".join(
        f"<tr><td>{html.escape(str(k))}</td>"
        f"<td class='num'>{html.escape(str(v))}</td></tr>"
        for k, v in pairs
    )


def _fmt_us(value: object) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    if value >= 1_000_000:
        return f"{value / 1_000_000:,.2f} s"
    if value >= 1_000:
        return f"{value / 1_000:,.1f} ms"
    return f"{value:,.0f} us"


def dashboard_html(status: "dict[str, object]", refresh_s: int = 2) -> str:
    """The ``GET /dashboard`` page for one status snapshot."""
    service = status.get("service", {}) or {}
    metrics = status.get("metrics", {}) or {}
    runtime = status.get("runtime", {}) or {}
    health = status.get("health", {}) or {}

    submissions = _counter(metrics, "service.submissions")
    cache_hits = _counter(metrics, "service.cache_hits")
    dedup_hits = _counter(metrics, "service.dedup_hits")
    served_cheap = cache_hits + dedup_hits
    hit_ratio = served_cheap / submissions if submissions else 0.0
    depth = int(_counter(metrics, "service.queue_depth"))
    capacity = int(service.get("queue_capacity", 0) or 0)
    backpressure = (
        "REJECTING (queue full)"
        if capacity and depth >= capacity
        else ("draining" if service.get("draining") else "accepting")
    )

    load_rows = _rows(
        [
            ("state", backpressure),
            ("uptime", f"{float(service.get('uptime_s', 0.0)):,.0f} s"),
            ("queue depth", f"{depth} / {capacity}"),
            ("in flight", int(_counter(metrics, "service.inflight"))),
            ("workers", service.get("workers", 0)),
            ("trace id", status.get("trace_id", "-")),
        ]
    )
    admission_rows = _rows(
        [
            ("submissions", int(submissions)),
            ("enqueued (cold)", int(_counter(metrics, "service.enqueued"))),
            ("dedup attach", int(dedup_hits)),
            ("cache hits", int(cache_hits)),
            ("cache+dedup ratio", f"{hit_ratio:.1%}"),
            ("rejected (429)", int(_counter(metrics, "service.rejected"))),
        ]
    )
    outcome_rows = _rows(
        [
            ("executed", int(_counter(metrics, "service.executed"))),
            ("failed", int(_counter(metrics, "service.failed"))),
            ("cancelled", int(_counter(metrics, "service.cancelled"))),
            ("references replayed", f"{int(runtime.get('references', 0) or 0):,}"),
            (
                "fault recoveries",
                sum(
                    int(v)
                    for k, v in health.items()
                    if k.startswith("recovery.") and isinstance(v, (int, float))
                ),
            ),
        ]
    )
    latency_rows = []
    for title, name in (
        ("queue wait", "service.queue_wait_us"),
        ("run", "service.run_us"),
        ("end-to-end", "service.latency_us"),
    ):
        hist = _hist(metrics, name)
        latency_rows.append(
            (f"{title} p50", _fmt_us(hist.get("p50")))
        )
        latency_rows.append(
            (f"{title} p99", _fmt_us(hist.get("p99")))
        )
    latency = _rows(latency_rows)

    def table(title: str, rows: str) -> str:
        return (
            f"<div class='card'><h2>{html.escape(title)}</h2>"
            f"<table>{rows}</table></div>"
        )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{refresh_s}">
<title>repro.service dashboard</title>
<style>
body {{ font-family: ui-monospace, Menlo, Consolas, monospace;
       background: #111; color: #ddd; margin: 2em; }}
h1 {{ font-size: 1.2em; }} h2 {{ font-size: 1em; color: #9cf; }}
.cards {{ display: flex; flex-wrap: wrap; gap: 1.5em; }}
.card {{ background: #1b1b1b; border: 1px solid #333; padding: 1em;
        border-radius: 6px; min-width: 18em; }}
table {{ border-collapse: collapse; width: 100%; }}
td {{ padding: 0.15em 0.6em 0.15em 0; border-bottom: 1px solid #262626; }}
td.num {{ text-align: right; color: #fff; }}
footer {{ margin-top: 1.5em; color: #777; font-size: 0.85em; }}
</style>
</head>
<body>
<h1>repro.service — execution-migration sweep service</h1>
<div class="cards">
{table("load", load_rows)}
{table("admission", admission_rows)}
{table("outcomes", outcome_rows)}
{table("latency", latency)}
</div>
<footer>auto-refreshes every {refresh_s}s —
<a href="/metrics" style="color:#9cf">/metrics</a> ·
<a href="/status" style="color:#9cf">/status</a></footer>
</body>
</html>
"""
