"""Stdlib client for a running ``repro.service`` instance.

:class:`ServiceClient` wraps the HTTP API (``urllib.request``, no
dependencies) with backpressure-aware submission: a 429/503 is retried
after the server's ``Retry-After`` — capped at ``backoff_cap`` and
jittered so a herd of clients decorrelates — and transport errors
(connection refused/reset, a dropped socket) retry with exponential
backoff.  Every retry draws from one per-call budget: when it runs
out the caller gets a typed :class:`RetryBudgetError` carrying the
last underlying failure, never an uncapped sleep.  A small
:class:`CircuitBreaker` stops hammering a peer that has failed
``threshold`` times in a row until ``cooldown`` passes
(:class:`CircuitOpenError` while open).

:class:`RemoteRuntime` is the seam the experiment drivers use: it
quacks like :class:`~repro.runtime.scheduler.ExperimentRuntime`
(``map`` → ordered :class:`~repro.runtime.scheduler.JobOutcome`\\ s,
``stats``, ``bus``, ``close``), but submits every job to a service and
polls for results — ``run_all --server URL`` swaps it in and no driver
changes.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Iterator, Sequence

from repro import faults
from repro.runtime.events import EventBus, JobEvent, StderrSink
from repro.runtime.job import Job
from repro.runtime.scheduler import (
    CACHED,
    FAILED,
    INTERRUPTED,
    OK,
    JobOutcome,
    RunStats,
)


class ServiceError(RuntimeError):
    """A non-2xx response (with the server's message when it sent one)."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class RetryBudgetError(ServiceError):
    """Every retry in the per-call budget was spent without success.

    Carries the last underlying failure in ``last_error`` so callers
    (and chaos tests) can see *why* the budget ran out.
    """

    def __init__(self, attempts: int, last_error: ServiceError) -> None:
        super().__init__(
            last_error.status,
            f"retry budget exhausted after {attempts} attempts "
            f"(last: {last_error})",
            retry_after=last_error.retry_after,
        )
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ServiceError):
    """The circuit breaker is open: the peer failed repeatedly and the
    cooldown has not elapsed, so the call was not even attempted."""

    def __init__(self, remaining: float) -> None:
        super().__init__(
            0,
            f"circuit open: retry in {remaining:.1f}s",
            retry_after=remaining,
        )
        self.remaining = remaining


class CircuitBreaker:
    """Trivial consecutive-failure breaker.

    ``threshold`` consecutive recorded failures open the circuit for
    ``cooldown`` seconds; while open, :meth:`check` raises
    :class:`CircuitOpenError`.  After the cooldown one trial call is
    let through (half-open): its success closes the circuit, its
    failure re-opens it for another cooldown.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 10.0) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._consecutive = 0
        self._opened_at: "float | None" = None

    @property
    def open(self) -> bool:
        return (
            self._opened_at is not None
            and time.monotonic() - self._opened_at < self.cooldown
        )

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` while the circuit is open."""
        if self._opened_at is None:
            return
        elapsed = time.monotonic() - self._opened_at
        if elapsed < self.cooldown:
            raise CircuitOpenError(self.cooldown - elapsed)
        # Half-open: allow this attempt; reset the clock so concurrent
        # callers don't all pile in while the trial is in flight.
        self._opened_at = None

    def record_success(self) -> None:
        self._consecutive = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._consecutive += 1
        if self._consecutive >= self.threshold:
            self._opened_at = time.monotonic()


#: transport faults worth retrying (the request may never have reached
#: the server, or died mid-flight)
_TRANSPORT_ERRORS = (
    urllib.error.URLError,
    ConnectionError,
    http.client.HTTPException,
    TimeoutError,
)


class ServiceClient:
    """Talk to one service instance."""

    def __init__(
        self,
        base_url: str,
        tenant: "str | None" = None,
        timeout: float = 60.0,
        max_retries: int = 8,
        backoff: float = 0.25,
        backoff_cap: float = 10.0,
        breaker: "CircuitBreaker | None" = None,
        jitter_seed: "int | None" = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.breaker = breaker
        self._rng = random.Random(jitter_seed)

    def _retry_delay(self, attempt: int, retry_after: "float | None") -> float:
        """Sleep before retry ``attempt`` (1-based): the server's
        ``Retry-After`` when it sent one, else exponential backoff —
        either way capped at ``backoff_cap`` and jittered down by up to
        half so retrying clients decorrelate."""
        if retry_after is not None:
            base = retry_after
        else:
            base = self.backoff * (2 ** (attempt - 1))
        return min(base, self.backoff_cap) * self._rng.uniform(0.5, 1.0)

    # -- transport ------------------------------------------------------

    def _request(
        self, method: str, path: str, body: "object | None" = None
    ) -> "dict[str, object]":
        headers = {"Content-Type": "application/json"}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        data = (
            json.dumps(body, allow_nan=False).encode("utf-8")
            if body is not None
            else None
        )
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            faults.fire("client.request")
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")[:200]
            retry_after = exc.headers.get("Retry-After")
            raise ServiceError(
                exc.code,
                message or exc.reason,
                retry_after=float(retry_after) if retry_after else None,
            ) from exc
        except _TRANSPORT_ERRORS as exc:
            reason = getattr(exc, "reason", None) or exc
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {reason}"
            ) from exc

    def _submit_paced(
        self, path: str, body: "dict[str, object]", deadline: "float | None"
    ) -> "dict[str, object]":
        """POST with retry: 429/503 pace on (capped, jittered)
        ``Retry-After``, transport errors back off exponentially.

        Stops on whichever comes first — a non-retryable status, the
        wall-clock ``deadline``, or the ``max_retries`` budget (typed
        :class:`RetryBudgetError`).  An open circuit breaker raises
        :class:`CircuitOpenError` without touching the network.
        """
        limit = time.monotonic() + deadline if deadline is not None else None
        attempt = 0
        while True:
            if self.breaker is not None:
                self.breaker.check()
            try:
                result = self._request("POST", path, body)
            except ServiceError as exc:
                retryable = exc.status in (0, 429, 503)
                if self.breaker is not None and retryable:
                    self.breaker.record_failure()
                if not retryable:
                    raise
                attempt += 1
                if attempt > self.max_retries:
                    raise RetryBudgetError(attempt, exc) from exc
                delay = self._retry_delay(attempt, exc.retry_after)
                if limit is not None and time.monotonic() + delay >= limit:
                    raise
                time.sleep(delay)
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                return result

    # -- API ------------------------------------------------------------

    def submit(
        self,
        fn: "str | None" = None,
        params: "dict[str, object] | None" = None,
        label: str = "",
        job: "Job | None" = None,
        wait: bool = False,
        wait_timeout: "float | None" = None,
        deadline: "float | None" = 60.0,
    ) -> "dict[str, object]":
        """Submit one job (by spec or as a :class:`Job`)."""
        if job is not None:
            fn, params, label = job.fn, job.kwargs, job.label
        if fn is None:
            raise ValueError("submit() needs fn=... or job=...")
        body: "dict[str, object]" = {
            "fn": fn,
            "params": params or {},
            "label": label,
        }
        if wait:
            body["wait"] = True
            if wait_timeout is not None:
                body["wait_timeout"] = wait_timeout
        return self._submit_paced("/jobs", body, deadline)

    def sweep(
        self,
        body: "dict[str, object]",
        wait: bool = False,
        wait_timeout: "float | None" = None,
        deadline: "float | None" = 60.0,
    ) -> "dict[str, object]":
        if wait:
            body = {**body, "wait": True}
            if wait_timeout is not None:
                body["wait_timeout"] = wait_timeout
        return self._submit_paced("/sweeps", body, deadline)

    def job(self, job_hash: str) -> "dict[str, object]":
        return self._request("GET", f"/jobs/{job_hash}")

    def wait_for(
        self,
        job_hash: str,
        timeout: "float | None" = None,
        poll: float = 0.2,
    ) -> "dict[str, object]":
        """Poll one job until it reaches a terminal state."""
        limit = time.monotonic() + timeout if timeout is not None else None
        while True:
            body = self.job(job_hash)
            if body.get("state") in ("finished", "failed", "cancelled"):
                return body
            if limit is not None and time.monotonic() >= limit:
                raise ServiceError(
                    0, f"timed out waiting for job {job_hash}"
                )
            time.sleep(poll)

    def events(self, job_hash: str) -> "Iterator[dict[str, object]]":
        """Stream one job's JSONL events (replay + live tail)."""
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_hash}/events"
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def status(self) -> "dict[str, object]":
        return self._request("GET", "/status")

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceError, OSError):
            return False


#: terminal service states -> JobOutcome statuses
_STATE_TO_STATUS = {
    "finished": OK,
    "failed": FAILED,
    "cancelled": INTERRUPTED,
}


class RemoteRuntime:
    """An ``ExperimentRuntime``-shaped facade over a service.

    ``map`` submits every job (paced under backpressure), then polls
    until each is terminal, returning outcomes in input order — the
    contract the drivers rely on.  Submissions the server answers with
    ``status: cache-hit`` become ``cached`` outcomes, so a repeated
    ``run_all --server`` reports all cache hits exactly like the local
    path does.
    """

    def __init__(
        self,
        client: ServiceClient,
        bus: "EventBus | None" = None,
        poll: float = 0.2,
        deadline: "float | None" = None,
    ) -> None:
        self.client = client
        self.bus = bus if bus is not None else EventBus([StderrSink()])
        self.poll = poll
        self.deadline = deadline
        self.stats = RunStats()
        # Shape compatibility with ExperimentRuntime; the service owns
        # the real cache.
        self.cache = None

    def map(self, jobs: "Sequence[Job]") -> "list[JobOutcome]":
        jobs = list(jobs)
        self.stats.submitted += len(jobs)
        start = time.monotonic()
        submitted: "list[tuple[Job, dict[str, object]]]" = []
        for job in jobs:
            response = self.client.submit(job=job, deadline=self.deadline)
            submitted.append((job, response))
        outcomes: "list[JobOutcome]" = []
        for job, response in submitted:
            body = (
                response
                if response.get("state") in _STATE_TO_STATUS
                else self.client.wait_for(job.hash, poll=self.poll)
            )
            outcomes.append(self._outcome(job, response, body))
        self.stats.wall_time += time.monotonic() - start
        for outcome in outcomes:
            self.stats.absorb(outcome)
        return outcomes

    def run_one(self, job: Job) -> JobOutcome:
        return self.map([job])[0]

    def _outcome(
        self,
        job: Job,
        submission: "dict[str, object]",
        body: "dict[str, object]",
    ) -> JobOutcome:
        state = str(body.get("state"))
        status = _STATE_TO_STATUS.get(state, INTERRUPTED)
        if status == OK and submission.get("status") == "cache-hit":
            status = CACHED
        payload = body.get("payload")
        error = body.get("error")
        outcome = JobOutcome(
            job=job,
            status=status,
            payload=payload if isinstance(payload, dict) else None,
            error=str(error) if error is not None else None,
        )
        self.bus.emit(
            JobEvent(
                event=(
                    "cache-hit"
                    if status == CACHED
                    else {OK: "finished", FAILED: "failed"}.get(
                        status, "interrupted"
                    )
                ),
                label=job.name,
                job_hash=job.hash,
                error=outcome.error,
            )
        )
        return outcome

    def close(self) -> None:
        self.bus.close()
