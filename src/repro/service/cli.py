"""``python -m repro.service`` — serve, submit, inspect.

Subcommands::

    python -m repro.service serve --port 8321 --workers 4 \\
        --cache-dir .repro-cache --runlog service.jsonl
    python -m repro.service submit --server http://127.0.0.1:8321 \\
        repro.experiments.table2:table2_job \\
        --params '{"name": "mst", "scale": 0.5}' --wait
    python -m repro.service sweep --server http://127.0.0.1:8321 \\
        --experiment table2 --workloads mst --scale 0.5 --wait
    python -m repro.service status --server http://127.0.0.1:8321

``serve`` prints ``repro.service listening on http://HOST:PORT`` on
stdout once bound (with ``--port 0`` the kernel picks the port — CI
and tests parse that line), then runs until SIGTERM/SIGINT, which
triggers the graceful drain: stop accepting, finish or interrupt
running jobs, flush every JSONL sink, exit 0.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.service.client import ServiceClient, ServiceError
from repro.service.config import DEFAULT_PORT, ServiceConfig
from repro.service.server import run_service


def _config_from_args(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        isolate=not args.inline,
        timeout=args.timeout,
        retries=args.retries,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        drain_grace=args.drain_grace,
        runlog=args.runlog,
        obs_dir=args.obs,
        quiet=args.quiet,
        request_timeout=args.request_timeout,
        fn_prefixes=tuple(args.allow_fn) if args.allow_fn else ("repro.",),
    )


async def _serve(config: ServiceConfig) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            signal.signal(signum, lambda *_: stop.set())

    def ready(server) -> None:
        print(f"repro.service listening on {server.url}", flush=True)

    await run_service(config, ready=ready, stop=stop)
    print("repro.service drained cleanly", flush=True)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    return asyncio.run(_serve(_config_from_args(args)))


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.server, tenant=args.tenant)
    try:
        params = json.loads(args.params) if args.params else {}
    except ValueError as exc:
        print(f"invalid --params JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(params, dict):
        print("--params must be a JSON object", file=sys.stderr)
        return 2
    try:
        body = client.submit(
            fn=args.fn,
            params=params,
            label=args.label,
            wait=args.wait,
            wait_timeout=args.wait_timeout,
        )
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0 if body.get("state") != "failed" else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    client = ServiceClient(args.server, tenant=args.tenant)
    body: "dict[str, object]" = {"experiment": args.experiment}
    if args.workloads:
        body["workloads"] = args.workloads
    if args.scale is not None:
        body["scale"] = args.scale
    if args.seed is not None:
        body["seed"] = args.seed
    try:
        response = client.sweep(
            body, wait=args.wait, wait_timeout=args.wait_timeout
        )
    except ServiceError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    counts = response.get("counts", {})
    failed = any(
        item.get("state") == "failed"
        for item in response.get("jobs", [])
        if isinstance(item, dict)
    )
    return 1 if failed or counts.get("rejected") else 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.server, tenant=args.tenant)
    try:
        print(json.dumps(client.status(), indent=2, sort_keys=True))
    except ServiceError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a service instance")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="0 = ephemeral"
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument(
        "--inline",
        action="store_true",
        help="run jobs in-process instead of per-job worker processes "
        "(faster startup, no crash isolation — tests and trusted use)",
    )
    serve.add_argument("--timeout", type=float, default=None)
    serve.add_argument("--retries", type=int, default=1)
    serve.add_argument("--no-cache", action="store_true")
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--drain-grace", type=float, default=30.0)
    serve.add_argument(
        "--runlog", default=None, help="JSONL run log of scheduler events"
    )
    serve.add_argument(
        "--obs",
        default=None,
        metavar="DIR",
        help="on drain, export service metrics + Chrome trace here",
    )
    serve.add_argument("--quiet", action="store_true")
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="seconds a peer gets to deliver a complete request before "
        "the connection is answered 408 and closed (slow-loris bound)",
    )
    serve.add_argument(
        "--allow-fn",
        action="append",
        metavar="PREFIX",
        help="additional allowed job-fn import prefix (repeatable; "
        "default: repro.)",
    )
    serve.set_defaults(handler=_cmd_serve)

    def _client_args(command) -> None:
        command.add_argument(
            "--server",
            required=True,
            metavar="URL",
            help="base URL of a running service",
        )
        command.add_argument("--tenant", default=None)

    submit = sub.add_parser("submit", help="submit one job")
    _client_args(submit)
    submit.add_argument("fn", help="job function, 'module:function'")
    submit.add_argument(
        "--params", default=None, help="JSON object of job params"
    )
    submit.add_argument("--label", default="")
    submit.add_argument("--wait", action="store_true")
    submit.add_argument("--wait-timeout", type=float, default=None)
    submit.set_defaults(handler=_cmd_submit)

    sweep = sub.add_parser("sweep", help="submit a named experiment sweep")
    _client_args(sweep)
    sweep.add_argument("--experiment", default="table2")
    sweep.add_argument("--workloads", nargs="+", default=None)
    sweep.add_argument("--scale", type=float, default=None)
    sweep.add_argument("--seed", type=int, default=None)
    sweep.add_argument("--wait", action="store_true")
    sweep.add_argument("--wait-timeout", type=float, default=None)
    sweep.set_defaults(handler=_cmd_sweep)

    status = sub.add_parser("status", help="print the /status dashboard")
    _client_args(status)
    status.set_defaults(handler=_cmd_status)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
