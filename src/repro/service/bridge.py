"""Thread boundary between the runtime's event bus and the broker.

Jobs execute on executor threads (each driving ``runtime.run_one``),
so the scheduler's :class:`~repro.runtime.events.JobEvent` stream is
emitted *off* the event loop.  :class:`LoopSink` is a normal bus sink
that marshals every event onto the loop with
``call_soon_threadsafe`` — the broker then updates records and fans
out to streaming connections without any locking, because all record
mutation stays on the loop thread.

Ordering is preserved end to end: the bus serialises emission, the
loop runs callbacks in scheduling order, and a job's terminal bus
event is always scheduled before its ``run_in_executor`` future
resolves — so a record's history is complete before waiters wake.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.runtime.events import JobEvent, event_record


class LoopSink:
    """Runtime event sink that forwards into an asyncio loop."""

    def __init__(
        self,
        loop: "asyncio.AbstractEventLoop",
        callback: "Callable[[JobEvent], None]",
    ) -> None:
        self._loop = loop
        self._callback = callback
        self._closed = False

    def emit(self, event: JobEvent) -> None:
        if self._closed:
            return
        try:
            self._loop.call_soon_threadsafe(self._callback, event)
        except RuntimeError:
            # The loop is gone (shutdown race); late events are only
            # progress decoration at that point, never results.
            self._closed = True

    def close(self) -> None:
        # Deliberately not marking closed here: the runtime closes its
        # bus on every drain, but the broker may keep executing; the
        # sink only dies with the loop.
        pass


__all__ = ["LoopSink", "event_record"]
