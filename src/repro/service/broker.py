"""The job broker: admission, dedup, backpressure, execution, drain.

This is the service's core loop, sitting between the HTTP front end
and the :class:`~repro.runtime.scheduler.ExperimentRuntime`:

* **Admission** (:meth:`JobBroker.submit`) classifies every submission
  by the job's content hash: a hash already in flight *attaches* (N
  identical submissions share one execution and all see the same
  payload), a hash with a finished record or a result-cache artifact is
  a *cache hit* served without touching the pool, and a cold hash is
  *enqueued* — or bounced with :class:`BackpressureError` when the
  bounded queue is full (the HTTP layer turns that into
  ``429 Retry-After``).
* **Execution**: ``workers`` slot coroutines pull records off the
  queue and drive ``runtime.run_one`` on executor threads; with
  ``isolate`` each job gets its own spawned worker process (crash
  containment and per-job timeouts, exactly as in batch mode), without
  it jobs run in-thread (fast, for tests and trusted embeddings).
  Scheduler events flow back over the bus through
  :class:`~repro.service.bridge.LoopSink` onto the loop, updating each
  record's streamable history.
* **Drain** (:meth:`JobBroker.drain`): stop admitting, cancel
  queued-but-unstarted records, give running jobs ``drain_grace``
  seconds to finish, then trip the scheduler's ``cancel`` hook so
  stragglers are interrupted (their finished siblings' cache artifacts
  survive — resubmission after restart resumes from the cache), and
  finally flush every event sink.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import faults
from repro.obs import trace_context
from repro.runtime.cache import ResultCache
from repro.runtime.events import EventBus, JobEvent, JsonlSink, StderrSink, event_record
from repro.runtime.health import health_snapshot
from repro.runtime.job import Job
from repro.runtime.scheduler import (
    CACHED,
    FAILED as OUTCOME_FAILED,
    OK,
    ExperimentRuntime,
    JobOutcome,
    RuntimeConfig,
)
from repro.service.bridge import LoopSink
from repro.service.config import ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.records import (
    ATTACHED,
    CACHE_HIT,
    CANCELLED,
    FINISHED,
    FAILED,
    RUNNING,
    SUBMITTED,
    JobRecord,
    Submission,
    service_event,
)


class BackpressureError(Exception):
    """The submission queue is full; retry after ``retry_after``s."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"submission queue full, retry after {retry_after:g}s"
        )
        self.retry_after = retry_after


class DrainingError(Exception):
    """The service is draining and no longer accepts submissions."""


def runtime_for_service(config: ServiceConfig) -> ExperimentRuntime:
    """The broker's runtime: spawned worker processes when isolating
    (``fork`` is unsafe under the service's thread pool), in-process
    execution otherwise; sinks per the service flags."""
    runtime_config = RuntimeConfig(
        jobs=2 if config.isolate else 1,
        timeout=config.timeout,
        retries=config.retries,
        use_cache=config.use_cache,
        start_method="spawn" if config.isolate else RuntimeConfig().start_method,
    )
    sinks: "list[object]" = [] if config.quiet else [StderrSink()]
    if config.runlog:
        sinks.append(JsonlSink(config.runlog))
    if config.obs_dir:
        from repro.obs.bridge import ObsRunlogSink

        sinks.append(
            ObsRunlogSink(Path(config.obs_dir) / "service-runtime.jsonl")
        )
    cache = (
        ResultCache(root=config.cache_dir) if config.cache_dir else ResultCache()
    )
    return ExperimentRuntime(
        config=runtime_config, cache=cache, bus=EventBus(sinks)
    )


class JobBroker:
    """Admission + execution + lifecycle state for one service."""

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        runtime: "ExperimentRuntime | None" = None,
        metrics: "ServiceMetrics | None" = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.runtime = runtime or runtime_for_service(self.config)
        self.metrics = metrics or ServiceMetrics()
        self._records: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._queue: "asyncio.Queue[JobRecord] | None" = None
        self._slots: "list[asyncio.Task]" = []
        self._executor: "ThreadPoolExecutor | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._cancel = threading.Event()
        self._draining = False
        self._inflight = 0
        self.started_at: "float | None" = None
        self.trace_root: "trace_context.TraceContext | None" = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running loop and spawn the worker slots."""
        self._loop = asyncio.get_running_loop()
        # One trace id for this service instance: the shared scheduler
        # stamps every JobEvent with it, and service-synthesised events
        # derive the identical per-job span ids (span_for_job), so
        # admission and execution correlate without coordination.
        self.trace_root = trace_context.ensure_current()
        self._queue = asyncio.Queue(maxsize=self.config.queue_capacity)
        self.runtime.bus.add(LoopSink(self._loop, self._on_job_event))
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        self._slots = [
            self._loop.create_task(self._slot(), name=f"service-slot-{i}")
            for i in range(self.config.workers)
        ]
        self.started_at = time.time()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- admission ------------------------------------------------------

    def submit(self, job: Job, tenant: str = "anon") -> Submission:
        """Admit one submission; must be called on the loop thread.

        Raises :class:`DrainingError` after drain began and
        :class:`BackpressureError` when the queue is full.  Never
        blocks: cache hits answer from the record table or one small
        artifact read, everything else lands on the queue.
        """
        faults.fire("service.broker.submit")
        if self._draining:
            raise DrainingError("service is draining")
        record = self._records.get(job.hash)
        if record is not None and not record.terminal:
            # In flight: attach.  This submission shares the one
            # execution and its event stream; no new pool work.
            record.note_submission(tenant)
            self.metrics.submission(tenant, ATTACHED)
            return Submission(record, ATTACHED)
        if record is not None and record.state == FINISHED:
            # Finished this process's lifetime: memory front of the
            # shared cache.
            record.note_submission(tenant)
            self._records.move_to_end(job.hash)
            self.metrics.submission(tenant, CACHE_HIT)
            return Submission(record, CACHE_HIT)
        # failed/cancelled terminal records fall through: resubmission
        # is an explicit request to try again.
        if self.config.use_cache:
            payload = self.runtime.cache.get(job)
            if payload is not None:
                record = JobRecord(job, tenant)
                record.add_event(
                    service_event("cache-hit", job, trace=self._job_trace(job))
                )
                record.finish(
                    FINISHED, JobOutcome(job=job, status=CACHED, payload=payload)
                )
                self._store(record)
                self.metrics.submission(tenant, CACHE_HIT)
                return Submission(record, CACHE_HIT)
        assert self._queue is not None, "broker not started"
        if self._queue.full():
            self.metrics.rejected(tenant)
            raise BackpressureError(retry_after=self.config.retry_after)
        record = JobRecord(job, tenant)
        record.add_event(service_event("queued", job, trace=self._job_trace(job)))
        self._store(record)
        self._queue.put_nowait(record)
        self.metrics.submission(tenant, SUBMITTED)
        self._update_depth()
        return Submission(record, SUBMITTED)

    def get(self, job_hash: str) -> "JobRecord | None":
        return self._records.get(job_hash)

    def _job_trace(self, job: Job) -> "trace_context.TraceContext | None":
        if self.trace_root is None:
            return None
        return trace_context.job_context(self.trace_root, job.hash)

    def _store(self, record: JobRecord) -> None:
        self._records[record.job.hash] = record
        self._records.move_to_end(record.job.hash)
        # Bound memory: evict the oldest *terminal* records beyond the
        # cap (live ones are load, not cache — never evicted).  Their
        # payloads remain served from the on-disk cache.
        excess = len(self._records) - self.config.max_records
        if excess > 0:
            stale = [
                h
                for h, r in self._records.items()
                if r.terminal
            ][:excess]
            for job_hash in stale:
                del self._records[job_hash]

    # -- execution ------------------------------------------------------

    async def _slot(self) -> None:
        """One worker slot: pull, execute, finish — until drained."""
        assert self._queue is not None and self._loop is not None
        while True:
            try:
                record = await asyncio.wait_for(self._queue.get(), timeout=0.25)
            except asyncio.TimeoutError:
                if self._draining:
                    return
                continue
            self._update_depth()
            if record.terminal:
                continue  # cancelled while queued
            record.state = RUNNING
            self._inflight += 1
            self._update_depth()
            try:
                outcome = await self._loop.run_in_executor(
                    self._executor, self._run, record.job
                )
            except Exception as exc:  # noqa: BLE001 - slot must survive
                error = f"{type(exc).__name__}: {exc}"
                record.add_event(
                    service_event(
                        "failed",
                        record.job,
                        trace=self._job_trace(record.job),
                        error=error,
                    )
                )
                outcome = JobOutcome(
                    job=record.job, status=OUTCOME_FAILED, error=error
                )
            finally:
                self._inflight -= 1
                self._update_depth()
            self._finish(record, outcome)
            if self._draining and self._queue.empty():
                return

    def _run(self, job: Job) -> JobOutcome:
        """Executor-thread body: one job through the shared runtime."""
        return self.runtime.run_one(job, cancel=self._cancel.is_set)

    def _finish(self, record: JobRecord, outcome: JobOutcome) -> None:
        now = time.time()
        if outcome.status in (OK, CACHED):
            state = FINISHED
        elif outcome.status == OUTCOME_FAILED:
            state = FAILED
        else:
            state = CANCELLED  # interrupted by the drain cancel hook
        record.finish(state, outcome, now)
        run_s = now - (record.started_at or record.submitted_at)
        self.metrics.finished(state, run_s, now - record.submitted_at)

    def _on_job_event(self, event: JobEvent) -> None:
        """Bus event marshalled onto the loop: extend the record's
        streamable history (the broker's own ``queued`` stands in for
        the scheduler's)."""
        record = self._records.get(event.job_hash)
        if record is None or event.event == "queued":
            return
        if event.event == "started" and record.started_at is None:
            record.started_at = event.timestamp
            self.metrics.started(record.started_at - record.submitted_at)
        record.add_event(event_record(event))

    def _update_depth(self) -> None:
        queue = self._queue
        self.metrics.set_depth(
            queue.qsize() if queue is not None else 0, self._inflight
        )

    # -- drain ----------------------------------------------------------

    async def drain(self, grace: "float | None" = None) -> None:
        """Graceful shutdown: see the module docstring for semantics."""
        if self._draining:
            return
        self._draining = True
        grace = self.config.drain_grace if grace is None else grace
        assert self._queue is not None and self._loop is not None
        while True:
            try:
                record = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if record.terminal:
                continue
            record.add_event(
                service_event(
                    "cancelled", record.job, trace=self._job_trace(record.job)
                )
            )
            record.finish(CANCELLED)
            self.metrics.finished(
                CANCELLED, 0.0, time.time() - record.submitted_at
            )
        self._update_depth()
        if self._slots:
            _done, pending = await asyncio.wait(self._slots, timeout=grace)
            if pending:
                # Grace expired: interrupt running scheduler work.  The
                # cancel hook is polled every poll_interval, so give the
                # slots a short, bounded second window.
                self._cancel.set()
                _done, pending = await asyncio.wait(self._slots, timeout=10.0)
                for task in pending:
                    task.cancel()
        # Anything still marked running could not be interrupted (an
        # in-process job ignores the cancel hook mid-job): record the
        # truth rather than hang.
        for record in self._records.values():
            if not record.terminal:
                record.add_event(
                service_event(
                    "cancelled", record.job, trace=self._job_trace(record.job)
                )
            )
                record.finish(CANCELLED)
                self.metrics.finished(
                    CANCELLED, 0.0, time.time() - record.submitted_at
                )
        # Flush and close every sink (run log lines reach disk) off the
        # loop, then stop the executor without waiting on orphaned
        # threads.
        await self._loop.run_in_executor(None, self.runtime.close)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self.config.obs_dir:
            self._export_obs()

    def _export_obs(self) -> None:
        """Service metrics + a Chrome trace of the scheduler stream,
        through the existing obs exporters (best effort)."""
        try:
            from repro.obs.bridge import runtime_trace_events
            from repro.obs.export import load_events_jsonl

            obs_dir = Path(self.config.obs_dir)
            obs_dir.mkdir(parents=True, exist_ok=True)
            (obs_dir / "service-metrics.json").write_text(
                json.dumps(self.metrics.snapshot(), indent=2, sort_keys=True)
                + "\n",
                encoding="utf-8",
            )
            runlog = obs_dir / "service-runtime.jsonl"
            if runlog.exists():
                document = {
                    "traceEvents": runtime_trace_events(
                        load_events_jsonl(runlog)
                    )
                }
                (obs_dir / "service-trace.json").write_text(
                    json.dumps(document) + "\n", encoding="utf-8"
                )
        except Exception as exc:  # noqa: BLE001 - telemetry is best effort
            print(f"[service] obs export failed: {exc}")

    # -- status ---------------------------------------------------------

    def status(self) -> "dict[str, object]":
        """The ``GET /status`` dashboard body."""
        by_state: "dict[str, int]" = {}
        for record in self._records.values():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        cache = self.runtime.cache
        generation = cache.generation_dir
        current_entries = (
            sum(
                1
                for path in generation.glob("*.json")
                if not path.name.startswith(".tmp-")
            )
            if generation.is_dir()
            else 0
        )
        stats = self.runtime.stats
        return {
            "service": {
                "uptime_s": (
                    time.time() - self.started_at
                    if self.started_at is not None
                    else 0.0
                ),
                "draining": self._draining,
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "queue_depth": self._queue.qsize() if self._queue else 0,
                "inflight": self._inflight,
                "records": {"total": len(self._records), **by_state},
            },
            "cache": {
                "enabled": self.config.use_cache,
                "root": str(cache.root),
                "code_version": cache.code_version,
                "current_entries": current_entries,
            },
            "runtime": {
                "submitted": stats.submitted,
                "executed": stats.executed,
                "cache_hits": stats.cache_hits,
                "failed": stats.failed,
                "interrupted": stats.interrupted,
                "references": stats.references,
                "wall_time": stats.wall_time,
            },
            "metrics": self.metrics.snapshot(),
            "health": health_snapshot(),
            "trace_id": (
                self.trace_root.trace_id
                if self.trace_root is not None
                else None
            ),
        }
