"""In-memory job records: the service's view of one job hash.

A :class:`JobRecord` is the single point every concern meets at — the
submission path attaches duplicates to it, the executor drives it
through its lifecycle, the streaming API replays and tails its event
history, and the status endpoint counts it.  All mutation happens on
the event loop thread (worker-thread traffic is marshalled in through
``call_soon_threadsafe``), so records need no locks.
"""

from __future__ import annotations

import asyncio
import time

from repro.runtime.job import Job
from repro.runtime.scheduler import JobOutcome

#: record lifecycle states
QUEUED, RUNNING, FINISHED, FAILED, CANCELLED = (
    "queued",
    "running",
    "finished",
    "failed",
    "cancelled",
)
TERMINAL_STATES = (FINISHED, FAILED, CANCELLED)

#: submission kinds the broker reports back to the API layer
SUBMITTED, ATTACHED, CACHE_HIT = "submitted", "attached", "cache-hit"

#: sentinel pushed to subscriber queues when a record's stream ends
STREAM_END = None


class JobRecord:
    """One job hash's lifecycle inside the service."""

    __slots__ = (
        "job",
        "state",
        "submitted_at",
        "started_at",
        "finished_at",
        "submissions",
        "tenants",
        "history",
        "subscribers",
        "done",
        "outcome",
    )

    def __init__(self, job: Job, tenant: str, now: "float | None" = None):
        self.job = job
        self.state = QUEUED
        self.submitted_at = now if now is not None else time.time()
        self.started_at: "float | None" = None
        self.finished_at: "float | None" = None
        self.submissions = 0
        self.tenants: "dict[str, int]" = {}
        self.history: "list[dict[str, object]]" = []
        self.subscribers: "list[asyncio.Queue]" = []
        self.done = asyncio.Event()
        self.outcome: "JobOutcome | None" = None
        self.note_submission(tenant)

    # -- submission bookkeeping -----------------------------------------

    def note_submission(self, tenant: str) -> None:
        self.submissions += 1
        self.tenants[tenant] = self.tenants.get(tenant, 0) + 1

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def payload(self) -> "dict[str, object] | None":
        return self.outcome.payload if self.outcome is not None else None

    @property
    def error(self) -> "str | None":
        return self.outcome.error if self.outcome is not None else None

    # -- event history + live streams -----------------------------------

    def add_event(self, record: "dict[str, object]") -> None:
        """Append one event record and fan it to live subscribers."""
        self.history.append(record)
        for queue in self.subscribers:
            queue.put_nowait(record)

    def subscribe(self) -> "asyncio.Queue":
        """A queue that replays the history then tails live events;
        :data:`STREAM_END` marks the end for terminal records."""
        queue: "asyncio.Queue" = asyncio.Queue()
        for record in self.history:
            queue.put_nowait(record)
        if self.terminal:
            queue.put_nowait(STREAM_END)
        else:
            self.subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: "asyncio.Queue") -> None:
        try:
            self.subscribers.remove(queue)
        except ValueError:
            pass  # already ended the stream

    # -- lifecycle ------------------------------------------------------

    def finish(
        self,
        state: str,
        outcome: "JobOutcome | None" = None,
        now: "float | None" = None,
    ) -> None:
        """Move to a terminal state, wake waiters, end live streams."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, got {state!r}")
        self.state = state
        self.outcome = outcome
        self.finished_at = now if now is not None else time.time()
        for queue in self.subscribers:
            queue.put_nowait(STREAM_END)
        self.subscribers.clear()
        self.done.set()

    # -- API shape ------------------------------------------------------

    def describe(self, with_payload: bool = True) -> "dict[str, object]":
        """The ``GET /jobs/<hash>`` response body."""
        body: "dict[str, object]" = {
            "hash": self.job.hash,
            "label": self.job.name,
            "fn": self.job.fn,
            "params": self.job.kwargs,
            "state": self.state,
            "submissions": self.submissions,
            "tenants": dict(self.tenants),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self.history),
        }
        if self.state == FINISHED and with_payload:
            body["payload"] = self.payload
        if self.error is not None:
            body["error"] = self.error
        return body


class Submission:
    """What one ``submit`` produced: the record plus how it was served."""

    __slots__ = ("record", "kind")

    def __init__(self, record: JobRecord, kind: str):
        if kind not in (SUBMITTED, ATTACHED, CACHE_HIT):
            raise ValueError(f"unknown submission kind {kind!r}")
        self.record = record
        self.kind = kind


def service_event(
    event: str, job: Job, trace=None, **extra: object
) -> "dict[str, object]":
    """A service-synthesised event record in the run-log wire shape
    (``queued`` at admission, ``cancelled`` on drain) — same keys as
    the bridged scheduler events so one JSONL stream stays uniform.

    ``trace`` (a :class:`~repro.obs.trace_context.TraceContext` for the
    job) stamps the correlation ids; the span id is derived from the
    job hash exactly as the scheduler derives it, so admission events
    and execution events land on the *same* span."""
    record: "dict[str, object]" = {
        "event": event,
        "label": job.name,
        "job_hash": job.hash,
        "timestamp": time.time(),
        "attempt": 1,
        "duration": None,
        "references": None,
        "error": None,
        "refs_per_sec": None,
    }
    if trace is not None:
        record["trace_id"] = trace.trace_id
        record["span_id"] = trace.span_id
        record["parent_span_id"] = trace.parent_span_id
    record.update(extra)
    return record
