"""Experiment-level analysis built on the substrates.

* :mod:`repro.analysis.stack_profiles` -- the section 4.1 methodology:
  single-stack profile ``p1`` vs 4-way-split profile ``p4`` plus the
  transition frequency, in one pass over an L1-filtered stream.
* :mod:`repro.analysis.splittability` -- quantifying the gap between
  ``p1`` and ``p4`` ("splittability" as the paper uses the word).
* :mod:`repro.analysis.sweeps` -- parameter sweeps for the paper's
  design discussions: R-window size (section 3.3), transition-filter
  width (section 3.4), sampling ratio (section 3.5).
"""

from repro.analysis.pointer_filtering import (
    PointerFilteringResult,
    run_pointer_filtering,
)
from repro.analysis.stack_profiles import StackExperimentResult, run_stack_experiment
from repro.analysis.splittability import (
    SplittabilityReport,
    profile_gap,
    splittability_report,
)
from repro.analysis.sweeps import (
    FilterSweepPoint,
    RWindowSweepPoint,
    SamplingSweepPoint,
    filter_width_sweep,
    rwindow_sweep,
    sampling_sweep,
)

__all__ = [
    "FilterSweepPoint",
    "PointerFilteringResult",
    "RWindowSweepPoint",
    "SamplingSweepPoint",
    "SplittabilityReport",
    "StackExperimentResult",
    "filter_width_sweep",
    "profile_gap",
    "run_pointer_filtering",
    "run_stack_experiment",
    "rwindow_sweep",
    "sampling_sweep",
    "splittability_report",
]
