"""Quantifying "splittability".

The paper uses the word informally: a working set is splittable when a
balanced partition exists whose transition frequency is small (say,
below one transition every 10 references), and Figures 4-5 diagnose it
visually — ``p4`` dropping below ``p1``.  This module turns that
diagnosis into numbers so tests and reports can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stack_profiles import (
    PAPER_CACHE_SIZES_LINES,
    StackExperimentResult,
)


def profile_gap(
    result: StackExperimentResult,
    sizes_lines: "Sequence[int]" = PAPER_CACHE_SIZES_LINES,
) -> float:
    """``max_x (p1(x) - p4(x))``: the largest miss-ratio reduction the
    4-way split achieves at any cache size.  ~0 on unsplittable sets."""
    p1_curve, p4_curve = result.curves(sizes_lines)
    return max(a - b for a, b in zip(p1_curve, p4_curve))


@dataclass(frozen=True)
class SplittabilityReport:
    """One workload's splittability verdict."""

    name: str
    gap: float  #: max miss-ratio reduction across cache sizes
    transition_frequency: float
    splittable: bool

    #: Thresholds: the paper calls 1/10 transitions the outer limit of
    #: splittability and its clearly-splittable benchmarks show profile
    #: gaps of tens of percentage points.
    GAP_THRESHOLD = 0.05
    TRANSITION_THRESHOLD = 0.1


def splittability_report(
    result: StackExperimentResult,
    sizes_lines: "Sequence[int]" = PAPER_CACHE_SIZES_LINES,
) -> SplittabilityReport:
    """Classify a stack-experiment result."""
    gap = profile_gap(result, sizes_lines)
    frequency = result.transition_frequency
    return SplittabilityReport(
        name=result.name,
        gap=gap,
        transition_frequency=frequency,
        splittable=(
            gap >= SplittabilityReport.GAP_THRESHOLD
            and frequency <= SplittabilityReport.TRANSITION_THRESHOLD
        ),
    )
