"""Parameter sweeps for the paper's design discussions.

Three tunables interact with the migration penalty (sections 3.3-3.5
and the conclusion):

* **R-window size** — Circular(N) splits iff ``N > 2|R|``; after
  convergence the transition frequency stays under ``1/(2|R|)``;
  HalfRandom(m) needs ``|R|`` not much larger than ``m``.
* **Transition-filter width** — each extra bit halves the transition
  frequency on unsplittable sets but doubles the reaction delay on
  splittable ones.
* **Sampling ratio** — fewer sampled lines mean a smaller affinity
  cache and fewer filter updates (so the filter can lose bits), at the
  cost of slower adaptation.

Each sweep returns small result records the ablation benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.controller import ControllerConfig, MigrationController
from repro.core.sampling import SamplingPolicy


def _run_controller(
    config: ControllerConfig,
    references: "Iterable[int]",
    tail_fraction: float = 0.25,
) -> "tuple[float, float, int]":
    """Run a controller; return (overall freq, tail freq, transitions).

    The tail frequency is measured over the last ``tail_fraction`` of
    the stream, i.e. after convergence.
    """
    controller = MigrationController(config)
    references = list(references)
    tail_start = int(len(references) * (1.0 - tail_fraction))
    transitions_at_tail = 0
    for i, line in enumerate(references):
        if i == tail_start:
            transitions_at_tail = controller.stats.transitions
        controller.observe(line)
    stats = controller.stats
    tail_references = max(1, len(references) - tail_start)
    tail_frequency = (stats.transitions - transitions_at_tail) / tail_references
    return stats.transition_frequency, tail_frequency, stats.transitions


@dataclass(frozen=True)
class RWindowSweepPoint:
    window_size: int
    working_set: int
    overall_frequency: float
    tail_frequency: float
    balance: float  #: fraction of elements with positive affinity
    instability: float  #: fraction of elements whose sign changed
    #: between two snapshots one working-set lap apart

    @property
    def split_achieved(self) -> bool:
        """A real split needs three things at once:

        * **balance** — an unsplit set has one sign everywhere;
        * **converged transitions** — below the paper's 1/(2|R|) bound;
        * **stability** — at ``N = 2|R|`` the window covers half the
          set and the "split" is a wave rotating with the window: any
          snapshot looks balanced, transitions can even be zero, but
          per-element assignments churn every lap.  Comparing two
          snapshots a lap apart exposes it.
        """
        balanced = 0.2 <= self.balance <= 0.8
        converged = self.tail_frequency <= 1.5 / (2 * self.window_size)
        stable = self.instability < 0.1
        return balanced and converged and stable


def rwindow_sweep(
    behavior_factory: "Callable[[], object]",
    window_sizes: "Sequence[int]",
    num_references: int = 400_000,
    filter_bits: int = 16,
) -> "list[RWindowSweepPoint]":
    """Sweep |R| for a 2-way controller over one behaviour."""
    points = []
    for window in window_sizes:
        behavior = behavior_factory()
        config = ControllerConfig(
            num_subsets=2, x_window_size=window, filter_bits=filter_bits
        )
        controller = MigrationController(config)
        references = list(behavior.addresses(num_references))
        tail_start = int(len(references) * 0.75)
        # Half a working-set lap apart: a genuinely split assignment is
        # unchanged at any offset, while the rotating-wave state at
        # N <= 2|R| is caught mid-rotation (a full lap would alias).
        snapshot_at = max(0, len(references) - behavior.num_lines // 2 - 1)
        transitions_at_tail = 0
        earlier_signs: "dict[int, bool]" = {}
        for i, line in enumerate(references):
            if i == tail_start:
                transitions_at_tail = controller.stats.transitions
            if i == snapshot_at:
                earlier_signs = {
                    e: (controller.affinity_of(e) or 0) >= 0
                    for e in range(behavior.num_lines)
                }
            controller.observe(line)
        stats = controller.stats
        tail = (stats.transitions - transitions_at_tail) / max(
            1, len(references) - tail_start
        )
        final_signs = {
            e: (controller.affinity_of(e) or 0) >= 0
            for e in range(behavior.num_lines)
        }
        positive = sum(final_signs.values())
        changed = sum(
            1
            for e, sign in final_signs.items()
            if earlier_signs and sign != earlier_signs[e]
        )
        points.append(
            RWindowSweepPoint(
                window_size=window,
                working_set=behavior.num_lines,
                overall_frequency=stats.transition_frequency,
                tail_frequency=tail,
                balance=positive / behavior.num_lines,
                instability=changed / behavior.num_lines,
            )
        )
    return points


@dataclass(frozen=True)
class FilterSweepPoint:
    filter_bits: int
    tail_frequency: float


def filter_width_sweep(
    behavior_factory: "Callable[[], object]",
    filter_bits_list: "Sequence[int]",
    num_references: int = 400_000,
    window_size: int = 100,
) -> "list[FilterSweepPoint]":
    """Sweep the transition-filter width for one behaviour.

    On an unsplittable (random) behaviour the tail frequency should
    roughly halve per added bit (section 3.4).
    """
    points = []
    for bits in filter_bits_list:
        behavior = behavior_factory()
        config = ControllerConfig(
            num_subsets=2, x_window_size=window_size, filter_bits=bits
        )
        _overall, tail, _count = _run_controller(
            config, behavior.addresses(num_references)
        )
        points.append(FilterSweepPoint(filter_bits=bits, tail_frequency=tail))
    return points


@dataclass(frozen=True)
class SamplingSweepPoint:
    sampled_residues: int  #: of the 31 hash residues
    sample_fraction: float
    overall_frequency: float
    filter_updates: int


def sampling_sweep(
    behavior_factory: "Callable[[], object]",
    residue_counts: "Sequence[int]",
    num_references: int = 400_000,
    config_base: "ControllerConfig | None" = None,
) -> "list[SamplingSweepPoint]":
    """Sweep the working-set sampling ratio (31 = unsampled)."""
    points = []
    for count in residue_counts:
        if not 1 <= count <= 31:
            raise ValueError(f"residue count {count} outside [1, 31]")
        sampling = (
            SamplingPolicy.full()
            if count == 31
            else SamplingPolicy(modulus=31, sampled_residues=frozenset(range(count)))
        )
        base = config_base or ControllerConfig(num_subsets=2, filter_bits=18)
        config = ControllerConfig(
            num_subsets=base.num_subsets,
            affinity_bits=base.affinity_bits,
            filter_bits=base.filter_bits,
            x_window_size=base.x_window_size,
            y_window_size=base.y_window_size,
            sampling=sampling,
            affinity_cache_entries=base.affinity_cache_entries,
            affinity_cache_ways=base.affinity_cache_ways,
            l2_filtering=base.l2_filtering,
            lru_window=base.lru_window,
        )
        controller = MigrationController(config)
        behavior = behavior_factory()
        for line in behavior.addresses(num_references):
            controller.observe(line)
        stats = controller.stats
        points.append(
            SamplingSweepPoint(
                sampled_residues=count,
                sample_fraction=sampling.sample_fraction,
                overall_frequency=stats.transition_frequency,
                filter_updates=stats.filter_updates,
            )
        )
    return points
