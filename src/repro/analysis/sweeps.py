"""Parameter sweeps for the paper's design discussions.

Three tunables interact with the migration penalty (sections 3.3-3.5
and the conclusion):

* **R-window size** — Circular(N) splits iff ``N > 2|R|``; after
  convergence the transition frequency stays under ``1/(2|R|)``;
  HalfRandom(m) needs ``|R|`` not much larger than ``m``.
* **Transition-filter width** — each extra bit halves the transition
  frequency on unsplittable sets but doubles the reaction delay on
  splittable ones.
* **Sampling ratio** — fewer sampled lines mean a smaller affinity
  cache and fewer filter updates (so the filter can lose bits), at the
  cost of slower adaptation.

Each sweep returns small result records the ablation benchmarks print.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Sequence

from repro.core.controller import ControllerConfig, MigrationController
from repro.core.sampling import SamplingPolicy
from repro.runtime import Job, payloads
from repro.traces.synthetic import behavior_from_spec


def _run_controller(
    config: ControllerConfig,
    references: "Iterable[int]",
    tail_fraction: float = 0.25,
) -> "tuple[float, float, int]":
    """Run a controller; return (overall freq, tail freq, transitions).

    The tail frequency is measured over the last ``tail_fraction`` of
    the stream, i.e. after convergence.
    """
    controller = MigrationController(config)
    references = list(references)
    tail_start = int(len(references) * (1.0 - tail_fraction))
    transitions_at_tail = 0
    for i, line in enumerate(references):
        if i == tail_start:
            transitions_at_tail = controller.stats.transitions
        controller.observe(line)
    stats = controller.stats
    tail_references = max(1, len(references) - tail_start)
    tail_frequency = (stats.transitions - transitions_at_tail) / tail_references
    return stats.transition_frequency, tail_frequency, stats.transitions


@dataclass(frozen=True)
class RWindowSweepPoint:
    window_size: int
    working_set: int
    overall_frequency: float
    tail_frequency: float
    balance: float  #: fraction of elements with positive affinity
    instability: float  #: fraction of elements whose sign changed
    #: between two snapshots one working-set lap apart

    @property
    def split_achieved(self) -> bool:
        """A real split needs three things at once:

        * **balance** — an unsplit set has one sign everywhere;
        * **converged transitions** — below the paper's 1/(2|R|) bound;
        * **stability** — at ``N = 2|R|`` the window covers half the
          set and the "split" is a wave rotating with the window: any
          snapshot looks balanced, transitions can even be zero, but
          per-element assignments churn every lap.  Comparing two
          snapshots a lap apart exposes it.
        """
        balanced = 0.2 <= self.balance <= 0.8
        converged = self.tail_frequency <= 1.5 / (2 * self.window_size)
        stable = self.instability < 0.1
        return balanced and converged and stable


def rwindow_point(
    behavior: object,
    window_size: int,
    num_references: int = 400_000,
    filter_bits: int = 16,
) -> RWindowSweepPoint:
    """Measure one (behaviour, |R|) point of the R-window sweep."""
    config = ControllerConfig(
        num_subsets=2, x_window_size=window_size, filter_bits=filter_bits
    )
    controller = MigrationController(config)
    references = list(behavior.addresses(num_references))
    tail_start = int(len(references) * 0.75)
    # Half a working-set lap apart: a genuinely split assignment is
    # unchanged at any offset, while the rotating-wave state at
    # N <= 2|R| is caught mid-rotation (a full lap would alias).
    snapshot_at = max(0, len(references) - behavior.num_lines // 2 - 1)
    transitions_at_tail = 0
    earlier_signs: "dict[int, bool]" = {}
    for i, line in enumerate(references):
        if i == tail_start:
            transitions_at_tail = controller.stats.transitions
        if i == snapshot_at:
            earlier_signs = {
                e: (controller.affinity_of(e) or 0) >= 0
                for e in range(behavior.num_lines)
            }
        controller.observe(line)
    stats = controller.stats
    tail = (stats.transitions - transitions_at_tail) / max(
        1, len(references) - tail_start
    )
    final_signs = {
        e: (controller.affinity_of(e) or 0) >= 0
        for e in range(behavior.num_lines)
    }
    positive = sum(final_signs.values())
    changed = sum(
        1
        for e, sign in final_signs.items()
        if earlier_signs and sign != earlier_signs[e]
    )
    return RWindowSweepPoint(
        window_size=window_size,
        working_set=behavior.num_lines,
        overall_frequency=stats.transition_frequency,
        tail_frequency=tail,
        balance=positive / behavior.num_lines,
        instability=changed / behavior.num_lines,
    )


def rwindow_sweep(
    behavior_factory: "Callable[[], object]",
    window_sizes: "Sequence[int]",
    num_references: int = 400_000,
    filter_bits: int = 16,
) -> "list[RWindowSweepPoint]":
    """Sweep |R| for a 2-way controller over one behaviour."""
    return [
        rwindow_point(
            behavior_factory(),
            window,
            num_references=num_references,
            filter_bits=filter_bits,
        )
        for window in window_sizes
    ]


@dataclass(frozen=True)
class FilterSweepPoint:
    filter_bits: int
    tail_frequency: float


def filter_width_sweep(
    behavior_factory: "Callable[[], object]",
    filter_bits_list: "Sequence[int]",
    num_references: int = 400_000,
    window_size: int = 100,
) -> "list[FilterSweepPoint]":
    """Sweep the transition-filter width for one behaviour.

    On an unsplittable (random) behaviour the tail frequency should
    roughly halve per added bit (section 3.4).
    """
    points = []
    for bits in filter_bits_list:
        behavior = behavior_factory()
        config = ControllerConfig(
            num_subsets=2, x_window_size=window_size, filter_bits=bits
        )
        _overall, tail, _count = _run_controller(
            config, behavior.addresses(num_references)
        )
        points.append(FilterSweepPoint(filter_bits=bits, tail_frequency=tail))
    return points


@dataclass(frozen=True)
class SamplingSweepPoint:
    sampled_residues: int  #: of the 31 hash residues
    sample_fraction: float
    overall_frequency: float
    filter_updates: int


def sampling_point(
    behavior: object,
    sampled_residues: int,
    num_references: int = 400_000,
    config_base: "ControllerConfig | None" = None,
) -> SamplingSweepPoint:
    """Measure one sampling-ratio point (31 residues = unsampled)."""
    if not 1 <= sampled_residues <= 31:
        raise ValueError(f"residue count {sampled_residues} outside [1, 31]")
    sampling = (
        SamplingPolicy.full()
        if sampled_residues == 31
        else SamplingPolicy(
            modulus=31, sampled_residues=frozenset(range(sampled_residues))
        )
    )
    base = config_base or ControllerConfig(num_subsets=2, filter_bits=18)
    config = ControllerConfig(
        num_subsets=base.num_subsets,
        affinity_bits=base.affinity_bits,
        filter_bits=base.filter_bits,
        x_window_size=base.x_window_size,
        y_window_size=base.y_window_size,
        sampling=sampling,
        affinity_cache_entries=base.affinity_cache_entries,
        affinity_cache_ways=base.affinity_cache_ways,
        l2_filtering=base.l2_filtering,
        lru_window=base.lru_window,
    )
    controller = MigrationController(config)
    for line in behavior.addresses(num_references):
        controller.observe(line)
    stats = controller.stats
    return SamplingSweepPoint(
        sampled_residues=sampled_residues,
        sample_fraction=sampling.sample_fraction,
        overall_frequency=stats.transition_frequency,
        filter_updates=stats.filter_updates,
    )


def sampling_sweep(
    behavior_factory: "Callable[[], object]",
    residue_counts: "Sequence[int]",
    num_references: int = 400_000,
    config_base: "ControllerConfig | None" = None,
) -> "list[SamplingSweepPoint]":
    """Sweep the working-set sampling ratio (31 = unsampled)."""
    return [
        sampling_point(
            behavior_factory(),
            count,
            num_references=num_references,
            config_base=config_base,
        )
        for count in residue_counts
    ]


# ---------------------------------------------------------------------------
# Runtime jobs: each sweep point as a pure, cacheable unit of work.
#
# Behaviours are passed as declarative specs (see
# :func:`repro.traces.synthetic.behavior_from_spec`) so jobs are
# JSON-able — that is what gives them stable content hashes for the
# result cache and lets workers rebuild them in any process.
# ---------------------------------------------------------------------------


def rwindow_point_job(
    behavior: "dict[str, object]",
    window_size: int,
    num_references: int = 400_000,
    filter_bits: int = 16,
) -> "dict[str, object]":
    point = rwindow_point(
        behavior_from_spec(behavior),
        window_size,
        num_references=num_references,
        filter_bits=filter_bits,
    )
    payload = asdict(point)
    payload["references"] = num_references
    return payload


def filter_point_job(
    behavior: "dict[str, object]",
    filter_bits: int,
    num_references: int = 400_000,
    window_size: int = 100,
) -> "dict[str, object]":
    config = ControllerConfig(
        num_subsets=2, x_window_size=window_size, filter_bits=filter_bits
    )
    _overall, tail, _count = _run_controller(
        config, behavior_from_spec(behavior).addresses(num_references)
    )
    return {
        "filter_bits": filter_bits,
        "tail_frequency": tail,
        "references": num_references,
    }


def sampling_point_job(
    behavior: "dict[str, object]",
    sampled_residues: int,
    num_references: int = 400_000,
) -> "dict[str, object]":
    point = sampling_point(
        behavior_from_spec(behavior),
        sampled_residues,
        num_references=num_references,
    )
    payload = asdict(point)
    payload["references"] = num_references
    return payload


def rwindow_sweep_with_runtime(
    runtime,
    behavior_spec: "dict[str, object]",
    window_sizes: "Sequence[int]",
    num_references: int = 400_000,
    filter_bits: int = 16,
) -> "list[RWindowSweepPoint]":
    """R-window sweep with one cached runtime job per point."""
    jobs = [
        Job.create(
            "repro.analysis.sweeps:rwindow_point_job",
            label=f"rwindow/{behavior_spec.get('type')}/R{window}",
            behavior=dict(behavior_spec),
            window_size=window,
            num_references=num_references,
            filter_bits=filter_bits,
        )
        for window in window_sizes
    ]
    return [
        RWindowSweepPoint(
            window_size=p["window_size"],
            working_set=p["working_set"],
            overall_frequency=p["overall_frequency"],
            tail_frequency=p["tail_frequency"],
            balance=p["balance"],
            instability=p["instability"],
        )
        for p in payloads(runtime.map(jobs))
    ]


def filter_width_sweep_with_runtime(
    runtime,
    behavior_spec: "dict[str, object]",
    filter_bits_list: "Sequence[int]",
    num_references: int = 400_000,
    window_size: int = 100,
) -> "list[FilterSweepPoint]":
    """Filter-width sweep with one cached runtime job per point."""
    jobs = [
        Job.create(
            "repro.analysis.sweeps:filter_point_job",
            label=f"filter/{behavior_spec.get('type')}/F{bits}",
            behavior=dict(behavior_spec),
            filter_bits=bits,
            num_references=num_references,
            window_size=window_size,
        )
        for bits in filter_bits_list
    ]
    return [
        FilterSweepPoint(
            filter_bits=p["filter_bits"], tail_frequency=p["tail_frequency"]
        )
        for p in payloads(runtime.map(jobs))
    ]


def sampling_sweep_with_runtime(
    runtime,
    behavior_spec: "dict[str, object]",
    residue_counts: "Sequence[int]",
    num_references: int = 400_000,
) -> "list[SamplingSweepPoint]":
    """Sampling-ratio sweep with one cached runtime job per point."""
    jobs = [
        Job.create(
            "repro.analysis.sweeps:sampling_point_job",
            label=f"sampling/{behavior_spec.get('type')}/{count}residues",
            behavior=dict(behavior_spec),
            sampled_residues=count,
            num_references=num_references,
        )
        for count in residue_counts
    ]
    return [
        SamplingSweepPoint(
            sampled_residues=p["sampled_residues"],
            sample_fraction=p["sample_fraction"],
            overall_frequency=p["overall_frequency"],
            filter_updates=p["filter_updates"],
        )
        for p in payloads(runtime.map(jobs))
    ]
