"""The LRU-stack-profile experiment of paper section 4.1.

Two simulations share one pass over the L1-miss stream:

* ``p1``: every reference goes to a single LRU stack — the miss-ratio
  curve of one fully-associative cache ("normal" in Figures 4-5);
* ``p4``: each reference goes to one of four LRU stacks, chosen by the
  4-way migration controller *before* the controller state is updated
  ("split" in Figures 4-5), and the four depth histograms are merged
  into one global profile.

If ``p4(x)`` falls below ``p1(x)``, four caches of size ``x`` under the
affinity algorithm hold more of the working set than one cache of size
``x`` — the working set is "splittable".  The controller's transition
frequency bounds how often such a 4-cache system would migrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.caches.lru_stack import LruStack, StackProfile
from repro.core.controller import ControllerConfig, ControllerStats, MigrationController

#: Figure 4/5 x-axis, in lines (64-byte lines): 16 KB ... 16 MB
PAPER_CACHE_SIZES_LINES = (256, 1024, 4096, 16384, 65536, 262144)
PAPER_CACHE_SIZE_LABELS = ("16k", "64k", "256k", "1M", "4M", "16M")


@dataclass
class StackExperimentResult:
    """Profiles + controller statistics for one workload."""

    name: str
    p1: StackProfile
    p4: StackProfile
    per_stack: "list[StackProfile]"
    controller_stats: ControllerStats
    references: int

    @property
    def transition_frequency(self) -> float:
        return self.controller_stats.transition_frequency

    def curves(
        self, sizes_lines: "Sequence[int]" = PAPER_CACHE_SIZES_LINES
    ) -> "tuple[list[float], list[float]]":
        """``(p1(x), p4(x))`` sampled at the paper's cache sizes."""
        return (
            self.p1.miss_ratio_curve(sizes_lines),
            self.p4.miss_ratio_curve(sizes_lines),
        )


def run_stack_experiment(
    references: "Iterable[int]",
    name: str = "workload",
    config: "ControllerConfig | None" = None,
) -> StackExperimentResult:
    """Run the section 4.1 experiment over a stream of line addresses.

    ``config`` defaults to the paper's: 4-way controller, 20-bit
    filters, |R_X| = 128, |R_Y| = 64, unlimited affinity cache, no
    sampling, no L2 filtering.
    """
    config = config or ControllerConfig.stack_experiment()
    controller = MigrationController(config)
    single = LruStack()
    split = [LruStack() for _ in range(config.num_subsets)]
    p1 = StackProfile()
    per_stack = [StackProfile() for _ in range(config.num_subsets)]
    count = 0
    for line in references:
        count += 1
        p1.record(single.access(line))
        subset = controller.observe(line)
        per_stack[subset].record(split[subset].access(line))
    return StackExperimentResult(
        name=name,
        p1=p1,
        p4=StackProfile.merge_all(per_stack),
        per_stack=per_stack,
        controller_stats=controller.stats,
        references=count,
    )
