"""Pointer-load filtering (paper section 6, future work).

"It may be useful to distinguish low-penalty and high-penalty L2
misses.  For instance, pointer loads found in applications using linked
data structures generally have a high miss penalty.  One could decide
to restrict the class of applications triggering migrations by having
the transition filter updated only on requests coming from pointer
loads."

The mini-Olden traced heap tags every access whose value is a heap
reference, so this policy needs no new controller machinery: the
existing L2-filtering gate (``observe(line, l2_miss=...)``) doubles as
a general filter-update predicate.  :func:`run_pointer_filtering`
compares the ordinary controller with a pointer-gated one on an Olden
trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import ControllerConfig, MigrationController
from repro.olden.heap import RecordedTrace
from repro.traces.filters import L1Filter


@dataclass(frozen=True)
class PointerFilteringResult:
    """Transition behaviour with and without pointer-load gating."""

    name: str
    references: int
    pointer_references: int
    transitions_unfiltered: int
    transitions_pointer_only: int

    @property
    def pointer_fraction(self) -> float:
        if self.references == 0:
            return 0.0
        return self.pointer_references / self.references

    @property
    def suppression(self) -> float:
        """Fraction of transitions removed by pointer gating."""
        if self.transitions_unfiltered == 0:
            return 0.0
        return 1.0 - self.transitions_pointer_only / self.transitions_unfiltered


def run_pointer_filtering(
    trace: RecordedTrace,
    config: "ControllerConfig | None" = None,
) -> PointerFilteringResult:
    """Run two controllers over an Olden trace's L1-miss stream: one
    updating its transition filter on every miss, one only on pointer
    accesses.  Affinity state advances identically in both (exactly the
    L2-filtering structure of section 3.4)."""
    base = config or ControllerConfig(num_subsets=2, filter_bits=16)
    unfiltered = MigrationController(base)
    pointer_gated = MigrationController(
        ControllerConfig(
            num_subsets=base.num_subsets,
            affinity_bits=base.affinity_bits,
            filter_bits=base.filter_bits,
            x_window_size=base.x_window_size,
            y_window_size=base.y_window_size,
            sampling=base.sampling,
            affinity_cache_entries=base.affinity_cache_entries,
            affinity_cache_ways=base.affinity_cache_ways,
            l2_filtering=True,  # the gate reused for pointer filtering
            lru_window=base.lru_window,
        )
    )
    l1 = L1Filter()
    references = 0
    pointer_references = 0

    for access, is_pointer in trace.accesses_with_pointer_flags():
        miss = l1.filter_one(access)
        if miss is None:
            continue
        references += 1
        if is_pointer:
            pointer_references += 1
        unfiltered.observe(miss.line)
        pointer_gated.observe(miss.line, l2_miss=is_pointer)

    return PointerFilteringResult(
        name=trace.name,
        references=references,
        pointer_references=pointer_references,
        transitions_unfiltered=unfiltered.stats.transitions,
        transitions_pointer_only=pointer_gated.stats.transitions,
    )
