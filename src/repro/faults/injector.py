"""The injector: arm a plan, count site arrivals, fire scripted faults.

Production code calls three module-level hooks — :func:`fire` at
control seams, :func:`mutate` where bytes flow, :func:`corrupt_file`
where an artifact is about to be published.  All three are inert when
no plan is armed: one ``is None`` check and out, so the hooks can live
on cold control paths permanently (they are *not* placed in simulator
hot loops).

Arming happens two ways:

* :func:`install` — set the plan in this process **and** export it to
  ``REPRO_FAULTS``, so worker processes spawned afterwards (fork or
  spawn) inherit it;
* the environment — the first hook invocation in any process lazily
  reads ``REPRO_FAULTS``, which is how a spawn-isolated service worker
  picks up the plan its parent armed.

Determinism: each site has one arrival counter, each spec fires on a
scripted arrival window, and each spec owns a ``random.Random`` seeded
by ``(plan seed, site, action, nth)`` — two processes arming the same
plan corrupt the same bytes the same way.
"""

from __future__ import annotations

import errno as errno_module
import os
import random
import threading
import time
from pathlib import Path

from repro.faults.plan import (
    BITFLIP,
    CRASH,
    DROP,
    FAULTS_ENV,
    HANG,
    OSERROR,
    RAISE,
    TRUNCATE,
    FaultPlan,
    FaultSpec,
    InjectedDrop,
    InjectedFault,
)

#: exit code of a crash action (mirrors SIGKILL's 128+9 convention)
CRASH_EXIT_CODE = 137


class FaultInjector:
    """Site arrival counting + scripted execution of one plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._arrivals: "dict[str, int]" = {}
        self._lock = threading.Lock()
        self._rngs: "dict[FaultSpec, random.Random]" = {
            spec: random.Random(
                f"{plan.seed}/{spec.site}/{spec.action}/{spec.nth}"
            )
            for spec in plan.specs
        }

    def arrivals(self, site: str) -> int:
        with self._lock:
            return self._arrivals.get(site, 0)

    def _arrive(self, site: str) -> "tuple[int, tuple[FaultSpec, ...]]":
        with self._lock:
            arrival = self._arrivals.get(site, 0) + 1
            self._arrivals[site] = arrival
        armed = tuple(
            spec for spec in self.plan.for_site(site) if spec.covers(arrival)
        )
        return arrival, armed

    # -- control faults --------------------------------------------------

    def fire(self, site: str) -> None:
        """Count one arrival; execute any armed control action."""
        _, armed = self._arrive(site)
        for spec in armed:
            self._execute(site, spec)

    def armed(self, site: str) -> bool:
        """Count one arrival; report whether a spec covers it — without
        executing anything.  For faults the *caller* applies to someone
        else (the scheduler SIGKILLing a worker it just launched, an
        external-killer stand-in the victim cannot script itself)."""
        _, armed = self._arrive(site)
        return bool(armed)

    def _execute(self, site: str, spec: FaultSpec) -> None:
        if spec.action == CRASH:
            # A hard death: no exception, no cleanup, no atexit — the
            # same observable as SIGKILL/OOM from the parent's side.
            os._exit(CRASH_EXIT_CODE)
        if spec.action == HANG:
            time.sleep(spec.arg if spec.arg is not None else 3600.0)
            return
        if spec.action == RAISE:
            raise InjectedFault(f"injected fault at {site}")
        if spec.action == OSERROR:
            code = int(spec.arg) if spec.arg is not None else errno_module.ENOSPC
            raise OSError(code, os.strerror(code), site)
        if spec.action == DROP:
            raise InjectedDrop(f"injected connection drop at {site}")
        raise AssertionError(f"data action {spec.action!r} reached fire()")

    # -- data faults -----------------------------------------------------

    def mutate(self, site: str, data: bytes) -> bytes:
        """Count one arrival; return ``data``, corrupted if armed."""
        _, armed = self._arrive(site)
        for spec in armed:
            data = self._corrupt(spec, data)
        return data

    def corrupt_file(self, site: str, path: "str | os.PathLike[str]") -> None:
        """Count one arrival; corrupt the file at ``path`` in place if
        armed (used just before an artifact is atomically published, so
        the *published* artifact is torn)."""
        _, armed = self._arrive(site)
        if not armed:
            return
        target = Path(path)
        data = target.read_bytes()
        for spec in armed:
            data = self._corrupt(spec, data)
        target.write_bytes(data)

    def _corrupt(self, spec: FaultSpec, data: bytes) -> bytes:
        rng = self._rngs[spec]
        if spec.action == TRUNCATE:
            if not data:
                return data
            keep = (
                int(spec.arg)
                if spec.arg is not None
                else rng.randrange(len(data))
            )
            return data[: max(0, min(keep, len(data) - 1))]
        if spec.action == BITFLIP:
            if not data:
                return data
            flips = int(spec.arg) if spec.arg is not None else 1
            mutable = bytearray(data)
            for _ in range(max(1, flips)):
                position = rng.randrange(len(mutable) * 8)
                mutable[position // 8] ^= 1 << (position % 8)
            return bytes(mutable)
        raise AssertionError(
            f"control action {spec.action!r} reached a data hook"
        )


# -- process-global injector --------------------------------------------

_UNRESOLVED = object()  # "not yet looked at the environment"
_injector: "FaultInjector | None | object" = _UNRESOLVED
_install_lock = threading.Lock()


def _resolve() -> "FaultInjector | None":
    """The active injector, resolving ``REPRO_FAULTS`` on first use."""
    global _injector
    if _injector is _UNRESOLVED:
        with _install_lock:
            if _injector is _UNRESOLVED:
                body = os.environ.get(FAULTS_ENV)
                if body:
                    try:
                        _injector = FaultInjector(FaultPlan.from_json(body))
                    except (ValueError, KeyError, TypeError) as exc:
                        # A malformed plan must never take the stack
                        # down with it — faults are opt-in tooling.
                        import sys

                        print(
                            f"[faults] ignoring invalid {FAULTS_ENV}: {exc}",
                            file=sys.stderr,
                        )
                        _injector = None
                else:
                    _injector = None
    return _injector  # type: ignore[return-value]


def install(plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` in this process and export it to the environment
    (future child processes, fork or spawn, inherit it)."""
    global _injector
    with _install_lock:
        injector = FaultInjector(plan)
        _injector = injector
        os.environ[FAULTS_ENV] = plan.to_json()
    return injector


def uninstall() -> None:
    """Disarm: no injector, no environment variable."""
    global _injector
    with _install_lock:
        _injector = None
        os.environ.pop(FAULTS_ENV, None)


def active_injector() -> "FaultInjector | None":
    return _resolve()


def fire(site: str) -> None:
    """Control hook: crash/hang/raise/oserror/drop at ``site`` if armed."""
    injector = _resolve()
    if injector is not None:
        injector.fire(site)


def armed(site: str) -> bool:
    """Query hook: is a fault armed for this arrival at ``site``?"""
    injector = _resolve()
    return injector is not None and injector.armed(site)


def mutate(site: str, data: bytes) -> bytes:
    """Data hook: return ``data``, corrupted at ``site`` if armed."""
    injector = _resolve()
    if injector is None:
        return data
    return injector.mutate(site, data)


def corrupt_file(site: str, path: "str | os.PathLike[str]") -> None:
    """File hook: corrupt ``path`` in place at ``site`` if armed."""
    injector = _resolve()
    if injector is not None:
        injector.corrupt_file(site, path)
