"""The fault model: scripted, deterministic faults keyed by site.

A :class:`FaultSpec` arms one fault at one **injection site** — a
string naming a seam in the stack (``"runtime.worker.start"``,
``"cache.put"``, ``"service.request"``; the full taxonomy is in
``docs/robustness.md``).  Each site keeps an arrival counter, and a
spec fires on arrivals ``nth .. nth+count-1`` — "kill the worker on
its third job" is ``FaultSpec(site="runtime.worker.start",
action="crash", nth=3)``.  Everything is counted, nothing is sampled:
the same plan over the same job stream injects the same faults, which
is what lets the chaos suite assert bit-identical recovery.

A :class:`FaultPlan` is a list of specs plus a seed.  The seed drives
only the *shape* of data corruption (which bit flips, where a record
is truncated) through a per-spec :class:`random.Random` — trigger
timing is never random.

Plans serialise to compact JSON and travel in the ``REPRO_FAULTS``
environment variable, so spawn-isolated worker processes (the service
default) inherit the active plan without any extra plumbing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: environment variable carrying the active plan (JSON)
FAULTS_ENV = "REPRO_FAULTS"

#: control actions: seize the control flow at the site
CRASH, HANG, RAISE, OSERROR = "crash", "hang", "raise", "oserror"
#: data actions: corrupt the bytes flowing through the site
TRUNCATE, BITFLIP = "truncate", "bitflip"
#: connection action: sever the peer mid-exchange
DROP = "drop"

CONTROL_ACTIONS = (CRASH, HANG, RAISE, OSERROR, DROP)
DATA_ACTIONS = (TRUNCATE, BITFLIP)
ACTIONS = CONTROL_ACTIONS + DATA_ACTIONS


class InjectedFault(Exception):
    """The exception a ``raise`` action throws at its site."""


class InjectedDrop(ConnectionResetError):
    """A ``drop`` action severing a connection (typed for tests)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: do ``action`` at ``site``, arrivals
    ``nth .. nth + count - 1``.

    ``arg`` parameterises the action: seconds to sleep for ``hang``,
    an errno for ``oserror`` (default ENOSPC), the number of bytes to
    keep for ``truncate`` (default: half, seed-chosen), the number of
    bits to flip for ``bitflip`` (default 1).
    """

    site: str
    action: str
    nth: int = 1
    count: int = 1
    arg: "float | None" = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault site must be a non-empty string")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: {ACTIONS}"
            )
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def covers(self, arrival: int) -> bool:
        """Does this spec fire on the ``arrival``-th visit to its site?"""
        return self.nth <= arrival < self.nth + self.count

    def to_dict(self) -> "dict[str, object]":
        record: "dict[str, object]" = {
            "site": self.site,
            "action": self.action,
            "nth": self.nth,
            "count": self.count,
        }
        if self.arg is not None:
            record["arg"] = self.arg
        return record

    @classmethod
    def from_dict(cls, record: "dict[str, object]") -> "FaultSpec":
        return cls(
            site=str(record["site"]),
            action=str(record["action"]),
            nth=int(record.get("nth", 1)),
            count=int(record.get("count", 1)),
            arg=(
                float(record["arg"])  # type: ignore[arg-type]
                if record.get("arg") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A scripted set of faults plus the corruption seed."""

    specs: "tuple[FaultSpec, ...]" = ()
    seed: int = 0

    @classmethod
    def of(cls, *specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        return cls(specs=tuple(specs), seed=seed)

    def for_site(self, site: str) -> "tuple[FaultSpec, ...]":
        return tuple(spec for spec in self.specs if spec.site == site)

    # -- serialisation ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "specs": [spec.to_dict() for spec in self.specs],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, body: str) -> "FaultPlan":
        try:
            document = json.loads(body)
        except ValueError as exc:
            raise ValueError(f"invalid fault plan JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise ValueError("fault plan must be a JSON object")
        specs = document.get("specs", [])
        if not isinstance(specs, list):
            raise ValueError("fault plan 'specs' must be a list")
        return cls(
            specs=tuple(FaultSpec.from_dict(spec) for spec in specs),
            seed=int(document.get("seed", 0)),
        )
