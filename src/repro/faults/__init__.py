"""repro.faults — deterministic fault injection for the whole stack.

The reproduction runs as a long-lived, multi-tenant system (worker
pool, shared on-disk cache, HTTP service); this package exists to
*prove* that stack survives the failures production actually sees.  A
:class:`~repro.faults.plan.FaultPlan` scripts faults — worker crashes
and hangs, torn and bit-flipped cache artifacts, full disks, dropped
connections — keyed by injection **site** and arrival count, so every
run of the same plan injects exactly the same faults.  Plans travel in
the ``REPRO_FAULTS`` environment variable, reaching spawn-isolated
worker processes untouched.

Injection sites live on cold control paths of :mod:`repro.runtime`,
:mod:`repro.kernels` sidecar I/O, and :mod:`repro.service`; the
taxonomy, the recovery guarantees each site exercises, and the chaos
suite that enforces them are documented in ``docs/robustness.md``.

Nothing here runs unless a plan is armed: every hook is a single
``is None`` check when injection is off.
"""

from repro.faults.injector import (
    CRASH_EXIT_CODE,
    FaultInjector,
    active_injector,
    armed,
    corrupt_file,
    fire,
    install,
    mutate,
    uninstall,
)
from repro.faults.plan import (
    ACTIONS,
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    InjectedDrop,
    InjectedFault,
)

__all__ = [
    "ACTIONS",
    "CRASH_EXIT_CODE",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedDrop",
    "InjectedFault",
    "active_injector",
    "armed",
    "corrupt_file",
    "fire",
    "install",
    "mutate",
    "uninstall",
]
