"""Migration mechanics and the penalty model (paper sections 2.2, 2.4).

A migration from core X1 to X2:

1. the migration controller interrupts X1's I-fetch unit;
2. X1 marks the latest fetched instruction as the transition
   instruction ``T`` and returns the transition PC;
3. X2 starts fetching at the transition PC but its issue stage stays
   blocked until ``T`` retires on X1 (so the broadcast architectural
   state is complete);
4. once ``T`` retires, X2 is the active core.

The penalty is therefore roughly the cycles to broadcast ``T`` on the
update bus plus the issue-to-retire pipeline depth.  The paper never
fixes the *relative* penalty ``P_mig`` (migration cost in units of an
L2-miss/L3-hit); instead it reports migration frequencies and argues in
terms of break-even points ("as long as the migration penalty is less
than 60 times the L2-miss penalty, we will observe gains on mcf").
:class:`MigrationPenaltyModel` computes both directions: cycles per
migration from microarchitectural parameters, and the break-even
``P_mig`` from simulation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.multicore.update_bus import UpdateBusModel


@dataclass(frozen=True)
class MigrationPenaltyModel:
    """Analytic migration-penalty estimate."""

    pipeline_issue_to_retire: int = 12  #: stages between issue and retirement
    bus: UpdateBusModel = UpdateBusModel()
    l2_miss_penalty_cycles: int = 200  #: an L2-miss/L3-hit, for P_mig

    def migration_cycles(self) -> float:
        """Cycles from ``T`` retiring on X1 to its successor retiring on
        X2: one broadcast slot for ``T`` plus the pipeline refill."""
        return self.bus.broadcast_cycles(1) + self.pipeline_issue_to_retire

    def relative_penalty(self) -> float:
        """``P_mig``: migration penalty in units of an L2-miss/L3-hit."""
        return self.migration_cycles() / self.l2_miss_penalty_cycles


@dataclass
class MigrationEngine:
    """Tracks the active core and counts migrations.

    ``probe`` is the nil-by-default telemetry hook
    (:mod:`repro.obs.probe`): when attached, every actual migration is
    reported as ``migration.start`` / ``migration.commit`` events —
    the two-phase hand-off of section 2.2.  The hook sits behind the
    already-migrating branch, so the no-op path is untouched.
    """

    num_cores: int
    active_core: int = 0
    migrations: int = 0
    probe: "object | None" = None

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {self.num_cores}")
        if not 0 <= self.active_core < self.num_cores:
            raise ValueError(
                f"active_core {self.active_core} outside [0, {self.num_cores})"
            )

    def migrate_to(self, core: int) -> bool:
        """Switch the active core; returns ``True`` if a migration
        actually happened (no-op when already there)."""
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} outside [0, {self.num_cores})")
        if core == self.active_core:
            return False
        probe = self.probe
        if probe is not None:
            probe.on_migration(self.active_core, core)
        self.active_core = core
        self.migrations += 1
        return True


def break_even_pmig(
    instructions: int,
    l2_misses_baseline: int,
    l2_misses_migrating: int,
    migrations: int,
) -> float:
    """L2 misses removed per migration — the maximum ``P_mig`` at which
    migration still wins (the paper's mcf arithmetic:
    ``4500/24 - 4500/36 ≈ 60``).

    Positive = migration helps up to that relative penalty; negative =
    migration added misses and can never win.  ``inf`` when migration
    removed misses at zero migration cost.
    """
    if migrations == 0:
        return float("inf") if l2_misses_migrating < l2_misses_baseline else 0.0
    removed = l2_misses_baseline - l2_misses_migrating
    return removed / migrations
