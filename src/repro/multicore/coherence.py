"""Migration-mode L2 coherence (paper section 2.1).

In migration mode the usual invalidation protocol is replaced by an
update protocol tailored to a single logical thread:

* a line may be replicated in several L2 caches;
* at most one copy is marked **modified** at any time;
* a write on the active core sets its copy's modified bit and *resets*
  (without invalidating) the modified bit of inactive copies, whose
  content is refreshed over the update bus;
* on eviction, a line is written back to L3 only if modified;
* on an active-core L2 miss, a modified copy in another L2 may be
  forwarded (simultaneously written back to L3, modified bit reset);
  a clean copy in another L2 may **not** be forwarded — the line is
  re-fetched from L3.

The paper equates the L2-to-L2 forwarding penalty with an L2-miss /
L3-hit, so both count as "L2 misses" in the reported statistics; the
split is still recorded separately here for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.hierarchy import CoreCacheConfig


@dataclass
class CoherenceStats:
    """Counters across all L2s (active-core demand traffic only)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0  #: demand misses (= forwards + l3_fetches)
    forwards: int = 0  #: misses served by a modified copy in another L2
    l3_fetches: int = 0  #: misses served by the L3
    writebacks: int = 0  #: modified lines written back on eviction
    inactive_updates: int = 0  #: update-bus stores applied to inactive copies


class CoherentL2s:
    """``num_cores`` L2 caches under the migration-mode protocol.

    The caller tells it which core is active; it serves demand accesses
    on that core's L2 and maintains the protocol invariants on the
    others.  Dirty bits of the underlying caches play the role of the
    modified bits.
    """

    def __init__(self, num_cores: int, config: "CoreCacheConfig | None" = None) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self.config = config or CoreCacheConfig()
        self.caches = [self.config.make_l2() for _ in range(num_cores)]
        self.stats = CoherenceStats()
        #: nil-by-default telemetry hook (:mod:`repro.obs.probe`);
        #: reports per-eviction so the probe can detect eviction storms.
        self.probe = None

    def access(self, active_core: int, line: int, write: bool) -> bool:
        """Demand access from the active core; returns ``True`` on hit."""
        stats = self.stats
        stats.accesses += 1
        active = self.caches[active_core]
        if active.access(line, write=write):
            stats.hits += 1
            if write:
                self._demote_inactive_copies(active_core, line)
            return True
        stats.misses += 1
        # The miss allocated the line in the active L2 (dirty iff write).
        eviction = active.last_eviction
        if eviction is not None:
            if eviction.dirty:
                stats.writebacks += 1
            probe = self.probe
            if probe is not None:
                probe.on_l2_eviction(active_core, eviction.line, eviction.dirty)
        if self._forward_from_owner(active_core, line):
            stats.forwards += 1
        else:
            stats.l3_fetches += 1
        if write:
            self._demote_inactive_copies(active_core, line)
        return False

    def _forward_from_owner(self, active_core: int, line: int) -> bool:
        """Look for a modified copy elsewhere; forwarding writes it back
        to L3 and resets its modified bit (section 2.1)."""
        for core, cache in enumerate(self.caches):
            if core == active_core:
                continue
            if cache.is_dirty(line):
                cache.set_dirty(line, False)
                return True
        return False

    def _demote_inactive_copies(self, active_core: int, line: int) -> None:
        """A write on the active core: inactive copies stay valid but
        lose their modified bit (their content arrives on the update
        bus, so they are counted as updates)."""
        for core, cache in enumerate(self.caches):
            if core == active_core:
                continue
            if cache.update_if_present(line, dirty=False):
                cache.set_dirty(line, False)
                self.stats.inactive_updates += 1

    def holders_of(self, line: int) -> "list[int]":
        """Cores whose L2 currently holds the line (for tests)."""
        return [i for i, cache in enumerate(self.caches) if line in cache]

    def modified_holder_of(self, line: int) -> "int | None":
        """The core holding the modified copy, if any (for tests)."""
        for i, cache in enumerate(self.caches):
            if cache.is_dirty(line):
                return i
        return None

    def check_invariant(self, lines: "list[int]") -> None:
        """Assert the at-most-one-modified-copy invariant for ``lines``."""
        for line in lines:
            owners = [
                i for i, cache in enumerate(self.caches) if cache.is_dirty(line)
            ]
            if len(owners) > 1:
                raise AssertionError(
                    f"line {line:#x} modified in cores {owners}"
                )
