"""The multi-core machine model (paper section 2).

* :mod:`repro.multicore.coherence` -- the migration-mode L2 coherence
  protocol: modified-bit ownership, valid-but-clean inactive copies,
  update-bus store propagation, L2-to-L2 forwarding of modified lines.
* :mod:`repro.multicore.chip` -- the full chip: mirrored L1s, one L2
  per core, shared L3, a migration controller deciding the active core.
* :mod:`repro.multicore.update_bus` -- bandwidth accounting for the
  dedicated update bus (the paper's ~45 bytes/cycle estimate).
* :mod:`repro.multicore.migration` -- the migration engine: transition
  PC hand-off timing and the relative penalty model ``P_mig``.
"""

from repro.multicore.chip import ChipConfig, ChipStats, MultiCoreChip
from repro.multicore.coherence import CoherentL2s, CoherenceStats
from repro.multicore.migration import MigrationEngine, MigrationPenaltyModel
from repro.multicore.timing import (
    SpeedupPoint,
    TimingModel,
    break_even_pmig_timing,
    migration_speedup,
    speedup_curve,
)
from repro.multicore.update_bus import (
    RegisterUpdateReduction,
    UpdateBusModel,
    UpdateBusTraffic,
)

__all__ = [
    "ChipConfig",
    "ChipStats",
    "CoherenceStats",
    "CoherentL2s",
    "MigrationEngine",
    "MigrationPenaltyModel",
    "MultiCoreChip",
    "RegisterUpdateReduction",
    "SpeedupPoint",
    "TimingModel",
    "UpdateBusModel",
    "UpdateBusTraffic",
    "break_even_pmig_timing",
    "migration_speedup",
    "speedup_curve",
]
