"""Update-bus bandwidth model (paper section 2.3).

In migration mode every retired instruction is broadcast so inactive
cores can shadow the architectural state: register writes (identifier +
64-bit value), stores (address + value), branches (truncated address +
outcome), TLB updates.  The paper's example — a 4-wide core retiring at
most one store and one branch per cycle — needs about 45 bytes/cycle.

:class:`UpdateBusModel` reproduces that estimate from its parameters and
:class:`UpdateBusTraffic` accumulates the per-event byte counts of an
actual simulated run (used by the chip model to report bus occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UpdateBusModel:
    """Static per-cycle bandwidth estimate (defaults = the paper's example)."""

    retire_width: int = 4  #: instructions retired per cycle
    stores_per_cycle: int = 1
    branches_per_cycle: int = 1
    register_id_bits: int = 6
    value_bits: int = 64
    store_address_bits: int = 64
    branch_address_bits: int = 16  #: low-order bits suffice for predictor training
    type_bits_per_instruction: int = 2

    def bytes_per_cycle(self) -> float:
        """Peak bytes/cycle the bus must carry (the paper's ~45 B/cycle)."""
        bits = (
            self.retire_width * (self.register_id_bits + self.value_bits)
            + self.stores_per_cycle * self.store_address_bits
            + self.branches_per_cycle * self.branch_address_bits
            + self.retire_width * self.type_bits_per_instruction
        )
        return bits / 8.0

    def broadcast_cycles(self, instructions: int) -> float:
        """Cycles to broadcast ``instructions`` retired instructions."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        return instructions / self.retire_width


@dataclass(frozen=True)
class RegisterUpdateReduction:
    """Bandwidth-reduction strategies for register updates (paper §6).

    Register updates dominate the update-bus bandwidth.  The paper's
    conclusion sketches two remedies, modelled here analytically:

    * **threshold broadcasting** — broadcast register updates only while
      the transition filter's magnitude is below a threshold (a
      migration can only be near when the filter is near zero).  The
      bus then carries register traffic only for ``duty_cycle`` of the
      time; on a migration the at most ``architectural_registers``
      missing values must be broadcast first, lengthening the
      migration.
    * **register-update cache** — a small cache of the most recently
      written registers; an update is broadcast only when an entry is
      evicted.  A fraction ``rewrite_fraction`` of writes hit the cache
      (registers are rewritten frequently) and are never broadcast; on
      a migration the cache (at most ``cache_entries`` values) is
      spilled.
    """

    bus: UpdateBusModel = UpdateBusModel()
    architectural_registers: int = 64  #: int + fp register files
    register_bits: int = 64 + 6  #: value + identifier

    def threshold_bandwidth(self, duty_cycle: float) -> float:
        """Bytes/cycle with threshold broadcasting active a fraction
        ``duty_cycle`` of the time."""
        if not 0.0 <= duty_cycle <= 1.0:
            raise ValueError(f"duty_cycle must be in [0, 1], got {duty_cycle}")
        full = self.bus.bytes_per_cycle()
        register_bytes = self.bus.retire_width * self.register_bits / 8.0
        return full - (1.0 - duty_cycle) * register_bytes

    def threshold_migration_penalty_cycles(self) -> float:
        """Extra migration cycles to broadcast the missing registers."""
        total_bits = self.architectural_registers * self.register_bits
        return (total_bits / 8.0) / self.bus.bytes_per_cycle()

    def cache_bandwidth(self, rewrite_fraction: float) -> float:
        """Bytes/cycle with a register-update cache filtering a fraction
        ``rewrite_fraction`` of register writes."""
        if not 0.0 <= rewrite_fraction <= 1.0:
            raise ValueError(
                f"rewrite_fraction must be in [0, 1], got {rewrite_fraction}"
            )
        full = self.bus.bytes_per_cycle()
        register_bytes = self.bus.retire_width * self.register_bits / 8.0
        return full - rewrite_fraction * register_bytes

    def cache_migration_penalty_cycles(self, cache_entries: int) -> float:
        """Extra migration cycles to spill the register-update cache."""
        if cache_entries < 0:
            raise ValueError("cache_entries must be non-negative")
        total_bits = cache_entries * self.register_bits
        return (total_bits / 8.0) / self.bus.bytes_per_cycle()


@dataclass
class UpdateBusTraffic:
    """Byte counters for one simulated run."""

    register_bytes: int = 0
    store_bytes: int = 0
    branch_bytes: int = 0
    l1_fill_bytes: int = 0  #: L1 miss fills broadcast to inactive L1s

    def record_register_update(self, count: int = 1) -> None:
        self.register_bytes += count * (6 + 64) // 8 + 1

    def record_store(self, count: int = 1) -> None:
        self.store_bytes += count * (64 + 64) // 8

    def record_branch(self, count: int = 1) -> None:
        self.branch_bytes += count * (16 + 2) // 8 + 1

    def record_l1_fill(self, line_size: int = 64, count: int = 1) -> None:
        self.l1_fill_bytes += count * line_size

    @property
    def total_bytes(self) -> int:
        return (
            self.register_bytes
            + self.store_bytes
            + self.branch_bytes
            + self.l1_fill_bytes
        )
