"""The post-L1 chip pipeline as an explicit replayable state machine.

A :class:`MultiCoreChip` replaying an L1-filter record is, after the L1
stage is folded away, a deterministic state machine: per-core L2 arrays
(lines / dirty bits / LRU timestamps), coherence counters, the
migration controller (affinity store, R-window FIFOs, saturating
filters), the migration engine, and the chip/bus counters.  This module
captures that state as an exact, content-hashable
:class:`ChipSnapshot` — arrays and scalars only, no live objects — and
restores it bit-for-bit onto a compatible chip.

Snapshots are the seam both replay attacks build on (see
``repro.kernels.specialize`` and ``repro.kernels.segmented``): a
restored chip continues a replay exactly where the snapshot was taken,
so a trace can be cut at any record boundary and its segments simulated
independently.

Scope and exclusions (deliberate):

* **L1 caches are not captured.**  Filtered replay (``run_filtered``)
  never touches the IL1/DL1 — their contents were folded into the
  record by the L1-filter kernel — so the post-L1 state is the whole
  replay state.  Digests therefore compare against the deep-state view
  *without* the L1s.
* **Probes are not captured.**  A probe is telemetry, not simulator
  state; restoring onto a probe-attached chip leaves its probe wired
  and untouched.
* **Prefetchers are refused.**  They hold internal state this module
  does not model; snapshotting such a chip would silently drop it.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque

import numpy as np

from repro.caches.base import EvictedLine
from repro.caches.skewed import SkewedAssociativeCache
from repro.core.affinity_store import AffinityCache, UnboundedAffinityStore
from repro.core.controller import MigrationController
from repro.core.mechanism import RWindowEntry

SNAPSHOT_VERSION = 1

_META_KEY = "__meta__"


class SnapshotError(ValueError):
    """Chip shape not snapshotable, or snapshot/chip mismatch."""


class ChipSnapshot:
    """Exact state of a chip's post-L1 pipeline at one record boundary.

    ``meta`` holds JSON-able scalars (counters, config, version);
    ``arrays`` holds numpy arrays with fixed dtypes.  Together they are
    canonical: :meth:`digest` is stable across processes and platforms.
    """

    __slots__ = ("meta", "arrays")

    def __init__(self, meta: dict, arrays: "dict[str, np.ndarray]") -> None:
        self.meta = meta
        self.arrays = arrays

    def digest(self) -> str:
        """SHA-256 over the canonical serialization of the state."""
        h = hashlib.sha256()
        h.update(
            json.dumps(self.meta, sort_keys=True, separators=(",", ":")).encode()
        )
        for key in sorted(self.arrays):
            arr = self.arrays[key]
            h.update(key.encode())
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    def save(self, path) -> None:
        """Persist as ``.npz`` (atomic publish: tmp + rename)."""
        path = os.fspath(path)
        meta_blob = np.frombuffer(
            json.dumps(self.meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **{_META_KEY: meta_blob}, **self.arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @classmethod
    def load(cls, path) -> "ChipSnapshot":
        with np.load(os.fspath(path)) as data:
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
            if meta.get("version") != SNAPSHOT_VERSION:
                raise SnapshotError(
                    f"snapshot version {meta.get('version')!r} != "
                    f"{SNAPSHOT_VERSION} ({path})"
                )
            arrays = {k: data[k] for k in data.files if k != _META_KEY}
        return cls(meta, arrays)


def _check_snapshotable(chip) -> None:
    if getattr(chip, "prefetchers", None) is not None:
        raise SnapshotError(
            "chip has prefetchers: their internal state is not modelled "
            "by ChipSnapshot"
        )
    for cache in chip.l2s.caches:
        if type(cache) is not SkewedAssociativeCache:
            raise SnapshotError(
                f"unsupported L2 type {type(cache).__name__}: only "
                "SkewedAssociativeCache chips are snapshotable"
            )
    if chip.config.migration_enabled:
        if type(chip.controller) is not MigrationController:
            raise SnapshotError(
                f"unsupported controller type {type(chip.controller).__name__}"
            )
        store = chip.controller.store
        if type(store) not in (AffinityCache, UnboundedAffinityStore):
            raise SnapshotError(
                f"unsupported affinity store type {type(store).__name__}"
            )


def _encode_lines(lines) -> np.ndarray:
    """``None``-bearing line list -> int64 array (``-1`` = empty slot)."""
    out = np.fromiter(
        (-1 if v is None else v for v in lines), dtype=np.int64, count=len(lines)
    )
    return out


def _decode_lines(arr) -> list:
    return [None if v < 0 else v for v in arr.tolist()]


def _mechanism_names(controller) -> "list[str]":
    if controller.config.num_subsets == 4:
        return ["x", "yp", "ym"]
    return ["x"]


def _mechanism_list(controller):
    if controller.config.num_subsets == 4:
        return [
            controller.mechanism_x,
            controller.mechanism_y[+1],
            controller.mechanism_y[-1],
        ]
    return [controller.mechanism_x]


def _filter_list(controller):
    if controller.config.num_subsets == 4:
        return [
            controller.filter_x,
            controller.filter_y[+1],
            controller.filter_y[-1],
        ]
    return [controller.filter_x]


def snapshot_chip(chip) -> ChipSnapshot:
    """Capture the chip's full post-L1 replay state."""
    _check_snapshotable(chip)
    meta: dict = {
        "version": SNAPSHOT_VERSION,
        "config": chip.config.to_dict(),
        "stats": chip.stats.to_dict(),
        "engine": {
            "active_core": chip.engine.active_core,
            "migrations": chip.engine.migrations,
        },
        "bus": {
            "register_bytes": chip.bus_traffic.register_bytes,
            "store_bytes": chip.bus_traffic.store_bytes,
            "branch_bytes": chip.bus_traffic.branch_bytes,
            "l1_fill_bytes": chip.bus_traffic.l1_fill_bytes,
        },
        "coherence": {
            "accesses": chip.l2s.stats.accesses,
            "hits": chip.l2s.stats.hits,
            "misses": chip.l2s.stats.misses,
            "forwards": chip.l2s.stats.forwards,
            "l3_fetches": chip.l2s.stats.l3_fetches,
            "writebacks": chip.l2s.stats.writebacks,
            "inactive_updates": chip.l2s.stats.inactive_updates,
        },
    }
    arrays: "dict[str, np.ndarray]" = {}
    l2_meta = []
    for core, cache in enumerate(chip.l2s.caches):
        arrays[f"l2{core}.lines"] = _encode_lines(cache._lines)
        arrays[f"l2{core}.dirty"] = np.asarray(cache._dirty, dtype=np.uint8)
        arrays[f"l2{core}.time"] = np.asarray(cache._time, dtype=np.int64)
        ev = cache.last_eviction
        st = cache.stats
        l2_meta.append(
            {
                "clock": cache._clock,
                "stats": [st.accesses, st.hits, st.misses, st.evictions,
                          st.writebacks],
                "last_eviction": None if ev is None else [ev.line, bool(ev.dirty)],
            }
        )
    meta["l2"] = l2_meta

    if chip.config.migration_enabled:
        controller = chip.controller
        cstats = controller.stats
        ctrl: dict = {
            "stats": [
                cstats.references,
                cstats.sampled_references,
                cstats.filter_updates,
                cstats.transitions,
            ],
            "previous_subset": controller._previous_subset,
        }
        store = controller.store
        if type(store) is AffinityCache:
            ctrl["store"] = {
                "kind": "cache",
                "clock": store._clock,
                "counters": [store.reads, store.writes, store.misses,
                             store.evictions],
            }
            arrays["store.lines"] = _encode_lines(store._lines)
            arrays["store.values"] = np.asarray(store._values, dtype=np.int64)
            arrays["store.time"] = np.asarray(store._time, dtype=np.int64)
        else:
            keys = sorted(store._values)
            ctrl["store"] = {
                "kind": "unbounded",
                "counters": [store.reads, store.writes, store.misses],
            }
            arrays["store.keys"] = np.asarray(keys, dtype=np.int64)
            arrays["store.values"] = np.asarray(
                [store._values[k] for k in keys], dtype=np.int64
            )
        mech_meta = []
        for name, mech in zip(_mechanism_names(controller),
                              _mechanism_list(controller)):
            mech_meta.append(
                {
                    "window_affinity": mech.window_affinity.value,
                    "delta": mech.delta.value,
                    "references": mech.references,
                    "rollover_mark": mech._rollover_mark,
                }
            )
            arrays[f"mech.{name}.fifo_lines"] = np.asarray(
                [e.line for e in mech._fifo], dtype=np.int64
            )
            arrays[f"mech.{name}.fifo_ivalues"] = np.asarray(
                [e.i_value for e in mech._fifo], dtype=np.int64
            )
            arrays[f"mech.{name}.lru_lines"] = np.asarray(
                list(mech._lru.keys()), dtype=np.int64
            )
            arrays[f"mech.{name}.lru_ivalues"] = np.asarray(
                list(mech._lru.values()), dtype=np.int64
            )
        ctrl["mechanisms"] = mech_meta
        ctrl["filters"] = [
            {
                "value": f._counter.value,
                "updates": f.updates,
                "sign_changes": f.sign_changes,
                "last_sign": f._last_sign,
            }
            for f in _filter_list(controller)
        ]
        meta["controller"] = ctrl
    else:
        meta["controller"] = None
    return ChipSnapshot(meta, arrays)


def restore_chip(chip, snapshot: ChipSnapshot) -> None:
    """Write ``snapshot`` back into ``chip``, in place and exactly.

    The chip must have the same configuration the snapshot was taken
    from (validated against ``ChipConfig.to_dict``); its probe, if any,
    is left untouched.
    """
    _check_snapshotable(chip)
    meta, arrays = snapshot.meta, snapshot.arrays
    if meta["config"] != chip.config.to_dict():
        raise SnapshotError(
            "snapshot was taken from a chip with a different configuration"
        )
    stats = chip.stats
    for key, value in meta["stats"].items():
        setattr(stats, key, int(value))
    chip.engine.active_core = int(meta["engine"]["active_core"])
    chip.engine.migrations = int(meta["engine"]["migrations"])
    bus = chip.bus_traffic
    for key, value in meta["bus"].items():
        setattr(bus, key, int(value))
    coh = chip.l2s.stats
    for key, value in meta["coherence"].items():
        setattr(coh, key, int(value))
    for core, cache in enumerate(chip.l2s.caches):
        cache._lines[:] = _decode_lines(arrays[f"l2{core}.lines"])
        cache._dirty[:] = (arrays[f"l2{core}.dirty"] != 0).tolist()
        cache._time[:] = arrays[f"l2{core}.time"].tolist()
        entry = meta["l2"][core]
        cache._clock = int(entry["clock"])
        st = cache.stats
        (st.accesses, st.hits, st.misses, st.evictions,
         st.writebacks) = [int(v) for v in entry["stats"]]
        ev = entry["last_eviction"]
        cache.last_eviction = (
            None if ev is None else EvictedLine(int(ev[0]), bool(ev[1]))
        )
    ctrl_meta = meta["controller"]
    if ctrl_meta is None:
        return
    controller = chip.controller
    cstats = controller.stats
    (cstats.references, cstats.sampled_references, cstats.filter_updates,
     cstats.transitions) = [int(v) for v in ctrl_meta["stats"]]
    controller._previous_subset = int(ctrl_meta["previous_subset"])
    store = controller.store
    store_meta = ctrl_meta["store"]
    if store_meta["kind"] == "cache":
        if type(store) is not AffinityCache:
            raise SnapshotError("snapshot has an AffinityCache, chip does not")
        store._lines[:] = _decode_lines(arrays["store.lines"])
        store._values[:] = arrays["store.values"].tolist()
        store._time[:] = arrays["store.time"].tolist()
        store._clock = int(store_meta["clock"])
        (store.reads, store.writes, store.misses,
         store.evictions) = [int(v) for v in store_meta["counters"]]
    else:
        if type(store) is not UnboundedAffinityStore:
            raise SnapshotError("snapshot has an unbounded store, chip does not")
        store._values.clear()
        store._values.update(
            zip(arrays["store.keys"].tolist(), arrays["store.values"].tolist())
        )
        (store.reads, store.writes,
         store.misses) = [int(v) for v in store_meta["counters"]]
    for name, mech, mmeta in zip(
        _mechanism_names(controller),
        _mechanism_list(controller),
        ctrl_meta["mechanisms"],
    ):
        mech.window_affinity._value = int(mmeta["window_affinity"])
        mech.delta._value = int(mmeta["delta"])
        mech.references = int(mmeta["references"])
        mech._rollover_mark = int(mmeta["rollover_mark"])
        mech._fifo = deque(
            RWindowEntry(line, ivalue)
            for line, ivalue in zip(
                arrays[f"mech.{name}.fifo_lines"].tolist(),
                arrays[f"mech.{name}.fifo_ivalues"].tolist(),
            )
        )
        mech._lru.clear()
        mech._lru.update(
            zip(
                arrays[f"mech.{name}.lru_lines"].tolist(),
                arrays[f"mech.{name}.lru_ivalues"].tolist(),
            )
        )
    for f, fmeta in zip(_filter_list(controller), ctrl_meta["filters"]):
        f._counter._value = int(fmeta["value"])
        f.updates = int(fmeta["updates"])
        f.sign_changes = int(fmeta["sign_changes"])
        f._last_sign = int(fmeta["last_sign"])


def chip_digest(chip) -> str:
    """Content hash of the chip's current post-L1 state."""
    return snapshot_chip(chip).digest()


def config_digest(config) -> str:
    """Short content hash of a ChipConfig (keys snapshot directories)."""
    blob = json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


class ChipReplayState:
    """Snapshot/restore facade over one chip (``chip.replay_state()``)."""

    __slots__ = ("chip",)

    def __init__(self, chip) -> None:
        _check_snapshotable(chip)
        self.chip = chip

    def snapshot(self) -> ChipSnapshot:
        return snapshot_chip(self.chip)

    def restore(self, snapshot: ChipSnapshot) -> None:
        restore_chip(self.chip, snapshot)

    def digest(self) -> str:
        return chip_digest(self.chip)
