"""The full multi-core chip in migration mode (paper Figure 1).

One :class:`MultiCoreChip` is ``num_cores`` cores, each with private
L1s and a private L2, a shared L3 (modelled as perfect backing), the
migration-mode coherence of :mod:`repro.multicore.coherence`, and a
:class:`~repro.core.controller.MigrationController` deciding which core
should be active.

**L1 mirroring.**  Section 2.3: every line brought into the active L1
is broadcast to all inactive L1s, and stores are broadcast over the
update bus, so all L1s hold identical content and "the L1 miss
frequency is the same as if execution had not migrated".  The model
exploits this invariant directly: it keeps *one* L1 pair standing in
for all mirrored copies (the paper simulated "strict L1 mirroring" the
same way), and accounts the mirror traffic on the update bus.

**Event accounting** matches Table 2: ``l1_miss_requests`` are the
requests the migration controller monitors (fetch misses, load misses,
store misses); ``l2_misses`` are demand misses of the active core's L2
(write-through store traffic that misses allocates, per write-allocate,
and counts too — the policy is identical in the single-core baseline,
so the ratio is apples-to-apples).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields

from repro.caches.hierarchy import CoreCacheConfig
from repro.core.controller import ControllerConfig, MigrationController
from repro.multicore.coherence import CoherentL2s
from repro.multicore.migration import MigrationEngine
from repro.multicore.update_bus import UpdateBusModel, UpdateBusTraffic
from repro.traces.trace import Access, AccessKind


@dataclass(frozen=True)
class ChipConfig:
    """Chip geometry + controller parameters (defaults = section 4.2).

    ``controller = None`` defers the choice to a controller instance
    passed to :class:`MultiCoreChip` directly (used for > 4-way
    hierarchical controllers)."""

    num_cores: int = 4
    caches: CoreCacheConfig = field(default_factory=CoreCacheConfig)
    controller: "ControllerConfig | None" = field(
        default_factory=ControllerConfig.four_core
    )
    migration_enabled: bool = True

    def __post_init__(self) -> None:
        if (
            self.migration_enabled
            and self.controller is not None
            and self.num_cores != self.controller.num_subsets
        ):
            raise ValueError(
                f"{self.num_cores} cores need a {self.num_cores}-way "
                f"controller, got {self.controller.num_subsets}-way"
            )

    def to_dict(self) -> dict:
        """JSON-able form — the config side of a chip snapshot, and the
        parameter block segment jobs use to rebuild the chip."""
        controller = self.controller
        return {
            "num_cores": self.num_cores,
            "caches": self.caches.to_dict(),
            "controller": None if controller is None else controller.to_dict(),
            "migration_enabled": self.migration_enabled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChipConfig":
        controller = data["controller"]
        return cls(
            num_cores=int(data["num_cores"]),
            caches=CoreCacheConfig.from_dict(data["caches"]),
            controller=(
                None if controller is None
                else ControllerConfig.from_dict(controller)
            ),
            migration_enabled=bool(data["migration_enabled"]),
        )


@dataclass
class ChipStats:
    """Counters for one chip run (Table 2's columns derive from these)."""

    accesses: int = 0
    instructions: int = 0
    il1_misses: int = 0
    dl1_misses: int = 0
    l1_miss_requests: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    migrations: int = 0

    @property
    def l1_misses(self) -> int:
        return self.il1_misses + self.dl1_misses

    def instructions_per(self, events: int) -> float:
        """Instructions per event (Table 2's unit; ``inf`` if none)."""
        if events == 0:
            return float("inf")
        return self.instructions / events

    def to_dict(self) -> "dict[str, int]":
        """Raw counters as a JSON-able dict — the one sanctioned way for
        experiments and exporters to serialise chip statistics."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "ChipStats":
        """Rebuild from :meth:`to_dict` output; unknown keys ignored so
        payloads can carry extra derived fields."""
        fields_ = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in fields_})

    def merge(self, other: "ChipStats") -> "ChipStats":
        """Element-wise sum (aggregating runs, e.g. in obs summaries)."""
        return ChipStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in dataclass_fields(self)
            }
        )


class MultiCoreChip:
    """Execute a trace on the migration-mode multi-core."""

    def __init__(
        self,
        config: "ChipConfig | None" = None,
        prefetcher_factory=None,
        controller=None,
        probe=None,
    ) -> None:
        """``prefetcher_factory``, if given, is called once per core
        with that core's L2 and must return an object with
        ``demand_access(line, hit)`` (see :mod:`repro.caches.prefetch`);
        only the active core's prefetcher observes demand traffic.

        ``controller`` overrides the default
        :class:`~repro.core.controller.MigrationController` with any
        object exposing ``observe(line, l2_miss)``, ``current_subset()``
        and ``num_subsets`` — e.g. a
        :class:`~repro.core.multiway.HierarchicalController` for chips
        with more than four cores (paper section 6).

        ``probe``, if given, is a :class:`~repro.obs.probe.SimProbe`
        wired into every instrumented component (migration engine,
        coherent L2s, controller, transition filters, mechanisms); the
        default ``None`` keeps every hook to a single attribute check."""
        self.config = config or ChipConfig()
        caches = self.config.caches
        self.il1 = caches.make_l1(caches.il1_bytes)
        self.dl1 = caches.make_l1(caches.dl1_bytes)
        self.l2s = CoherentL2s(self.config.num_cores, caches)
        self.prefetchers = (
            [prefetcher_factory(cache) for cache in self.l2s.caches]
            if prefetcher_factory
            else None
        )
        if controller is not None:
            if (
                self.config.migration_enabled
                and controller.num_subsets != self.config.num_cores
            ):
                raise ValueError(
                    f"controller splits {controller.num_subsets} ways, "
                    f"chip has {self.config.num_cores} cores"
                )
            self.controller = controller
        else:
            if self.config.controller is None:
                raise ValueError(
                    "ChipConfig.controller is None: pass a controller "
                    "instance to MultiCoreChip"
                )
            self.controller = MigrationController(self.config.controller)
        self.engine = MigrationEngine(self.config.num_cores)
        self.bus_traffic = UpdateBusTraffic()
        self.stats = ChipStats()
        self.probe = probe
        if probe is not None:
            probe.bind_chip(self)
            self.engine.probe = probe
            self.l2s.probe = probe
            attach = getattr(self.controller, "attach_probe", None)
            if attach is not None:
                attach(probe)

    @property
    def active_core(self) -> int:
        return self.engine.active_core

    def access(self, access: Access) -> None:
        """Run one memory reference through the chip."""
        stats = self.stats
        stats.accesses += 1
        if access.instruction >= stats.instructions:
            stats.instructions = access.instruction + 1
        probe = self.probe
        if probe is not None:
            probe.on_access(stats.accesses)
        line = access.address // self.config.caches.line_size
        kind = access.kind
        if kind is AccessKind.FETCH:
            if self.il1.access(line):
                return
            stats.il1_misses += 1
            self._miss_request(line, write=False)
        elif kind is AccessKind.LOAD:
            if self.dl1.access(line):
                return
            stats.dl1_misses += 1
            self._miss_request(line, write=False)
        else:
            # Write-through, non-write-allocate DL1; the store always
            # reaches the L2 and is broadcast on the update bus.
            l1_hit = self.dl1.access(line, write=True, allocate=False)
            self.bus_traffic.record_store()
            l2_miss = self._l2_access(line, write=True)
            if not l1_hit:
                stats.dl1_misses += 1
                self._controller_step(line, l2_miss)

    def _miss_request(self, line: int, write: bool) -> None:
        """An L1 miss: fill the (mirrored) L1s, access the active L2,
        and let the migration controller observe the request."""
        self.bus_traffic.record_l1_fill(self.config.caches.line_size)
        l2_miss = self._l2_access(line, write=write)
        self._controller_step(line, l2_miss)

    def _l2_access(self, line: int, write: bool) -> bool:
        self.stats.l2_accesses += 1
        active = self.engine.active_core
        hit = self.l2s.access(active, line, write=write)
        if not hit:
            self.stats.l2_misses += 1
        if self.prefetchers is not None:
            self.prefetchers[active].demand_access(line, hit)
        return not hit

    def _controller_step(self, line: int, l2_miss: bool) -> None:
        self.stats.l1_miss_requests += 1
        if not self.config.migration_enabled:
            return
        self.controller.observe(line, l2_miss=l2_miss)
        target = self.controller.current_subset()
        if self.engine.migrate_to(target):
            self.stats.migrations += 1

    def run(self, accesses) -> ChipStats:
        """Run a whole trace; returns the accumulated stats."""
        for access in accesses:
            self.access(access)
        return self.stats

    def run_arrays(self, addresses, kinds, instructions) -> ChipStats:
        """Run a whole trace given as parallel arrays (the batched fast
        path — bit-identical to :meth:`run`, see ``repro.kernels``)."""
        from repro.kernels.batch import run_chip_arrays

        return run_chip_arrays(self, addresses, kinds, instructions)

    def run_filtered(self, record) -> ChipStats:
        """Replay a precomputed L1-filter miss stream
        (:class:`~repro.kernels.l1filter.L1FilterRecord`), skipping the
        L1 stage; ``ChipStats`` match running the original trace."""
        from repro.kernels.batch import run_chip_filtered

        return run_chip_filtered(self, record)

    def replay_state(self) -> "ChipReplayState":
        """The post-L1 pipeline as an explicit replayable state machine
        with exact ``snapshot()``/``restore()``/``digest()`` (see
        :mod:`repro.multicore.state`)."""
        from repro.multicore.state import ChipReplayState

        return ChipReplayState(self)

    def update_bus_bytes(self) -> "dict[str, float]":
        """Update-bus traffic summary: measured store/fill bytes plus
        the analytic register/branch estimate of section 2.3."""
        model = UpdateBusModel()
        return {
            "store_bytes": float(self.bus_traffic.store_bytes),
            "l1_fill_bytes": float(self.bus_traffic.l1_fill_bytes),
            "peak_bytes_per_cycle": model.bytes_per_cycle(),
        }
