"""First-order performance model (paper sections 2.4 and 4.2).

The paper never simulates cycles; it reasons with the *relative*
migration penalty ``P_mig`` (a migration costs ``P_mig`` L2-miss/L3-hit
penalties) and break-even arithmetic like "as long as the migration
penalty is less than 60 times the L2-miss/L3-hit penalty, we will
observe performance gains on 181.mcf".  This module closes that loop
with the standard miss-penalty CPI decomposition::

    cycles = instructions * base_cpi
           + l2_accesses  * l2_hit_penalty      (L1 misses that hit L2)
           + l2_misses    * l3_penalty          (L2-miss / L3-hit)
           + migrations   * P_mig * l3_penalty

so that, for any assumed ``P_mig``, a Table 2 row converts into a
speedup — and the break-even ``P_mig`` falls out where the speedup
crosses 1.0 (matching :func:`repro.multicore.migration.break_even_pmig`
when the L1/L2-hit components cancel, as they do by construction: the
L1 miss stream is identical with and without migration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class TimingModel:
    """Cycle-accounting parameters (defaults: a 2004-class core)."""

    base_cpi: float = 1.0  #: pipeline CPI with a perfect L2
    l2_hit_penalty: float = 12.0  #: extra cycles for an L1 miss / L2 hit
    l3_penalty: float = 200.0  #: extra cycles for an L2 miss / L3 hit

    def cycles(
        self,
        instructions: int,
        l2_accesses: int,
        l2_misses: int,
        migrations: int = 0,
        pmig: float = 0.0,
    ) -> float:
        """Total cycles under the miss-penalty decomposition."""
        if instructions < 0 or l2_accesses < 0 or l2_misses < 0 or migrations < 0:
            raise ValueError("event counts must be non-negative")
        if pmig < 0:
            raise ValueError(f"pmig must be non-negative, got {pmig}")
        return (
            instructions * self.base_cpi
            + l2_accesses * self.l2_hit_penalty
            + l2_misses * self.l3_penalty
            + migrations * pmig * self.l3_penalty
        )


@dataclass(frozen=True)
class SpeedupPoint:
    """Migration speedup at one assumed relative penalty."""

    pmig: float
    speedup: float  #: baseline_cycles / migrating_cycles (>1 = win)


def migration_speedup(
    model: TimingModel,
    instructions: int,
    l1_misses: int,
    l2_misses_baseline: int,
    l2_misses_migrating: int,
    migrations: int,
    pmig: float,
) -> float:
    """Speedup of the migrating chip over the single-core baseline.

    The L1-miss stream is identical on both machines (strict L1
    mirroring), so both sides carry the same ``l1_misses`` L2-access
    component and differ only in L2 misses and migration stalls.
    """
    baseline = model.cycles(instructions, l1_misses, l2_misses_baseline)
    migrating = model.cycles(
        instructions, l1_misses, l2_misses_migrating, migrations, pmig
    )
    return baseline / migrating


def speedup_curve(
    model: TimingModel,
    instructions: int,
    l1_misses: int,
    l2_misses_baseline: int,
    l2_misses_migrating: int,
    migrations: int,
    pmig_values: "Sequence[float]" = (1, 2, 5, 10, 20, 50, 100),
) -> "list[SpeedupPoint]":
    """Speedup as a function of the assumed ``P_mig`` (the paper's way
    of presenting the trade-off without fixing a technology)."""
    return [
        SpeedupPoint(
            pmig=float(pmig),
            speedup=migration_speedup(
                model,
                instructions,
                l1_misses,
                l2_misses_baseline,
                l2_misses_migrating,
                migrations,
                float(pmig),
            ),
        )
        for pmig in pmig_values
    ]


def break_even_pmig_timing(
    l2_misses_baseline: int,
    l2_misses_migrating: int,
    migrations: int,
) -> float:
    """``P_mig`` at which the speedup crosses 1.0.

    Under the decomposition above the base-CPI and L2-hit terms cancel,
    so the crossing is exactly (misses removed) / migrations — the
    paper's arithmetic, independent of the timing parameters.
    """
    if migrations == 0:
        return float("inf") if l2_misses_migrating < l2_misses_baseline else 0.0
    return (l2_misses_baseline - l2_misses_migrating) / migrations
