"""The affinity algorithm as mathematically defined (paper section 3.2).

This module simulates Definition 1 *directly*: every element of the
working set carries an unbounded-integer affinity ``A_e``; the window
``R`` holds the ``n`` most recently referenced distinct elements; on
every reference, **all** elements are updated::

    A_e(t+1) = A_e(t) + sign(A_R(t))   if e in R
    A_e(t+1) = A_e(t) - sign(A_R(t))   otherwise

with ``sign(x) = +1 if x >= 0 else -1``.

It is O(|S|) per reference and exists as the *executable specification*:
the O(1)-per-reference hardware mechanism of Figure 2
(:class:`repro.core.mechanism.SplitMechanism`) is property-tested for
exact agreement with this class (with saturation widened away and the
LRU window variant selected).

Timing convention
-----------------
The paper's notation leaves one choice open: whether the element
referenced at step ``t`` is already a member of ``R`` for the step-``t``
update.  We resolve it the way the hardware of Figure 2 does — the
referenced element enters the window *first*, then ``sign(A_R)`` is
taken — which also matches the positive-feedback narrative of
section 3.2 (synchronous elements must be *in* ``R`` together to be
reinforced).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable

from repro.common.saturating import sign


class ReferenceAffinitySplitter:
    """Direct simulation of the affinity algorithm (Definition 1).

    ``window_size`` is ``|R|``.  Elements are arbitrary hashables
    (cache-line addresses in practice).  Affinities are unbounded
    Python integers — no saturation — and the window holds *distinct*
    elements with LRU replacement, as in the paper's definition.
    """

    def __init__(self, window_size: int) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        self.window_size = window_size
        self.affinity: "Dict[int, int]" = {}
        self._window: "OrderedDict[int, None]" = OrderedDict()
        self.references = 0

    @property
    def window(self) -> "list[int]":
        """Window contents, least- to most-recently referenced."""
        return list(self._window)

    def window_affinity(self) -> int:
        """``A_R``: the summed affinity of the window."""
        return sum(self.affinity[e] for e in self._window)

    def reference(self, element: int) -> int:
        """Process one reference; return ``sign(A_R)`` used for the update."""
        self.references += 1
        affinity = self.affinity
        if element not in affinity:
            affinity[element] = 0  # A_e(t_e) = 0 on first reference
        window = self._window
        if element in window:
            window.move_to_end(element)
        else:
            window[element] = None
            if len(window) > self.window_size:
                window.popitem(last=False)
        step = sign(self.window_affinity())
        for e in affinity:
            if e in window:
                affinity[e] += step
            else:
                affinity[e] -= step
        return step

    def run(self, elements: Iterable[int]) -> None:
        """Process a whole reference stream."""
        for element in elements:
            self.reference(element)

    def subset_of(self, element: int) -> int:
        """Subset of ``element`` by affinity sign: 0 if ``A_e >= 0`` else 1."""
        return 0 if sign(self.affinity.get(element, 0)) > 0 else 1

    def split(self) -> "tuple[set, set]":
        """Partition the seen working set by affinity sign."""
        positive = {e for e, a in self.affinity.items() if a >= 0}
        negative = {e for e, a in self.affinity.items() if a < 0}
        return positive, negative

    def balance(self) -> float:
        """|positive| / |seen| — 0.5 is a perfectly balanced split."""
        if not self.affinity:
            return 0.5
        positive, _ = self.split()
        return len(positive) / len(self.affinity)
