"""The paper's primary contribution: the affinity algorithm and the
migration controller built on it.

* :mod:`repro.core.affinity` -- the mathematical definition of the
  algorithm (paper Definition 1), simulated directly; the executable
  specification the hardware implementation is tested against.
* :mod:`repro.core.mechanism` -- the practical hardware mechanism of
  Figure 2: FIFO R-window, postponed updates via ``I_e``/``O_e``/``Δ``,
  saturating arithmetic.
* :mod:`repro.core.affinity_store` -- where ``O_e`` lives: an unbounded
  table (section 4.1, "unlimited affinity cache size") or the finite
  skewed-associative affinity cache of section 4.2.
* :mod:`repro.core.transition_filter` -- the saturating up/down counter
  that hysteresises subset decisions (section 3.4).
* :mod:`repro.core.sampling` -- working-set sampling via
  ``H(e) = e mod 31`` (section 3.5).
* :mod:`repro.core.controller` -- the migration controller: 2-way and
  4-way working-set splitting with sampling and L2 filtering
  (sections 3.4-3.6).
"""

from repro.core.affinity import ReferenceAffinitySplitter
from repro.core.affinity_store import AffinityCache, AffinityStore, UnboundedAffinityStore
from repro.core.controller import ControllerConfig, ControllerStats, MigrationController
from repro.core.mechanism import RWindowEntry, SplitMechanism
from repro.core.multiway import HierarchicalConfig, HierarchicalController
from repro.core.sampling import SamplingPolicy, mod_hash
from repro.core.transition_filter import TransitionFilter

__all__ = [
    "AffinityCache",
    "AffinityStore",
    "ControllerConfig",
    "ControllerStats",
    "HierarchicalConfig",
    "HierarchicalController",
    "MigrationController",
    "RWindowEntry",
    "ReferenceAffinitySplitter",
    "SamplingPolicy",
    "SplitMechanism",
    "TransitionFilter",
    "UnboundedAffinityStore",
    "mod_hash",
]
