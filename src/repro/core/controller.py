"""The migration controller (paper sections 3.4-3.6).

The controller watches the stream of L1-miss requests and, for each,
answers "which subset (= which core's L2) does this working set belong
to right now?".  It composes:

* one or three :class:`~repro.core.mechanism.SplitMechanism` instances
  (``X`` alone for 2-way splitting; ``X``, ``Y[+1]``, ``Y[-1]`` for the
  recursive 4-way splitting of section 3.6),
* one :class:`~repro.core.transition_filter.TransitionFilter` per
  mechanism,
* a shared affinity store (unbounded, or the finite
  :class:`~repro.core.affinity_store.AffinityCache`),
* a :class:`~repro.core.sampling.SamplingPolicy`, and
* optional **L2 filtering** (section 3.4): mechanism state updates on
  every L1 miss, but the transition filters move only on L2 misses, so
  a migration can only happen upon an L2 miss.

The subset index returned by :meth:`MigrationController.observe` is the
subset *before* the reference updates the controller — exactly the
order of the paper's stack experiment ("the address ... is sent to only
one of the four LRU stacks ... After accessing the appropriate LRU
stack, we update the migration controller state", section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.affinity_store import AffinityCache, UnboundedAffinityStore
from repro.core.mechanism import SplitMechanism
from repro.core.sampling import SamplingPolicy
from repro.core.transition_filter import TransitionFilter


@dataclass(frozen=True)
class ControllerConfig:
    """Migration-controller parameters.

    Defaults are the section 4.1 configuration (unlimited affinity
    cache, no sampling, 20-bit filters, no L2 filtering);
    :meth:`four_core` builds the section 4.2 configuration.
    """

    num_subsets: int = 4  #: 2 or 4 working-set subsets (= target cores)
    affinity_bits: int = 16
    filter_bits: int = 20
    x_window_size: int = 128  #: ``|R_X|``
    y_window_size: int = 64  #: ``|R_Y[+1]| = |R_Y[-1]|``
    sampling: SamplingPolicy = field(default_factory=SamplingPolicy.full)
    affinity_cache_entries: "int | None" = None  #: ``None`` = unbounded
    affinity_cache_ways: int = 4
    l2_filtering: bool = False
    lru_window: bool = False  #: ablation: distinct-LRU R-window
    exact_window_affinity: bool = True
    """Track the exact Definition-1 window affinity (default; reproduces
    Figure 3).  ``False`` selects the literal Figure 2 register as an
    ablation — see :mod:`repro.core.mechanism`."""

    def __post_init__(self) -> None:
        if self.num_subsets not in (2, 4):
            raise ValueError(
                f"num_subsets must be 2 or 4, got {self.num_subsets}"
            )

    def to_dict(self) -> dict:
        """JSON-able form (for segment-job parameters and snapshots)."""
        return {
            "num_subsets": self.num_subsets,
            "affinity_bits": self.affinity_bits,
            "filter_bits": self.filter_bits,
            "x_window_size": self.x_window_size,
            "y_window_size": self.y_window_size,
            "sampling": self.sampling.to_dict(),
            "affinity_cache_entries": self.affinity_cache_entries,
            "affinity_cache_ways": self.affinity_cache_ways,
            "l2_filtering": self.l2_filtering,
            "lru_window": self.lru_window,
            "exact_window_affinity": self.exact_window_affinity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControllerConfig":
        data = dict(data)
        data["sampling"] = SamplingPolicy.from_dict(data["sampling"])
        return cls(**data)

    @classmethod
    def stack_experiment(cls) -> "ControllerConfig":
        """Section 4.1: 4-way, unlimited affinity cache, 20-bit filters,
        |R_X|=128, |R_Y|=64, no sampling, no L2 filtering."""
        return cls()

    @classmethod
    def four_core(cls) -> "ControllerConfig":
        """Section 4.2: 8k-entry 4-way skewed affinity cache, 25 %
        sampling, 18-bit filters, L2 filtering on."""
        return cls(
            filter_bits=18,
            sampling=SamplingPolicy.quarter(),
            affinity_cache_entries=8192,
            affinity_cache_ways=4,
            l2_filtering=True,
        )


@dataclass
class ControllerStats:
    """Event counts accumulated by a controller."""

    references: int = 0
    sampled_references: int = 0
    filter_updates: int = 0
    transitions: int = 0

    @property
    def transition_frequency(self) -> float:
        """Transitions per reference (the quantity on Figures 4-5)."""
        if self.references == 0:
            return 0.0
        return self.transitions / self.references


class MigrationController:
    """Online K-way working-set splitter (K = 2 or 4)."""

    __slots__ = (
        "config",
        "store",
        "mechanism_x",
        "filter_x",
        "mechanism_y",
        "filter_y",
        "stats",
        "probe",
        "_previous_subset",
    )

    def __init__(self, config: "ControllerConfig | None" = None) -> None:
        self.config = config or ControllerConfig()
        cfg = self.config
        if cfg.affinity_cache_entries is None:
            self.store = UnboundedAffinityStore()
        else:
            self.store = AffinityCache(
                cfg.affinity_cache_entries, cfg.affinity_cache_ways
            )
        self.mechanism_x = self._make_mechanism(cfg.x_window_size, "R_X")
        self.filter_x = TransitionFilter(cfg.filter_bits, name="F_X")
        if cfg.num_subsets == 4:
            self.mechanism_y = {
                +1: self._make_mechanism(cfg.y_window_size, "R_Y[+1]"),
                -1: self._make_mechanism(cfg.y_window_size, "R_Y[-1]"),
            }
            self.filter_y = {
                +1: TransitionFilter(cfg.filter_bits, name="F_Y[+1]"),
                -1: TransitionFilter(cfg.filter_bits, name="F_Y[-1]"),
            }
        else:
            self.mechanism_y = {}
            self.filter_y = {}
        self.stats = ControllerStats()
        #: nil-by-default telemetry hook (:mod:`repro.obs.probe`); set
        #: through :meth:`attach_probe` so the filters and mechanisms
        #: report through the same probe.
        self.probe = None
        self._previous_subset = self.current_subset()

    def _make_mechanism(self, window_size: int, name: str) -> SplitMechanism:
        return SplitMechanism(
            window_size,
            self.store,
            affinity_bits=self.config.affinity_bits,
            lru_window=self.config.lru_window,
            track_true_window_affinity=self.config.exact_window_affinity,
            name=name,
        )

    def attach_probe(self, probe) -> None:
        """Wire ``probe`` into this controller and every component it
        owns (transition filters, split mechanisms)."""
        self.probe = probe
        for transition_filter in [self.filter_x, *self.filter_y.values()]:
            transition_filter.probe = probe
        for mechanism in self.mechanisms():
            mechanism.probe = probe

    @property
    def num_subsets(self) -> int:
        return self.config.num_subsets

    def current_subset(self) -> int:
        """Subset currently indicated by the filter signs.

        2-way: ``sign(F_X)`` as 0/1.  4-way: the pair
        ``(sign(F_X), sign(F_Y[sign(F_X)]))`` encoded as 0..3, with the
        upper bit from ``X`` (section 3.6).
        """
        x_sign = self.filter_x.sign
        if self.config.num_subsets == 2:
            return 0 if x_sign > 0 else 1
        y_sign = self.filter_y[x_sign].sign
        return (0 if x_sign > 0 else 2) + (0 if y_sign > 0 else 1)

    def observe(self, line: int, l2_miss: bool = True) -> int:
        """Process one L1-miss request; return the subset it belongs to.

        ``l2_miss`` only matters when L2 filtering is enabled: the
        affinity state always advances, the transition filter only on
        L2 misses.  The returned subset is the pre-update decision.
        """
        stats = self.stats
        stats.references += 1
        subset_before = self._previous_subset
        cfg = self.config
        sampling = cfg.sampling
        if sampling.is_sampled(line):
            stats.sampled_references += 1
            if cfg.num_subsets == 4 and not sampling.routes_to_x(line):
                branch = self.filter_x.sign
                mechanism = self.mechanism_y[branch]
                transition_filter = self.filter_y[branch]
            else:
                mechanism = self.mechanism_x
                transition_filter = self.filter_x
            affinity = mechanism.process(line)
            if l2_miss or not cfg.l2_filtering:
                transition_filter.update(affinity)
                stats.filter_updates += 1
        subset_after = self.current_subset()
        if subset_after != subset_before:
            stats.transitions += 1
            probe = self.probe
            if probe is not None:
                probe.on_transition(stats.references, subset_before, subset_after)
        self._previous_subset = subset_after
        return subset_before

    def affinity_of(self, line: int) -> "int | None":
        """Best-effort current affinity of ``line`` (for inspection)."""
        cfg = self.config
        if cfg.num_subsets == 4 and not cfg.sampling.routes_to_x(line):
            branch = self.filter_x.sign
            return self.mechanism_y[branch].affinity_of(line)
        return self.mechanism_x.affinity_of(line)

    def mechanisms(self) -> "list[SplitMechanism]":
        """All mechanisms (X first), for inspection and tests."""
        result = [self.mechanism_x]
        if self.config.num_subsets == 4:
            result.extend([self.mechanism_y[+1], self.mechanism_y[-1]])
        return result
