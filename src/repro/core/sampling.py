"""Working-set sampling (paper section 3.5).

The affinity cache would need to cover the whole on-chip L2 capacity
(e.g. 32k entries / 152 KB for 2 MB of L2).  The paper samples the
working set instead: lines are hashed with ``H(e) = e mod 31`` and only
lines whose hash falls in a chosen residue set get affinity-cache
entries; the rest "simply rely on the transition filter" — they take
whichever subset the filter currently indicates and never update it.

The modulus is prime to avoid pathological aliasing with the
constant-stride reference streams that are frequent in practice; the
paper notes ``e mod 31`` is cheap in hardware (carry-save adder over
5-bit digits plus a small ROM, since ``2^5 ≡ 1 (mod 31)``).

Section 3.6 reuses the same hash for 4-way splitting: among *sampled*
lines, odd hashes feed mechanism ``X`` and even hashes feed ``Y[±1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet


def mod_hash(line: int, modulus: int = 31) -> int:
    """``H(e) = e mod modulus`` (the paper's sampling hash)."""
    return line % modulus


def digitwise_mod31(line: int) -> int:
    """``e mod 31`` computed the hardware way: sum the 5-bit digits.

    Because ``2^5 ≡ 1 (mod 31)``, ``Σ_i e_i · 2^(5i) ≡ Σ_i e_i``;
    repeating the digit-sum until the value fits in 5 bits (with the
    all-ones fixup) yields the remainder.  Exposed for the tests that
    check the hardware trick against ``%``.
    """
    if line < 0:
        raise ValueError(f"line addresses are non-negative, got {line}")
    value = line
    while value > 31:
        total = 0
        while value:
            total += value & 31
            value >>= 5
        value = total
    return 0 if value == 31 else value


@dataclass(frozen=True)
class SamplingPolicy:
    """Which lines are sampled, and how sampled lines route to mechanisms.

    ``sampled_residues`` of ``None`` disables sampling (every line is
    sampled) — the section 4.1 configuration.  The paper's 25 % sampling
    of section 4.2 is ``frozenset(range(8))`` over modulus 31.
    """

    modulus: int = 31
    sampled_residues: "FrozenSet[int] | None" = None

    def __post_init__(self) -> None:
        if self.modulus <= 1:
            raise ValueError(f"modulus must be > 1, got {self.modulus}")
        if self.sampled_residues is not None:
            residues = frozenset(self.sampled_residues)
            if not residues:
                raise ValueError("sampled_residues must not be empty")
            if any(not 0 <= r < self.modulus for r in residues):
                raise ValueError(
                    f"residues {sorted(residues)} outside [0, {self.modulus})"
                )
            object.__setattr__(self, "sampled_residues", residues)

    @classmethod
    def quarter(cls) -> "SamplingPolicy":
        """The paper's 25 % sampling: ``H(e) < 8`` over modulus 31."""
        return cls(modulus=31, sampled_residues=frozenset(range(8)))

    @classmethod
    def full(cls) -> "SamplingPolicy":
        """No sampling: every line carries affinity (section 4.1)."""
        return cls(modulus=31, sampled_residues=None)

    @property
    def sample_fraction(self) -> float:
        if self.sampled_residues is None:
            return 1.0
        return len(self.sampled_residues) / self.modulus

    def hash_of(self, line: int) -> int:
        return line % self.modulus

    def is_sampled(self, line: int) -> bool:
        if self.sampled_residues is None:
            return True
        return line % self.modulus in self.sampled_residues

    def routes_to_x(self, line: int) -> bool:
        """4-way routing among sampled lines: odd hash -> ``X``,
        even hash -> ``Y[sign(F_X)]`` (section 3.6)."""
        return (line % self.modulus) % 2 == 1

    def to_dict(self) -> dict:
        """JSON-able form (for segment-job parameters and snapshots)."""
        residues = self.sampled_residues
        return {
            "modulus": self.modulus,
            "sampled_residues": None if residues is None else sorted(residues),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SamplingPolicy":
        residues = data["sampled_residues"]
        return cls(
            modulus=int(data["modulus"]),
            sampled_residues=None if residues is None else frozenset(residues),
        )
