"""The transition filter (paper section 3.4).

A "splittable" working set rewards migrations; a random one does not.
The transition filter keeps migrations rare on unsplittable sets while
letting splittable ones transition quickly: it is an up-down saturating
counter ``F`` updated on each (filtered) reference with the referenced
element's affinity, ``F += A_e``, and the subset decision is taken from
``sign(F)`` instead of ``sign(A_e)``.

With ``b``-bit affinities saturated at ``±2^(b-1)`` and an ``f``-bit
filter, a random working set whose affinities sit at the rails with
probability 1/2 each flips the filter about every ``2^(1+f-b)``
references (the paper's "1/2^(1+20-16) ≈ 3%" example), while a
splittable set pays a fixed detection delay of about ``2^(f-b)``
references per genuine transition.
"""

from __future__ import annotations

from repro.common.saturating import SaturatingCounter


class TransitionFilter:
    """Saturating up/down counter with sign-based subset decision.

    ``name`` labels this filter in telemetry (``"F_X"``, ``"F_Y[+1]"``,
    …); ``probe`` is the nil-by-default observability hook — when set
    (see :mod:`repro.obs.probe`), each sign change is reported as a
    ``filter.flip`` event.  The hook sits inside the sign-change branch,
    so the common non-flipping path costs nothing extra.
    """

    __slots__ = (
        "_counter",
        "name",
        "probe",
        "updates",
        "sign_changes",
        "_last_sign",
    )

    def __init__(self, bits: int = 20, name: str = "F") -> None:
        self._counter = SaturatingCounter(bits)
        self.name = name
        self.probe = None
        self.updates = 0
        self.sign_changes = 0
        self._last_sign = self._counter.sign_value

    @property
    def bits(self) -> int:
        return self._counter.bits

    @property
    def value(self) -> int:
        return self._counter.value

    @property
    def subset(self) -> int:
        """Current decision: 0 when ``F >= 0``, 1 when ``F < 0``.

        (The paper indexes subsets by ``sign(F) ∈ {+1, -1}``; 0/1 is the
        same information in array-index form.)
        """
        return 0 if self._counter.sign_value > 0 else 1

    @property
    def sign(self) -> int:
        """``sign(F)`` under the paper's convention (``sign(0) = +1``)."""
        return self._counter.sign_value

    def update(self, affinity: int) -> int:
        """``F += A_e``; returns the post-update subset."""
        self.updates += 1
        self._counter.add(affinity)
        new_sign = self._counter.sign_value
        if new_sign != self._last_sign:
            self.sign_changes += 1
            self._last_sign = new_sign
            probe = self.probe
            if probe is not None:
                probe.on_filter_flip(self.name, new_sign, self._counter.value)
        return self.subset

    def reset(self, value: int = 0) -> None:
        self._counter.reset(value)
        self._last_sign = self._counter.sign_value
