"""Affinity storage: where the per-line ``O_e`` values live.

Section 4.1 assumes "an unlimited affinity cache size"
(:class:`UnboundedAffinityStore`); section 4.2 uses a real, finite
**affinity cache**: "8k entries and ... 4-way skewed-associative", each
entry holding a tag, a 16-bit ``O_e``, "plus a few bits for age-based
replacement" (:class:`AffinityCache`).

A store read that misses returns ``None``; the mechanism then forces
``A_e = 0`` by taking ``O_e = Δ``.  The paper leans on this miss policy:
for working sets larger than the affinity cache, affinities read as
zero, the transition filter stops moving, and useless migrations are
suppressed ("migrations are reduced thanks to the limited size affinity
cache", section 4.2).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable

from repro.caches.base import check_power_of_two
from repro.caches.skewed import skew_hash


@runtime_checkable
class AffinityStore(Protocol):
    """Minimal interface the split mechanism needs."""

    def read(self, line: int) -> Optional[int]:
        """Return ``O_e`` for ``line``, or ``None`` on a miss."""
        ...

    def write(self, line: int, value: int) -> None:
        """Record ``O_e`` for ``line`` (allocating on miss)."""
        ...


class UnboundedAffinityStore:
    """A dict-backed store that never misses after first write."""

    __slots__ = ("_values", "reads", "writes", "misses")

    def __init__(self) -> None:
        self._values: "Dict[int, int]" = {}
        self.reads = 0
        self.writes = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, line: int) -> bool:
        return line in self._values

    def read(self, line: int) -> Optional[int]:
        self.reads += 1
        value = self._values.get(line)
        if value is None:
            self.misses += 1
        return value

    def write(self, line: int, value: int) -> None:
        self.writes += 1
        self._values[line] = value

    def known_lines(self) -> "list[int]":
        return list(self._values)


class AffinityCache:
    """The finite skewed-associative affinity cache of section 4.2.

    ``num_entries`` total entries split across ``ways`` direct-mapped
    banks indexed by the skewing hash of
    :func:`repro.caches.skewed.skew_hash`.  Replacement is oldest-access
    ("age-based"), tracked with a global clock — the idealised version
    of the paper's 2-bit age field.
    """

    __slots__ = (
        "num_entries",
        "ways",
        "reads",
        "writes",
        "misses",
        "evictions",
        "_num_sets",
        "_index_bits",
        "_lines",
        "_values",
        "_time",
        "_clock",
    )

    def __init__(self, num_entries: int = 8192, ways: int = 4) -> None:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        if num_entries % ways:
            raise ValueError(
                f"num_entries {num_entries} not divisible by ways {ways}"
            )
        num_sets = num_entries // ways
        check_power_of_two(num_sets, "entries per way")
        self.num_entries = num_entries
        self.ways = ways
        self.reads = 0
        self.writes = 0
        self.misses = 0
        self.evictions = 0
        self._num_sets = num_sets
        self._index_bits = num_sets.bit_length() - 1
        self._lines: "list[int | None]" = [None] * num_entries
        self._values = [0] * num_entries
        self._time = [0] * num_entries
        self._clock = 0

    def _find(self, line: int) -> int:
        for way in range(self.ways):
            slot = way * self._num_sets + skew_hash(line, way, self._index_bits)
            if self._lines[slot] == line:
                return slot
        return -1

    def __contains__(self, line: int) -> bool:
        return self._find(line) >= 0

    def __len__(self) -> int:
        return sum(1 for entry in self._lines if entry is not None)

    def read(self, line: int) -> Optional[int]:
        self.reads += 1
        self._clock += 1
        slot = self._find(line)
        if slot < 0:
            self.misses += 1
            return None
        self._time[slot] = self._clock
        return self._values[slot]

    def write(self, line: int, value: int) -> None:
        self.writes += 1
        self._clock += 1
        slot = self._find(line)
        if slot < 0:
            slot = self._victim(line)
            if self._lines[slot] is not None:
                self.evictions += 1
            self._lines[slot] = line
        self._values[slot] = value
        self._time[slot] = self._clock

    def _victim(self, line: int) -> int:
        victim_slot = -1
        victim_time = None
        for way in range(self.ways):
            slot = way * self._num_sets + skew_hash(line, way, self._index_bits)
            if self._lines[slot] is None:
                return slot
            if victim_time is None or self._time[slot] < victim_time:
                victim_slot = slot
                victim_time = self._time[slot]
        return victim_slot

    def slot_rows(self, lines):
        """Probe rows for a whole line array at once.

        ``result[i, w]`` is the slot :meth:`_find`/:meth:`_victim` probe
        for ``lines[i]`` in way ``w`` — the vectorised twin of the
        scalar probe loops (the batched replay kernels precompute these
        rows per record; the scalar loops stay the specification, see
        ``tests/kernels/test_tag_matrix_differential.py``).
        """
        from repro.kernels.arrays import skew_slot_matrix

        return skew_slot_matrix(lines, self._num_sets, self.ways)
