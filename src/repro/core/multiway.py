"""K-way working-set splitting for K = 2^depth (paper sections 3.6, 6).

Section 3.6 builds 4-way splitting from three 2-way mechanisms — a root
``X`` and two children ``Y[+1]``, ``Y[-1]`` selected by ``sign(F_X)`` —
routed by the parity of the sampling hash.  The conclusion adds: "we
believe it is possible to adapt it to a larger number of cores".

:class:`HierarchicalController` is that adaptation: a complete binary
tree of 2-way mechanisms of depth ``d`` splits a working set into
``2^d`` subsets.  Level ``l`` of the tree is selected by the hash
residue modulo the number of levels (generalising the odd/even routing
of section 3.6: each level trains on its own slice of the sampled
lines), and within level ``l`` the active node is addressed by the
signs of the filters along the current root path — exactly the
``Y[sign(F_X)]`` construction, recursively.

For ``depth = 1`` and ``depth = 2`` this reduces to structures
equivalent to the paper's 2-way and 4-way controllers (the 4-way
routing differs only in which residues feed which level); the paper's
exact 4-way controller remains
:class:`repro.core.controller.MigrationController`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.affinity_store import AffinityCache, UnboundedAffinityStore
from repro.core.controller import ControllerStats
from repro.core.mechanism import SplitMechanism
from repro.core.sampling import SamplingPolicy
from repro.core.transition_filter import TransitionFilter


@dataclass(frozen=True)
class HierarchicalConfig:
    """Parameters of a 2^depth-way hierarchical splitter."""

    depth: int = 3  #: 2^3 = 8 subsets
    affinity_bits: int = 16
    filter_bits: int = 20
    root_window_size: int = 128
    sampling: SamplingPolicy = field(default_factory=SamplingPolicy.full)
    affinity_cache_entries: "int | None" = None
    affinity_cache_ways: int = 4
    l2_filtering: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.depth <= 6:
            raise ValueError(f"depth must be in [1, 6], got {self.depth}")

    @property
    def num_subsets(self) -> int:
        return 1 << self.depth

    def window_size_at(self, level: int) -> int:
        """|R| halves per level, as |R_Y| = |R_X| / 2 does in §3.6."""
        return max(8, self.root_window_size >> level)


class HierarchicalController:
    """Online 2^depth-way splitter built from a tree of mechanisms."""

    def __init__(self, config: "HierarchicalConfig | None" = None) -> None:
        self.config = config or HierarchicalConfig()
        cfg = self.config
        if cfg.affinity_cache_entries is None:
            self.store = UnboundedAffinityStore()
        else:
            self.store = AffinityCache(
                cfg.affinity_cache_entries, cfg.affinity_cache_ways
            )
        # Complete binary tree in heap layout: node 1 is the root; the
        # children of node i are 2i and 2i+1 (2i for F >= 0).
        self._mechanisms: "dict[int, SplitMechanism]" = {}
        self._filters: "dict[int, TransitionFilter]" = {}
        for level in range(cfg.depth):
            for node in range(1 << level, 1 << (level + 1)):
                self._mechanisms[node] = SplitMechanism(
                    cfg.window_size_at(level),
                    self.store,
                    affinity_bits=cfg.affinity_bits,
                )
                self._filters[node] = TransitionFilter(cfg.filter_bits)
        self.stats = ControllerStats()
        self._previous_subset = self.current_subset()

    @property
    def num_subsets(self) -> int:
        return self.config.num_subsets

    def _active_path(self) -> "list[int]":
        """Nodes along the root path selected by the filter signs."""
        path = []
        node = 1
        for _level in range(self.config.depth):
            path.append(node)
            bit = 0 if self._filters[node].sign > 0 else 1
            node = 2 * node + bit
        return path

    def current_subset(self) -> int:
        """Subset = the leaf index addressed by the filter signs."""
        node = 1
        for _level in range(self.config.depth):
            bit = 0 if self._filters[node].sign > 0 else 1
            node = 2 * node + bit
        return node - self.num_subsets

    def _level_of(self, line: int) -> int:
        """Which tree level a sampled line trains (hash-sliced, the
        generalisation of §3.6's odd/even routing)."""
        return (line % self.config.sampling.modulus) % self.config.depth

    def observe(self, line: int, l2_miss: bool = True) -> int:
        """Process one L1-miss request; returns the pre-update subset."""
        stats = self.stats
        stats.references += 1
        subset_before = self._previous_subset
        cfg = self.config
        if cfg.sampling.is_sampled(line):
            stats.sampled_references += 1
            level = self._level_of(line)
            node = self._active_path()[level]
            affinity = self._mechanisms[node].process(line)
            if l2_miss or not cfg.l2_filtering:
                self._filters[node].update(affinity)
                stats.filter_updates += 1
        subset_after = self.current_subset()
        if subset_after != subset_before:
            stats.transitions += 1
        self._previous_subset = subset_after
        return subset_before

    def mechanisms(self) -> "list[SplitMechanism]":
        return [self._mechanisms[node] for node in sorted(self._mechanisms)]
