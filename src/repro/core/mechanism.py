"""The practical hardware implementation of the affinity algorithm
(paper Figure 2).

One :class:`SplitMechanism` is a 2-way working-set splitter: it owns an
R-window, the incremental window affinity ``A_R``, and the postponed-
update register ``Δ``; per-element affinities are stored as ``O_e``
values in an :class:`~repro.core.affinity_store.AffinityStore` (which
may be shared between mechanisms, as in 4-way splitting).

Per reference to element ``e`` (Figure 2):

1. read ``O_e`` from the affinity store (miss => force ``A_e = 0`` by
   taking ``O_e = Δ``, section 4.2);
2. ``A_e = O_e - Δ`` — the value consumed by the transition filter;
3. push ``(e, I_e = O_e - 2Δ)`` into the R-window; the evicted entry
   ``f`` yields ``O_f = I_f + 2Δ``, written back to the store;
4. ``A_R += O_e - O_f`` (equal to ``A_e - A_f``);
5. ``Δ += sign(A_R)``.

All quantities use saturating arithmetic at the paper's widths:
``bits[I_e] = bits[O_e] = affinity_bits`` (16 in the paper),
``bits[A_R] = affinity_bits + ceil(log2(|R|))``,
``bits[Δ] = affinity_bits + 1``.

Two deliberate spec resolutions, both documented in DESIGN.md:

* **Sign timing.** The paper writes ``Δ(t+1) = Δ(t) + sign(A_R(t))``
  but its Figure 2 computes ``A_R(t+1)`` in the same step; whether the
  referenced element is counted in the window for its own update is
  ambiguous.  We use the *post-insertion* window affinity, which
  matches the positive-feedback narrative of section 3.2 (synchronous
  elements reinforce each other only if counted together) and makes the
  mechanism agree exactly with Definition 1.
* **``A_R`` drift.** Read literally, the Figure 2 recurrence
  ``A_R += O_e - O_f`` tracks the sum of the *I-values* in the window;
  the true window affinity of Definition 1 is that plus ``|R| * Δ``.
  The default (``track_true_window_affinity=True``) adds the
  ``|R| * sign`` term each step so the register equals the exact
  ``Σ A_e`` of Definition 1 — this mode is property-tested against
  :class:`repro.core.affinity.ReferenceAffinitySplitter` **and is the
  one that reproduces the paper's numbers**: on Circular(4000) with
  ``|R| = 100`` it converges to the optimal 2-piece split with one
  transition every 2000 references, exactly as in Figure 3, whereas
  the literal register converges to a fragmented ~40-piece split at
  ~1/100.  The literal register is kept as an ablation
  (``track_true_window_affinity=False``).
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from typing import NamedTuple, Optional

from repro.common.saturating import SaturatingCounter, saturate, sign
from repro.core.affinity_store import AffinityStore, UnboundedAffinityStore


class RWindowEntry(NamedTuple):
    """One R-window slot: an element and its frozen ``I_e``."""

    line: int
    i_value: int


class SplitMechanism:
    """2-way splitting mechanism: R-window + ``A_R`` + ``Δ`` (Figure 2)."""

    __slots__ = (
        "window_size",
        "store",
        "affinity_bits",
        "lru_window",
        "track_true_window_affinity",
        "name",
        "probe",
        "_rollover_mark",
        "window_affinity",
        "delta",
        "references",
        "_fifo",
        "_lru",
    )

    def __init__(
        self,
        window_size: int,
        store: AffinityStore,
        affinity_bits: int = 16,
        lru_window: bool = False,
        track_true_window_affinity: bool = True,
        name: str = "R",
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        self.window_size = window_size
        self.store = store
        self.affinity_bits = affinity_bits
        self.lru_window = lru_window
        self.track_true_window_affinity = track_true_window_affinity
        self.name = name
        #: nil-by-default telemetry hook (:mod:`repro.obs.probe`);
        #: reports a ``window.rollover`` event each full ``|R|`` turns.
        self.probe = None
        self._rollover_mark = 0
        ar_bits = affinity_bits + max(1, math.ceil(math.log2(window_size)))
        if track_true_window_affinity:
            # The exact Σ A_e needs headroom for the |R|*sign drift.
            ar_bits += 16
        self.window_affinity = SaturatingCounter(ar_bits)
        self.delta = SaturatingCounter(affinity_bits + 1)
        self.references = 0
        # FIFO window: deque of RWindowEntry (duplicates allowed).
        # LRU window: ordered dict line -> I_e (distinct elements).
        self._fifo: "deque[RWindowEntry]" = deque()
        self._lru: "OrderedDict[int, int]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._lru) if self.lru_window else len(self._fifo)

    def window_lines(self) -> "list[int]":
        """Window contents, oldest first."""
        if self.lru_window:
            return list(self._lru)
        return [entry.line for entry in self._fifo]

    def _saturate(self, value: int) -> int:
        return saturate(value, self.affinity_bits)

    def _read_o(self, line: int) -> int:
        o_value = self.store.read(line)
        if o_value is None:
            # Affinity-cache miss: force A_e = 0 by taking O_e = Δ
            # (paper section 4.2).  This is also the correct initial
            # condition A_e(t_e) = 0 of Definition 1.
            return self._saturate(self.delta.value)
        return o_value

    def process(self, line: int) -> int:
        """Process one reference; return ``A_e`` (the filter's input)."""
        self.references += 1
        delta = self.delta.value
        if self.lru_window and line in self._lru:
            a_e = self._saturate(self._lru[line] + delta)
            self._lru.move_to_end(line)
            self._advance(window_population=len(self._lru))
            return a_e
        o_e = self._read_o(line)
        a_e = self._saturate(o_e - delta)
        i_e = self._saturate(o_e - 2 * delta)
        o_f: Optional[int] = None
        if self.lru_window:
            self._lru[line] = i_e
            if len(self._lru) > self.window_size:
                _evicted, i_f = self._lru.popitem(last=False)
                o_f = self._saturate(i_f + 2 * delta)
                self.store.write(_evicted, o_f)
            population = len(self._lru)
        else:
            self._fifo.append(RWindowEntry(line, i_e))
            if len(self._fifo) > self.window_size:
                evicted = self._fifo.popleft()
                o_f = self._saturate(evicted.i_value + 2 * delta)
                self.store.write(evicted.line, o_f)
            population = len(self._fifo)
        if o_f is None:
            self.window_affinity.add(a_e)  # window still filling
        else:
            self.window_affinity.add(o_e - o_f)
        self._advance(window_population=population)
        probe = self.probe
        if probe is not None and self.references - self._rollover_mark >= self.window_size:
            self._rollover_mark = self.references
            probe.on_window_rollover(self.name, self.window_size, self.references)
        return a_e

    def _advance(self, window_population: int) -> None:
        """Step ``Δ`` (and, in exact mode, the ``|R|*sign`` drift)."""
        step = self.window_affinity.sign_value
        self.delta.add(step)
        if self.track_true_window_affinity:
            self.window_affinity.add(window_population * step)

    def process_many(self, lines) -> "list[int]":
        """Batched :meth:`process`; returns the ``A_e`` values in order.

        Bit-identical to the per-line loop.  Falls back to it for LRU
        windows, subclasses, or when a probe is attached (rollover
        events must fire at exact reference counts); the FIFO fast path
        keeps ``Δ`` and ``A_R`` in locals and, for the unbounded store,
        inlines the dictionary lookups.
        """
        if (
            self.lru_window
            or self.probe is not None
            or type(self) is not SplitMechanism
        ):
            return [self.process(line) for line in lines]
        window_size = self.window_size
        lo = -(1 << (self.affinity_bits - 1))
        hi = (1 << (self.affinity_bits - 1)) - 1
        delta_counter = self.delta
        d_lo = delta_counter._lo
        d_hi = delta_counter._hi
        d_value = delta_counter._value
        wa_counter = self.window_affinity
        w_lo = wa_counter._lo
        w_hi = wa_counter._hi
        w_value = wa_counter._value
        track = self.track_true_window_affinity
        fifo = self._fifo
        append = fifo.append
        popleft = fifo.popleft
        make_entry = RWindowEntry
        store = self.store
        unbounded = type(store) is UnboundedAffinityStore
        if unbounded:
            values = store._values
            get = values.get
            s_reads = s_misses = s_writes = 0
        else:
            store_read = store.read
            store_write = store.write
        out: "list[int]" = []
        out_append = out.append
        n = 0
        for line in lines:
            n += 1
            delta = d_value
            if unbounded:
                s_reads += 1
                o_e = get(line)
                if o_e is None:
                    s_misses += 1
                    o_e = lo if delta < lo else hi if delta > hi else delta
            else:
                o_e = store_read(line)
                if o_e is None:
                    o_e = lo if delta < lo else hi if delta > hi else delta
            value = o_e - delta
            a_e = lo if value < lo else hi if value > hi else value
            value = o_e - 2 * delta
            i_e = lo if value < lo else hi if value > hi else value
            append(make_entry(line, i_e))
            if len(fifo) > window_size:
                evicted = popleft()
                value = evicted[1] + 2 * delta
                o_f = lo if value < lo else hi if value > hi else value
                if unbounded:
                    s_writes += 1
                    values[evicted[0]] = o_f
                else:
                    store_write(evicted[0], o_f)
                value = w_value + (o_e - o_f)
            else:
                value = w_value + a_e  # window still filling
            w_value = w_lo if value < w_lo else w_hi if value > w_hi else value
            step = 1 if w_value >= 0 else -1
            value = d_value + step
            d_value = d_lo if value < d_lo else d_hi if value > d_hi else value
            if track:
                value = w_value + len(fifo) * step
                w_value = (
                    w_lo if value < w_lo else w_hi if value > w_hi else value
                )
            out_append(a_e)
        delta_counter._value = d_value
        wa_counter._value = w_value
        self.references += n
        if unbounded:
            store.reads += s_reads
            store.misses += s_misses
            store.writes += s_writes
        return out

    def affinity_of(self, line: int) -> Optional[int]:
        """Current ``A_e`` of ``line``, or ``None`` if unknown.

        For a line in the window (most recent entry wins, FIFO mode),
        ``A_e = I_e + Δ``; otherwise ``A_e = O_e - Δ`` from the store.
        """
        delta = self.delta.value
        if self.lru_window:
            if line in self._lru:
                return self._saturate(self._lru[line] + delta)
        else:
            for entry in reversed(self._fifo):
                if entry.line == line:
                    return self._saturate(entry.i_value + delta)
        o_value = self.store.read(line)
        if o_value is None:
            return None
        return self._saturate(o_value - delta)
