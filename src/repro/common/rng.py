"""Deterministic random-number-generator construction.

Every stochastic component in the library (synthetic traces, Olden input
builders, sweep samplers) takes an explicit seed and builds its generator
through these helpers, so that experiments are reproducible run-to-run
and sub-streams are independent.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` for OS entropy.  Centralising this lets every component
    accept the same flexible ``seed`` argument.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def mix_seed(*parts: "int | str") -> int:
    """Derive one 63-bit seed from several parts, deterministically.

    Built on SHA-256 (not ``hash()``) so the result is identical across
    processes and interpreter runs regardless of ``PYTHONHASHSEED`` —
    the runtime's job hashes and the ``--seed`` plumbing both rely on
    reseeding being reproducible in worker processes.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest()[:8], "big") >> 1


def split_rng(rng: np.random.Generator, count: int) -> "list[np.random.Generator]":
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
