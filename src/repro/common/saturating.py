"""Saturating fixed-width signed integer arithmetic.

The affinity algorithm (paper section 3.2, "Limited number of affinity
bits") stores affinities in 16-bit registers and therefore "works with
saturating addition".  The transition filter (section 3.4) is an
"up-down saturating counter".  This module provides the two primitives
both mechanisms are built from:

* :func:`saturate` / :class:`SaturatingInt` -- a signed value clamped to
  the representable range of a given bit width,
* :class:`SaturatingCounter` -- a mutable saturating accumulator with the
  ``sign`` convention of the paper (``sign(0) == +1``).
"""

from __future__ import annotations

from dataclasses import dataclass


def sign(x: int) -> int:
    """The paper's sign function: ``+1`` if ``x >= 0`` else ``-1``.

    Note that, unlike the mathematical signum, ``sign(0)`` is ``+1``
    (paper section 3.2, definition of the affinity algorithm).
    """
    return 1 if x >= 0 else -1


def saturating_bounds(bits: int) -> tuple[int, int]:
    """Return ``(minimum, maximum)`` for a signed ``bits``-wide integer."""
    if bits < 2:
        raise ValueError(f"need at least 2 bits for a signed value, got {bits}")
    top = 1 << (bits - 1)
    return -top, top - 1


def saturate(x: int, bits: int) -> int:
    """Clamp ``x`` to the signed ``bits``-wide representable range."""
    lo, hi = saturating_bounds(bits)
    if x < lo:
        return lo
    if x > hi:
        return hi
    return x


@dataclass(frozen=True)
class SaturatingInt:
    """An immutable signed integer with saturating addition.

    Instances behave like small hardware registers: adding past the
    representable range sticks at the extreme instead of wrapping.

    >>> a = SaturatingInt(32767, bits=16)
    >>> (a + 10).value
    32767
    """

    value: int
    bits: int = 16

    def __post_init__(self) -> None:
        lo, hi = saturating_bounds(self.bits)
        if not lo <= self.value <= hi:
            raise ValueError(
                f"value {self.value} outside signed {self.bits}-bit range "
                f"[{lo}, {hi}]"
            )

    @property
    def minimum(self) -> int:
        return saturating_bounds(self.bits)[0]

    @property
    def maximum(self) -> int:
        return saturating_bounds(self.bits)[1]

    def __add__(self, other: "int | SaturatingInt") -> "SaturatingInt":
        amount = other.value if isinstance(other, SaturatingInt) else other
        return SaturatingInt(saturate(self.value + amount, self.bits), self.bits)

    def __sub__(self, other: "int | SaturatingInt") -> "SaturatingInt":
        amount = other.value if isinstance(other, SaturatingInt) else other
        return SaturatingInt(saturate(self.value - amount, self.bits), self.bits)

    def __neg__(self) -> "SaturatingInt":
        return SaturatingInt(saturate(-self.value, self.bits), self.bits)

    def __int__(self) -> int:
        return self.value

    @property
    def sign(self) -> int:
        """Sign under the paper's convention (``sign(0) == +1``)."""
        return sign(self.value)


class SaturatingCounter:
    """A mutable up/down saturating counter of a given bit width.

    This is the hardware structure behind the transition filter
    (paper section 3.4): additions clamp at the extremes, and the
    consumer only ever observes :attr:`sign_value`.
    """

    __slots__ = ("_bits", "_lo", "_hi", "_value")

    def __init__(self, bits: int, initial: int = 0) -> None:
        self._bits = bits
        self._lo, self._hi = saturating_bounds(bits)
        if not self._lo <= initial <= self._hi:
            raise ValueError(f"initial value {initial} outside {bits}-bit range")
        self._value = initial

    @property
    def bits(self) -> int:
        return self._bits

    @property
    def value(self) -> int:
        return self._value

    @property
    def minimum(self) -> int:
        return self._lo

    @property
    def maximum(self) -> int:
        return self._hi

    @property
    def sign_value(self) -> int:
        """Sign under the paper's convention (``sign(0) == +1``)."""
        return sign(self._value)

    def add(self, amount: int) -> int:
        """Saturating add; returns the new value."""
        v = self._value + amount
        if v < self._lo:
            v = self._lo
        elif v > self._hi:
            v = self._hi
        self._value = v
        return v

    def reset(self, value: int = 0) -> None:
        if not self._lo <= value <= self._hi:
            raise ValueError(f"value {value} outside {self._bits}-bit range")
        self._value = value

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self._bits}, value={self._value})"
