"""Fenwick (binary indexed) tree over a fixed-size integer array.

Used by the Mattson stack-distance profiler
(:mod:`repro.caches.lru_stack`): stack distances are computed as "number
of *distinct* lines referenced since the previous reference to this
line", which reduces to a prefix-sum query over a 0/1 array indexed by
reference time.  A Fenwick tree gives O(log n) update and query.
"""

from __future__ import annotations


class FenwickTree:
    """Prefix-sum tree over ``size`` integer-valued slots (all zero initially).

    Indices are 0-based externally and converted to the classic 1-based
    layout internally.
    """

    __slots__ = ("_size", "_tree")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)

    @property
    def size(self) -> int:
        return self._size

    def add(self, index: int, amount: int = 1) -> None:
        """Add ``amount`` to slot ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += amount
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``[0, index]``; ``index = -1`` yields 0."""
        if index >= self._size:
            raise IndexError(f"index {index} out of range (size {self._size})")
        i = index + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots ``[lo, hi]`` inclusive (empty if ``lo > hi``)."""
        if lo > hi:
            return 0
        left = self.prefix_sum(lo - 1) if lo > 0 else 0
        return self.prefix_sum(hi) - left

    def total(self) -> int:
        """Sum of every slot."""
        if self._size == 0:
            return 0
        return self.prefix_sum(self._size - 1)
