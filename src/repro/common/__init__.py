"""Shared low-level utilities used by every substrate.

Exports the saturating fixed-width integer arithmetic the hardware model
relies on (:mod:`repro.common.saturating`), a Fenwick tree used by the
Mattson stack-distance profiler (:mod:`repro.common.fenwick`),
deterministic RNG construction helpers (:mod:`repro.common.rng`) and a
small text-table renderer used by the experiment reports
(:mod:`repro.common.tables`).
"""

from repro.common.fenwick import FenwickTree
from repro.common.rng import make_rng, split_rng
from repro.common.saturating import (
    SaturatingCounter,
    SaturatingInt,
    saturate,
    sign,
)
from repro.common.tables import TextTable, format_count, format_per_event

__all__ = [
    "FenwickTree",
    "SaturatingCounter",
    "SaturatingInt",
    "TextTable",
    "format_count",
    "format_per_event",
    "make_rng",
    "saturate",
    "sign",
    "split_rng",
]
