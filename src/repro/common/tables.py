"""Plain-text table rendering for experiment reports.

The paper reports results as tables (Tables 1 and 2) and as per-event
frequencies ("number of instructions per event, higher is better").
:class:`TextTable` renders aligned monospace tables; the ``format_*``
helpers reproduce the paper's number formats (e.g. ``2.2 x 10^6`` for
migration counts).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def format_count(value: float) -> str:
    """Format a large count the way Table 2 does, e.g. ``2.2e6``.

    Values below 10^4 are printed exactly; larger values as mantissa and
    power of ten with one decimal digit.
    """
    if value < 0:
        raise ValueError(f"counts are non-negative, got {value}")
    if value < 10_000:
        return str(int(round(value)))
    exponent = int(math.floor(math.log10(value)))
    mantissa = value / 10**exponent
    return f"{mantissa:.1f}e{exponent}"


def format_per_event(instructions: int, events: int) -> str:
    """Instructions-per-event cell: ``'-'`` when the event never occurred."""
    if events <= 0:
        return "-"
    return format_count(instructions / events)


class TextTable:
    """An aligned monospace table with a header row.

    >>> t = TextTable(["benchmark", "L2 miss"])
    >>> t.add_row(["art", "11"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    benchmark | L2 miss
    ----------+--------
    art       | 11
    """

    def __init__(self, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self._columns = [str(c) for c in columns]
        self._rows: list[list[str]] = []

    @property
    def columns(self) -> "list[str]":
        return list(self._columns)

    @property
    def rows(self) -> "list[list[str]]":
        return [list(r) for r in self._rows]

    def add_row(self, cells: Iterable[object]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self._columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self._columns)} columns"
            )
        self._rows.append(row)

    def render(self) -> str:
        widths = [len(c) for c in self._columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self._columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header.rstrip(), rule]
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
