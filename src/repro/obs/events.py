"""Structured simulation events.

A :class:`SimEvent` is one thing that happened at reference-clock time
``t`` (the running count of trace references — the simulator's only
notion of time).  Event kinds cover the dynamic behaviour the paper's
tables average away:

* ``migration.start`` / ``migration.commit`` — the active core moving
  (section 2.2's two-phase hand-off; in this model the commit follows
  the start immediately, carrying the analytic penalty estimate);
* ``filter.flip`` — a transition filter's sign change (section 3.4
  hysteresis in action);
* ``window.rollover`` — a split mechanism's R-window turning over
  completely (one full ``|R|`` of references since the last rollover);
* ``l2.eviction_storm`` — evictions clustering in a short reference
  window (capacity thrash on the active L2);
* ``bus.saturation`` — measured update-bus bytes per reference
  crossing the configured ceiling;
* ``controller.transition`` — the controller's subset decision moving
  (the quantity behind Figures 4-5);
* ``runtime.*`` — scheduler job lifecycle events bridged in from
  :mod:`repro.runtime.events` so one stream covers scheduler and
  simulator (see :mod:`repro.obs.bridge`).

:class:`EventLog` collects events with a hard cap so a pathological run
(e.g. an unsplittable workload flipping filters every few references)
cannot exhaust memory; drops are counted, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MIGRATION_START = "migration.start"
MIGRATION_COMMIT = "migration.commit"
FILTER_FLIP = "filter.flip"
WINDOW_ROLLOVER = "window.rollover"
L2_EVICTION_STORM = "l2.eviction_storm"
BUS_SATURATION = "bus.saturation"
CONTROLLER_TRANSITION = "controller.transition"

#: simulator-side event kinds (runtime.* kinds come from the bridge)
SIM_EVENT_KINDS = (
    MIGRATION_START,
    MIGRATION_COMMIT,
    FILTER_FLIP,
    WINDOW_ROLLOVER,
    L2_EVICTION_STORM,
    BUS_SATURATION,
    CONTROLLER_TRANSITION,
)


@dataclass(frozen=True)
class SimEvent:
    """One timestamped simulation event.

    ``t`` is the reference-clock time (trace references processed so
    far); ``seq`` is a per-log sequence number that makes the order of
    same-``t`` events reconstructible after a round-trip through JSON.
    """

    kind: str
    t: int
    seq: int = 0
    args: "dict[str, object]" = field(default_factory=dict)

    def to_dict(self) -> "dict[str, object]":
        return {"kind": self.kind, "t": self.t, "seq": self.seq, "args": self.args}

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "SimEvent":
        return cls(
            kind=str(data["kind"]),
            t=int(data["t"]),
            seq=int(data.get("seq", 0)),
            args=dict(data.get("args", {})),
        )


class EventLog:
    """Bounded in-memory event collector.

    ``max_events`` caps memory; once full, further events are counted
    in :attr:`dropped` instead of stored (the counters and histograms
    in the metrics registry keep aggregating regardless, so nothing is
    silently lost — only the per-event detail past the cap).
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: "list[SimEvent]" = []
        self.dropped = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, kind: str, t: int, **args: object) -> None:
        self._seq += 1
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(SimEvent(kind=kind, t=t, seq=self._seq, args=args))

    def kinds(self) -> "dict[str, int]":
        """Event count per kind (insertion-ordered by first occurrence)."""
        counts: "dict[str, int]" = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def of_kind(self, kind: str) -> "list[SimEvent]":
        return [event for event in self.events if event.kind == kind]
