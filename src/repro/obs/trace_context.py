"""Cross-process trace context: every job becomes a causal span tree.

A sweep mints one root :class:`TraceContext` (``trace_id`` + root
``span_id``); each job's span id is *derived* from the trace id and the
job's content hash with :func:`span_for_job`, so the service broker,
the scheduler, and a spawned worker independently agree on the same
span id without coordinating — the id is a pure function of what they
all already know.

Propagation uses two channels:

* **process-level root** — held in a module global and mirrored into
  the ``REPRO_TRACE`` environment variable, so spawned/forked children
  inherit the sweep's trace without any payload changes (job payloads
  are content-hashed; a trace id in ``params`` would split the cache);
* **thread/worker activation** — :func:`activate` installs a context
  as the *current* one for this thread (the scheduler activates the
  job's context around execution; a worker process activates it on
  entry), so :func:`phase` spans started inside kernel code parent to
  the right job.

:func:`phase` is the kernel-side hook: a context manager that records
a named child span (wall-clock microseconds) into a bounded in-process
buffer, drained by :func:`write_phases` into ``phases.jsonl`` next to
the other obs artifacts.  :mod:`repro.obs.aggregate` stitches job
spans and phase spans into one merged Perfetto trace.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

#: environment variable carrying the sweep root context to children
TRACE_ENV = "REPRO_TRACE"

#: hard cap on buffered phase spans (drops are counted, never grown)
MAX_PHASES = 4096


@dataclass(frozen=True)
class TraceContext:
    """One span's identity inside a trace."""

    trace_id: str  #: 32 hex chars, shared by every span of one sweep
    span_id: str  #: 16 hex chars
    parent_span_id: "str | None" = None

    def to_dict(self) -> "dict[str, object]":
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_span_id=(
                str(data["parent_span_id"])
                if data.get("parent_span_id") is not None
                else None
            ),
        )


def _derive(*parts: str) -> str:
    return hashlib.sha256("/".join(parts).encode("utf-8")).hexdigest()[:16]


def mint_root(seed: "str | None" = None) -> TraceContext:
    """A new root context: random trace id (or derived from ``seed``
    for reproducible traces), root span derived from the trace id."""
    if seed is not None:
        trace_id = hashlib.sha256(seed.encode("utf-8")).hexdigest()[:32]
    else:
        trace_id = os.urandom(16).hex()
    return TraceContext(trace_id=trace_id, span_id=_derive(trace_id, "sweep"))


def span_for_job(trace_id: str, job_hash: str) -> str:
    """The job's span id — deterministic, so every process that knows
    the trace id and the job's content hash derives the same id."""
    return _derive(trace_id, "job", job_hash)


def job_context(root: TraceContext, job_hash: str) -> TraceContext:
    """The job's context as a child span of the sweep root."""
    return TraceContext(
        trace_id=root.trace_id,
        span_id=span_for_job(root.trace_id, job_hash),
        parent_span_id=root.span_id,
    )


# -- process root + per-thread activation -------------------------------

_lock = threading.Lock()
_root: "TraceContext | None" = None
_active = threading.local()
_phases: "list[dict[str, object]]" = []
_phase_seq = 0
_phases_dropped = 0


def _root_context() -> "TraceContext | None":
    """The process root: the module global, else the inherited env."""
    global _root
    if _root is not None:
        return _root
    raw = os.environ.get(TRACE_ENV)
    if raw:
        try:
            with _lock:
                if _root is None:
                    _root = TraceContext.from_dict(json.loads(raw))
        except (ValueError, KeyError, TypeError):
            return None
    return _root


def set_root(ctx: TraceContext) -> None:
    """Install the process root and mirror it into the environment so
    spawned/forked children inherit the sweep's trace."""
    global _root
    with _lock:
        _root = ctx
    os.environ[TRACE_ENV] = json.dumps(ctx.to_dict(), sort_keys=True)


def current() -> "TraceContext | None":
    """This thread's active context, else the process root, else None."""
    ctx = getattr(_active, "ctx", None)
    if ctx is not None:
        return ctx
    return _root_context()


def ensure_current() -> TraceContext:
    """Like :func:`current`, minting and installing a root if absent."""
    ctx = current()
    if ctx is None:
        ctx = mint_root()
        set_root(ctx)
    return ctx


def activate(ctx: TraceContext, env: bool = False) -> "TraceContext | None":
    """Make ``ctx`` this thread's current context; returns the previous
    activation for :func:`restore`.  With ``env`` the context also
    becomes the process root (worker-process entry), so any process the
    worker itself spawns inherits it."""
    prev = getattr(_active, "ctx", None)
    _active.ctx = ctx
    if env:
        set_root(ctx)
    return prev


def restore(prev: "TraceContext | None") -> None:
    _active.ctx = prev


@contextmanager
def using(ctx: TraceContext):
    prev = activate(ctx)
    try:
        yield ctx
    finally:
        restore(prev)


def reset() -> None:
    """Forget all trace state (tests)."""
    global _root, _phase_seq, _phases_dropped
    with _lock:
        _root = None
        _phases.clear()
        _phase_seq = 0
        _phases_dropped = 0
    _active.ctx = None
    os.environ.pop(TRACE_ENV, None)


# -- phase spans ---------------------------------------------------------


@contextmanager
def phase(name: str, **args: object):
    """Record a named child span of the current context.

    Used by kernel code (L1-filter build/load, replay passes) — the
    span parents to whatever job context the scheduler/worker
    activated, lands in the bounded in-process buffer, and reaches
    disk when the job writes its ``phases.jsonl``.
    """
    global _phase_seq, _phases_dropped
    ctx = ensure_current()
    with _lock:
        _phase_seq += 1
        seq = _phase_seq
    span_id = _derive(ctx.span_id, "phase", name, str(seq))
    start = time.time()
    try:
        yield
    finally:
        record: "dict[str, object]" = {
            "name": name,
            "trace_id": ctx.trace_id,
            "span_id": span_id,
            "parent_span_id": ctx.span_id,
            "start_us": int(start * 1_000_000),
            "dur_us": max(1, int((time.time() - start) * 1_000_000)),
            "pid": os.getpid(),
        }
        if args:
            record["args"] = dict(args)
        with _lock:
            if len(_phases) < MAX_PHASES:
                _phases.append(record)
            else:
                _phases_dropped += 1


def drain_phases() -> "list[dict[str, object]]":
    """Take (and clear) every buffered phase record."""
    with _lock:
        records = list(_phases)
        _phases.clear()
    return records


def phases_dropped() -> int:
    return _phases_dropped


def write_phases(path: "str | os.PathLike") -> int:
    """Append all buffered phase records to a JSONL file; returns how
    many were written.  One ``write`` per drain keeps concurrent
    workers' appends line-atomic on POSIX."""
    records = drain_phases()
    if not records:
        return 0
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = "".join(
        json.dumps(record, sort_keys=True) + "\n" for record in records
    )
    with path.open("a", encoding="utf-8") as handle:
        handle.write(blob)
        handle.flush()
    return len(records)


def load_phases(path: "str | os.PathLike") -> "list[dict[str, object]]":
    """Read a ``phases.jsonl`` file, skipping torn lines."""
    from pathlib import Path

    records: "list[dict[str, object]]" = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(data, dict) and "span_id" in data:
            records.append(data)
    return records
