"""``python -m repro.obs watch DIR`` — a live terminal view of a sweep.

Tails the run logs in an ``--obs`` directory (``runtime.jsonl`` from a
local scheduler, ``service-runtime.jsonl`` from a service instance) and
redraws a per-job status table every ``--interval`` seconds: lifecycle
state, attempts/retries, queue wait, run time, and replay throughput.
Purely read-only — it re-reads the append-only JSONL files, so it can
watch a sweep owned by any other process (or a finished one).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.common.tables import TextTable
from repro.obs.aggregate import JobSpan, build_job_spans, load_runlog

#: run logs a sweep directory may accumulate, in render order
RUNLOG_NAMES = ("runtime.jsonl", "service-runtime.jsonl")

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_ms(us: "int | None") -> str:
    return f"{us / 1000:,.0f}" if us is not None else "-"


def _span_row(span: JobSpan) -> "list[str]":
    data = span.to_dict()
    status = span.status or ("running" if span.started_us else "queued")
    refs_per_sec = "-"
    if span.references and data["execute_us"]:
        refs_per_sec = f"{span.references / (data['execute_us'] / 1e6):,.0f}"
    return [
        span.label,
        status,
        f"{span.attempts}" + (f" (+{span.retries} retry)" if span.retries else ""),
        _fmt_ms(data["queue_wait_us"]),
        _fmt_ms(data["execute_us"]),
        refs_per_sec,
    ]


def render_status(directory: "str | Path") -> str:
    """One frame: the per-job table plus a totals line."""
    directory = Path(directory)
    events = []
    seen = []
    for name in RUNLOG_NAMES:
        runlog = directory / name
        if runlog.is_file():
            seen.append(name)
            events.extend(load_runlog(runlog))
    if not events:
        return f"no run logs ({', '.join(RUNLOG_NAMES)}) in {directory}"
    spans = build_job_spans(events)
    table = TextTable(
        ["job", "status", "attempts", "wait ms", "run ms", "refs/s"]
    )
    for span in spans:
        table.add_row(_span_row(span))
    done = sum(1 for s in spans if s.status in ("finished", "cache-hit"))
    failed = sum(1 for s in spans if s.status == "failed")
    running = sum(
        1 for s in spans if s.status is None and s.started_us is not None
    )
    totals = (
        f"{len(spans)} jobs: {done} done, {running} running, "
        f"{failed} failed, {sum(s.retries for s in spans)} retries "
        f"[{', '.join(seen)}]"
    )
    return table.render() + "\n" + totals


def watch(
    directory: "str | Path",
    interval: float = 2.0,
    once: bool = False,
    stream=None,
) -> int:
    """Redraw ``render_status`` until interrupted (or once)."""
    stream = stream if stream is not None else sys.stdout
    while True:
        frame = render_status(directory)
        if once:
            stream.write(frame + "\n")
            return 0
        stream.write(_CLEAR + frame + "\n")
        stream.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def add_watch_parser(sub) -> None:
    """Wire the ``watch`` subcommand into the ``repro.obs`` CLI."""
    parser = sub.add_parser(
        "watch", help="live terminal view of a sweep's run logs"
    )
    parser.add_argument("directory", help="the --obs output directory")
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between redraws (default 2)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clear)",
    )
    parser.set_defaults(
        handler=lambda args: watch(
            args.directory, interval=args.interval, once=args.once
        )
    )
