"""repro.obs — simulator telemetry.

The paper's argument is about *dynamic* behaviour — migration bursts,
transition-filter hysteresis, per-core cache occupancy — which
end-of-run counters average away.  This package adds the time axis:

* :mod:`repro.obs.metrics` — zero-dependency counters, gauges,
  HDR-style histograms and bounded rolling time-series;
* :mod:`repro.obs.events` — the structured simulation event stream
  (migration start/commit, filter flips, R-window rollovers, L2
  eviction storms, update-bus saturation, controller transitions);
* :mod:`repro.obs.probe` — :class:`~repro.obs.probe.SimProbe`, the
  object instrumented hot paths report to.  Probes are **nil by
  default**: every hook in the simulator is guarded by one
  ``if probe is not None`` attribute check, so uninstrumented runs pay
  effectively nothing (``benchmarks/obs_overhead.py`` verifies);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (load a run in
  Perfetto and watch execution hop between cores), JSONL, and terminal
  summaries;
* :mod:`repro.obs.bridge` — merges the runtime's scheduler
  :class:`~repro.runtime.events.JobEvent` stream into the same sink;
* :mod:`repro.obs.trace_context` — cross-process span correlation:
  one trace id per sweep, deterministic per-job spans propagated into
  worker processes, kernel phase spans;
* :mod:`repro.obs.aggregate` — stitches per-worker artifacts into one
  merged Perfetto trace plus a machine-readable sweep summary
  (per-stage latency histograms, span-linkage check);
* :mod:`repro.obs.trajectory` — the perf-history regression gate over
  committed ``BENCH_*.json`` baselines;
* :mod:`repro.obs.watch` — a live terminal view of a running sweep.

Command line: ``python -m repro.obs {summarize,export,watch,
trajectory}``; producer side: ``python -m repro.experiments.run_all
--obs <dir>``.
"""

from repro.obs.aggregate import (
    SweepArtifacts,
    build_sweep_trace,
    collect_artifacts,
    sweep_summary,
    write_aggregate,
)
from repro.obs.events import EventLog, SimEvent
from repro.obs.export import (
    chrome_trace,
    merge_trace_documents,
    save_report,
    summarize_reports,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.probe import ObsReport, SimProbe
from repro.obs.trace_context import TraceContext, mint_root, span_for_job

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsReport",
    "SimEvent",
    "SimProbe",
    "SweepArtifacts",
    "TimeSeries",
    "TraceContext",
    "build_sweep_trace",
    "chrome_trace",
    "collect_artifacts",
    "merge_trace_documents",
    "mint_root",
    "save_report",
    "span_for_job",
    "summarize_reports",
    "sweep_summary",
    "write_aggregate",
]
