"""The simulation probe: where instrumented hot paths report to.

Instrumented components (:class:`~repro.multicore.chip.MultiCoreChip`,
:class:`~repro.core.controller.MigrationController`, the caches) carry
a ``probe`` attribute that is ``None`` by default; every hot-path hook
is guarded by a single ``if probe is not None`` attribute check, so a
run without observability pays one attribute load per hook and nothing
else (``benchmarks/obs_overhead.py`` measures this).

When a :class:`SimProbe` is attached it maintains:

* a **reference clock** — ``now`` is the number of trace references
  processed so far, advanced by whichever component reports the
  largest local count (the chip when present, the controller when used
  standalone);
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters,
  histograms, and rolling time-series (sampled every
  ``sample_interval`` references);
* an :class:`~repro.obs.events.EventLog` of structured
  :class:`~repro.obs.events.SimEvent` records — migrations, filter
  flips, R-window rollovers, L2 eviction storms, update-bus
  saturation, controller transitions.

``probe.report()`` snapshots everything into an :class:`ObsReport`,
which the exporters in :mod:`repro.obs.export` turn into Chrome
trace-event JSON, JSONL, and terminal summaries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs import events as ev
from repro.obs.events import EventLog, SimEvent
from repro.obs.metrics import MetricsRegistry


@dataclass
class ObsReport:
    """One probe's snapshot: metadata + metrics + events."""

    meta: "dict[str, object]" = field(default_factory=dict)
    metrics: "dict[str, object]" = field(default_factory=dict)
    events: "list[SimEvent]" = field(default_factory=list)
    dropped_events: int = 0

    def to_dict(self) -> "dict[str, object]":
        return {
            "meta": self.meta,
            "metrics": self.metrics,
            "dropped_events": self.dropped_events,
            "event_kinds": _kind_counts(self.events),
        }


def _kind_counts(events: "list[SimEvent]") -> "dict[str, int]":
    counts: "dict[str, int]" = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


class SimProbe:
    """Collects telemetry from instrumented simulator components.

    Parameters tune cost/detail:

    * ``sample_interval`` — references between time-series samples;
    * ``max_events`` — hard cap on stored events (drops are counted);
    * ``storm_window`` / ``storm_threshold`` — an ``l2.eviction_storm``
      event fires when ``storm_threshold`` L2 evictions land within
      ``storm_window`` references;
    * ``bus_saturation_bytes_per_ref`` — a ``bus.saturation`` event
      fires when measured update-bus traffic first exceeds this many
      bytes per reference over a sample interval (default: one cache
      line per reference, i.e. the mirror-fill worst case).
    """

    def __init__(
        self,
        name: str = "sim",
        sample_interval: int = 1000,
        max_events: int = 100_000,
        storm_window: int = 256,
        storm_threshold: int = 16,
        bus_saturation_bytes_per_ref: float = 64.0,
    ) -> None:
        if sample_interval < 1:
            raise ValueError(
                f"sample_interval must be >= 1, got {sample_interval}"
            )
        self.name = name
        self.sample_interval = sample_interval
        self.storm_window = storm_window
        self.storm_threshold = storm_threshold
        self.bus_saturation_bytes_per_ref = bus_saturation_bytes_per_ref
        self.registry = MetricsRegistry()
        self.log = EventLog(max_events)
        self.now = 0
        self._chip = None
        self._hierarchy = None
        self._next_sample = sample_interval
        self._last_migration_t: "int | None" = None
        self._eviction_times: "deque[int]" = deque()
        self._bus_saturated = False
        self._last_bus_bytes = 0
        self._last_l2_misses = 0
        self._last_l1_misses = 0
        self._migration_penalty_cycles: "float | None" = None

    # -- wiring ---------------------------------------------------------

    def bind_chip(self, chip) -> None:
        """Called by :class:`~repro.multicore.chip.MultiCoreChip` when
        the probe is attached; sampling snapshots this chip's stats."""
        self._chip = chip

    def bind_hierarchy(self, hierarchy) -> None:
        """Same, for the single-core baseline hierarchy."""
        self._hierarchy = hierarchy

    # -- clock ----------------------------------------------------------

    def _advance(self, t: int) -> None:
        if t > self.now:
            self.now = t

    # -- hot-path hooks -------------------------------------------------

    def on_access(self, t: int) -> None:
        """One trace reference entered the chip/hierarchy (the clock)."""
        self._advance(t)
        if t >= self._next_sample:
            self._next_sample = t - (t % self.sample_interval) + self.sample_interval
            self._sample(t)

    def on_migration(self, from_core: int, to_core: int) -> None:
        """The active core moved (reported by the migration engine)."""
        t = self.now
        if self._migration_penalty_cycles is None:
            from repro.multicore.migration import MigrationPenaltyModel

            self._migration_penalty_cycles = MigrationPenaltyModel().migration_cycles()
        self.registry.counter("migrations").inc()
        if self._last_migration_t is not None:
            self.registry.histogram("migration.gap_refs").record(
                t - self._last_migration_t
            )
        self._last_migration_t = t
        self.log.emit(
            ev.MIGRATION_START, t, from_core=from_core, to_core=to_core
        )
        self.log.emit(
            ev.MIGRATION_COMMIT,
            t,
            from_core=from_core,
            to_core=to_core,
            penalty_cycles=self._migration_penalty_cycles,
        )

    def on_filter_flip(self, name: str, sign: int, value: int) -> None:
        """A transition filter's sign changed."""
        self.registry.counter("filter.flips").inc()
        self.log.emit(
            ev.FILTER_FLIP, self.now, filter=name, sign=sign, value=value
        )

    def on_window_rollover(
        self, name: str, window_size: int, references: int
    ) -> None:
        """A split mechanism's R-window turned over completely."""
        self._advance(references)
        self.registry.counter("window.rollovers").inc()
        self.log.emit(
            ev.WINDOW_ROLLOVER,
            self.now,
            mechanism=name,
            window_size=window_size,
            references=references,
        )

    def on_transition(
        self, reference: int, subset_before: int, subset_after: int
    ) -> None:
        """The controller's subset decision moved."""
        self._advance(reference)
        self.registry.counter("controller.transitions").inc()
        self.log.emit(
            ev.CONTROLLER_TRANSITION,
            self.now,
            subset_before=subset_before,
            subset_after=subset_after,
        )

    def on_l2_eviction(self, core: int, line: int, dirty: bool) -> None:
        """An L2 evicted a line; clusters become storm events."""
        t = self.now
        self.registry.counter("l2.evictions").inc()
        times = self._eviction_times
        times.append(t)
        floor = t - self.storm_window
        while times and times[0] < floor:
            times.popleft()
        if len(times) >= self.storm_threshold:
            self.registry.counter("l2.eviction_storms").inc()
            self.registry.histogram("l2.storm_size").record(len(times))
            self.log.emit(
                ev.L2_EVICTION_STORM,
                t,
                core=core,
                evictions=len(times),
                window_refs=self.storm_window,
            )
            times.clear()  # one storm event per burst, not per eviction

    # -- periodic sampling ----------------------------------------------

    def _sample(self, t: int) -> None:
        registry = self.registry
        chip = self._chip
        if chip is not None:
            stats = chip.stats
            registry.series("chip.active_core").append(
                t, float(chip.engine.active_core)
            )
            l2_misses = stats.l2_misses
            registry.series("chip.l2_miss_rate").append(
                t, (l2_misses - self._last_l2_misses) / self.sample_interval
            )
            self._last_l2_misses = l2_misses
            l1_misses = stats.il1_misses + stats.dl1_misses
            registry.series("chip.l1_miss_rate").append(
                t, (l1_misses - self._last_l1_misses) / self.sample_interval
            )
            self._last_l1_misses = l1_misses
            registry.series("chip.migrations").append(
                t, float(stats.migrations)
            )
            bus_bytes = chip.bus_traffic.total_bytes
            bytes_per_ref = (
                bus_bytes - self._last_bus_bytes
            ) / self.sample_interval
            self._last_bus_bytes = bus_bytes
            registry.series("bus.bytes_per_ref").append(t, bytes_per_ref)
            saturated = bytes_per_ref > self.bus_saturation_bytes_per_ref
            if saturated and not self._bus_saturated:
                self.registry.counter("bus.saturation_episodes").inc()
                self.log.emit(
                    ev.BUS_SATURATION,
                    t,
                    bytes_per_ref=bytes_per_ref,
                    threshold=self.bus_saturation_bytes_per_ref,
                )
            self._bus_saturated = saturated
        hierarchy = self._hierarchy
        if hierarchy is not None:
            stats = hierarchy.stats
            registry.series("baseline.l2_miss_rate").append(
                t, (stats.l2_misses - self._last_l2_misses) / self.sample_interval
            )
            self._last_l2_misses = stats.l2_misses
            registry.series("baseline.l1_miss_rate").append(
                t, (stats.l1_misses - self._last_l1_misses) / self.sample_interval
            )
            self._last_l1_misses = stats.l1_misses

    # -- snapshots ------------------------------------------------------

    def report(self, **meta: object) -> ObsReport:
        """Snapshot the probe into a serialisable report."""
        info: "dict[str, object]" = {
            "probe": self.name,
            "references": self.now,
            "sample_interval": self.sample_interval,
        }
        chip = self._chip
        if chip is not None:
            info["num_cores"] = chip.config.num_cores
            info["chip_stats"] = chip.stats.to_dict()
        hierarchy = self._hierarchy
        if hierarchy is not None:
            info["hierarchy_stats"] = dict(vars(hierarchy.stats))
        # Stamp the active trace context (the job's span when the
        # scheduler/worker activated one) so per-job sim artifacts
        # correlate with the scheduler spans in a merged trace.
        from repro.obs import trace_context

        ctx = trace_context.current()
        if ctx is not None:
            info["trace_id"] = ctx.trace_id
            info["span_id"] = ctx.span_id
            info["parent_span_id"] = ctx.parent_span_id
        info.update(meta)
        return ObsReport(
            meta=info,
            metrics=self.registry.to_dict(),
            events=list(self.log.events),
            dropped_events=self.log.dropped,
        )
