"""Exporters: Chrome trace-event JSON, JSONL, and terminal summaries.

The Chrome ``trace_event`` exporter makes a run *visible*: load the
emitted ``*.trace.json`` in https://ui.perfetto.dev (or
``chrome://tracing``) and the chip appears as one process with one
thread row per core — execution hops between rows at every migration,
instant markers show filter flips, R-window rollovers, eviction storms
and bus saturation, and counter tracks plot the sampled time-series
(L2 miss rate, update-bus bytes/ref, active core).

Timestamps: the simulator's clock is the *reference count*; the
exporter writes one reference as one microsecond, so "1 ms" in the
viewer is 1000 trace references.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.common.tables import TextTable
from repro.obs import events as ev
from repro.obs.events import SimEvent
from repro.obs.probe import ObsReport

#: events that carry their own span semantics and are drawn as core spans
_SPAN_KINDS = (ev.MIGRATION_START, ev.MIGRATION_COMMIT)


def execution_spans(
    events: "Sequence[SimEvent]", total_refs: int, initial_core: int = 0
) -> "list[tuple[int, int, int]]":
    """Reconstruct ``(core, start, end)`` execution spans from the
    migration events (the commit is the hand-off point)."""
    spans: "list[tuple[int, int, int]]" = []
    core = initial_core
    start = 0
    for event in events:
        if event.kind != ev.MIGRATION_COMMIT:
            continue
        end = event.t
        spans.append((core, start, end))
        core = int(event.args.get("to_core", core))
        start = end
    spans.append((core, start, max(total_refs, start)))
    return spans


def chrome_trace_events(
    report: ObsReport, pid: int = 1
) -> "list[dict[str, object]]":
    """One report's Chrome trace events (spans, instants, counters)."""
    meta = report.meta
    label = _report_label(meta)
    num_cores = int(meta.get("num_cores", 1))
    total_refs = int(meta.get("references", 0))
    out: "list[dict[str, object]]" = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for core in range(num_cores):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": core,
                "args": {"name": f"core {core}"},
            }
        )
    events_tid = num_cores
    out.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": events_tid,
            "args": {"name": "events"},
        }
    )
    for core, start, end in execution_spans(report.events, total_refs):
        if end <= start:
            continue
        out.append(
            {
                "name": "execute",
                "cat": "execution",
                "ph": "X",
                "pid": pid,
                "tid": core,
                "ts": start,
                "dur": end - start,
            }
        )
    for event in report.events:
        if event.kind in _SPAN_KINDS:
            continue
        out.append(
            {
                "name": event.kind,
                "cat": "sim",
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": events_tid,
                "ts": event.t,
                "args": dict(event.args),
            }
        )
    for name, metric in report.metrics.items():
        if metric.get("type") != "series":
            continue
        for t, value in metric.get("samples", []):
            out.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": pid,
                    "ts": t,
                    "args": {"value": value},
                }
            )
    return out


def chrome_trace(report: ObsReport, pid: int = 1) -> "dict[str, object]":
    """A complete, Perfetto-loadable trace document for one report."""
    return {
        "traceEvents": chrome_trace_events(report, pid=pid),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "references (1 ref = 1 us)",
            **{k: v for k, v in report.meta.items() if _jsonable_scalar(v)},
        },
    }


def merge_trace_documents(
    documents: "Sequence[dict[str, object]]",
) -> "dict[str, object]":
    """Merge several trace documents into one; each input document's
    process ids are remapped to a disjoint range so rows never collide.

    Inputs come from independent processes whose events interleave with
    non-monotonic ``ts`` once concatenated, which trips strict trace
    importers.  The merge therefore emits metadata events first (in
    input order) and every timestamped event sorted by ``ts`` (stable,
    so same-timestamp events keep their input order), with negative
    timestamps clamped to 0.
    """
    metadata: "list[dict[str, object]]" = []
    timed: "list[dict[str, object]]" = []
    next_pid = 1
    for document in documents:
        remap: "dict[object, int]" = {}
        for event in document.get("traceEvents", []):
            event = dict(event)
            pid = event.get("pid", 0)
            if pid not in remap:
                remap[pid] = next_pid
                next_pid += 1
            event["pid"] = remap[pid]
            if event.get("ph") == "M":
                metadata.append(event)
                continue
            ts = event.get("ts")
            if isinstance(ts, (int, float)) and ts < 0:
                event["ts"] = 0
            timed.append(event)
    timed.sort(key=_event_ts)
    return {"traceEvents": metadata + timed, "displayTimeUnit": "ms"}


def _event_ts(event: "dict[str, object]") -> float:
    ts = event.get("ts")
    return float(ts) if isinstance(ts, (int, float)) else 0.0


def write_events_jsonl(
    events: "Iterable[SimEvent]", path: "str | Path"
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    return path


def load_events_jsonl(path: "str | Path") -> "list[SimEvent]":
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(SimEvent.from_dict(json.loads(line)))
    return events


def save_report(
    report: ObsReport, directory: "str | Path", stem: str
) -> "dict[str, Path]":
    """Write one report's artifact triple into ``directory``:
    ``<stem>.metrics.json``, ``<stem>.events.jsonl``, ``<stem>.trace.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = safe_stem(stem)
    metrics_path = directory / f"{stem}.metrics.json"
    payload = report.to_dict()
    payload["metrics"] = report.metrics
    metrics_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    events_path = write_events_jsonl(
        report.events, directory / f"{stem}.events.jsonl"
    )
    trace_path = directory / f"{stem}.trace.json"
    trace_path.write_text(
        json.dumps(chrome_trace(report)) + "\n", encoding="utf-8"
    )
    return {"metrics": metrics_path, "events": events_path, "trace": trace_path}


def safe_stem(label: str) -> str:
    """A filesystem-safe artifact stem from a job/workload label."""
    return "".join(
        c if c.isalnum() or c in "._-" else "-" for c in label
    ).strip("-.") or "obs"


def summarize_reports(
    reports: "Sequence[ObsReport]",
) -> str:
    """Terminal summary: one row per report plus an event-kind census."""
    table = TextTable(
        ["report", "refs", "migrations", "filter flips", "storms", "events"]
    )
    kind_totals: "dict[str, int]" = {}
    for report in reports:
        counts = _kind_counts(report)
        for kind, count in counts.items():
            kind_totals[kind] = kind_totals.get(kind, 0) + count
        label = _report_label(report.meta)
        metrics = report.metrics
        table.add_row(
            [
                label,
                f"{int(report.meta.get('references', 0)):,}",
                _counter_value(metrics, "migrations"),
                _counter_value(metrics, "filter.flips"),
                _counter_value(metrics, "l2.eviction_storms"),
                f"{len(report.events):,}"
                + (f" (+{report.dropped_events} dropped)" if report.dropped_events else ""),
            ]
        )
    lines = [table.render(), "", "event kinds:"]
    for kind in sorted(kind_totals):
        lines.append(f"  {kind:<24s} {kind_totals[kind]:,}")
    return "\n".join(lines)


def _report_label(meta: "dict[str, object]") -> str:
    label = str(meta.get("workload", meta.get("probe", "sim")))
    run = meta.get("run")
    if run:
        label = f"{label}/{run}"
    return label


def _counter_value(metrics: "dict[str, object]", name: str) -> str:
    metric = metrics.get(name)
    if not isinstance(metric, dict) or metric.get("type") != "counter":
        return "-"
    return f"{metric['value']:,}"


def _kind_counts(report: ObsReport) -> "dict[str, int]":
    counts: "dict[str, int]" = {}
    for event in report.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def _jsonable_scalar(value: object) -> bool:
    return isinstance(value, (str, int, float, bool)) or value is None
