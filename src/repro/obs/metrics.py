"""Zero-dependency metrics primitives for simulator telemetry.

Four instrument kinds, all allocation-light and JSON-exportable:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written instantaneous value;
* :class:`Histogram` — HDR-style log2 buckets with linear sub-buckets,
  so value distributions (migration gaps, storm sizes) keep bounded
  memory and ~6 % relative resolution regardless of range;
* :class:`TimeSeries` — rolling ``(t, value)`` samples with a hard
  sample cap; when full, every other sample is dropped and the sampling
  stride doubles, so an arbitrarily long run keeps an evenly spaced
  sketch instead of growing without bound.

A :class:`MetricsRegistry` names and owns instruments; everything
serialises through :meth:`MetricsRegistry.to_dict` and merges across
runs with :meth:`MetricsRegistry.merge_dicts`.
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> "dict[str, object]":
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> "dict[str, object]":
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Log2 buckets with ``sub_buckets`` linear slots per octave.

    Bucket index of value ``v >= 1`` with ``s`` sub-buckets:
    ``octave(v) * s + sub``, where ``octave = v.bit_length() - 1`` and
    ``sub`` linearly divides the octave.  Values below 1 land in bucket
    0.  This is the classic HDR-histogram layout: relative error is
    bounded by ``1/s`` at any magnitude.
    """

    __slots__ = ("sub_buckets", "buckets", "count", "total", "min", "max")

    def __init__(self, sub_buckets: int = 16) -> None:
        if sub_buckets < 1:
            raise ValueError(f"sub_buckets must be >= 1, got {sub_buckets}")
        self.sub_buckets = sub_buckets
        self.buckets: "dict[int, int]" = {}
        self.count = 0
        self.total = 0
        self.min: "int | None" = None
        self.max: "int | None" = None

    def _index(self, value: int) -> int:
        if value < 1:
            return 0
        octave = value.bit_length() - 1
        if octave == 0:
            return 0
        sub = ((value - (1 << octave)) * self.sub_buckets) >> octave
        return octave * self.sub_buckets + sub

    def _bucket_floor(self, index: int) -> int:
        if index == 0:
            return 0  # bucket 0 also holds sub-1 values
        octave, sub = divmod(index, self.sub_buckets)
        return (1 << octave) + ((sub << octave) // self.sub_buckets)

    def record(self, value: int) -> None:
        value = int(value)
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100]) from buckets.

        Edge contract: an empty histogram reports 0.0 for every
        quantile; with one sample every quantile is *exactly* that
        sample; p=0 is the exact minimum and p=100 the exact maximum —
        the bucket-floor approximation only applies strictly inside
        (0, 100) with two or more samples.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        if self.count == 1 or p == 0.0:
            return float(self.min)
        if p == 100.0:
            return float(self.max)
        rank = max(1, round(p / 100.0 * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return float(self._bucket_floor(index))
        return float(self.max or 0)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place (and return it).

        Shards recorded independently (one histogram per worker) merge
        into exactly the histogram a single recorder would have built:
        bucket counts, count, total, min, and max all combine losslessly
        as long as both sides share the same ``sub_buckets`` layout.
        """
        if other.sub_buckets != self.sub_buckets:
            raise ValueError(
                f"cannot merge histograms with sub_buckets="
                f"{self.sub_buckets} and {other.sub_buckets}"
            )
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        for value in (other.min,):
            if value is not None and (self.min is None or value < self.min):
                self.min = value
        for value in (other.max,):
            if value is not None and (self.max is None or value > self.max):
                self.max = value
        return self

    def to_dict(self) -> "dict[str, object]":
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "sub_buckets": self.sub_buckets,
        }


class TimeSeries:
    """Rolling ``(t, value)`` samples with bounded memory.

    ``append`` keeps at most ``max_samples`` points; on overflow it
    drops every other retained point and doubles ``stride`` so only
    every ``stride``-th append is stored from then on — a run of any
    length yields an evenly spaced sketch of at most ``max_samples``
    points.
    """

    __slots__ = ("max_samples", "samples", "stride", "_skipped")

    def __init__(self, max_samples: int = 2048) -> None:
        if max_samples < 4:
            raise ValueError(f"max_samples must be >= 4, got {max_samples}")
        self.max_samples = max_samples
        self.samples: "list[tuple[int, float]]" = []
        self.stride = 1
        self._skipped = 0

    def append(self, t: int, value: float) -> None:
        self._skipped += 1
        if self._skipped < self.stride:
            return
        self._skipped = 0
        self.samples.append((t, value))
        if len(self.samples) >= self.max_samples:
            self.samples = self.samples[::2]
            self.stride *= 2

    def to_dict(self) -> "dict[str, object]":
        return {
            "type": "series",
            "stride": self.stride,
            "samples": [[t, v] for t, v in self.samples],
        }


class MetricsRegistry:
    """Named instruments for one simulated run."""

    def __init__(self) -> None:
        self._instruments: "dict[str, object]" = {}

    def _get(self, name: str, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, sub_buckets: int = 16) -> Histogram:
        return self._get(name, lambda: Histogram(sub_buckets), Histogram)

    def series(self, name: str, max_samples: int = 2048) -> TimeSeries:
        return self._get(name, lambda: TimeSeries(max_samples), TimeSeries)

    def names(self) -> "list[str]":
        return sorted(self._instruments)

    def clear(self) -> None:
        """Drop every instrument (long-lived registries, test resets)."""
        self._instruments.clear()

    def to_dict(self) -> "dict[str, object]":
        return {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    @staticmethod
    def merge_dicts(
        dicts: "list[dict[str, object]]",
    ) -> "dict[str, object]":
        """Merge exported registries: counters/histogram-totals sum,
        gauges keep the last value, series concatenate in order."""
        merged: "dict[str, object]" = {}
        for exported in dicts:
            for name, data in exported.items():
                if name not in merged:
                    merged[name] = _copy_metric(data)
                    continue
                _merge_metric(merged[name], data)
        return merged


def _percentile_from_buckets(
    buckets: "dict[str, int]", count: int, sub_buckets: int, p: float
) -> float:
    if count == 0:
        return 0.0
    rank = max(1, round(p / 100.0 * count))
    seen = 0
    floor = 0.0
    for index in sorted(buckets, key=int):
        seen += buckets[index]
        if int(index) == 0:
            floor = 0.0
        else:
            octave, sub = divmod(int(index), sub_buckets)
            floor = float((1 << octave) + ((sub << octave) // sub_buckets))
        if seen >= rank:
            return floor
    return floor


def _copy_metric(data: "dict[str, object]") -> "dict[str, object]":
    copy = dict(data)
    if data.get("type") == "histogram":
        copy["buckets"] = dict(data.get("buckets", {}))
    elif data.get("type") == "series":
        copy["samples"] = [list(s) for s in data.get("samples", [])]
    return copy


def _merge_metric(target: "dict[str, object]", data: "dict[str, object]") -> None:
    kind = target.get("type")
    if kind != data.get("type"):
        raise ValueError(
            f"cannot merge metric types {kind!r} and {data.get('type')!r}"
        )
    if kind == "counter":
        target["value"] += data["value"]
    elif kind == "gauge":
        target["value"] = data["value"]
    elif kind == "histogram":
        target["count"] += data["count"]
        target["total"] += data["total"]
        for edge in ("min", "max"):
            values = [v for v in (target.get(edge), data.get(edge)) if v is not None]
            if values:
                target[edge] = (min if edge == "min" else max)(values)
        target["mean"] = (
            target["total"] / target["count"] if target["count"] else 0.0
        )
        buckets = target["buckets"]
        for index, count in data.get("buckets", {}).items():
            buckets[index] = buckets.get(index, 0) + count
        sub_buckets = int(target.get("sub_buckets", 16))
        for key, p in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0)):
            target[key] = _percentile_from_buckets(
                buckets, target["count"], sub_buckets, p
            )
    elif kind == "series":
        target["samples"] = list(target["samples"]) + [
            list(s) for s in data.get("samples", [])
        ]
    else:
        raise ValueError(f"unknown metric type {kind!r}")


# -- the process-global obs registry ------------------------------------
#
# Long-lived infrastructure (kernel memo caches, shared-memory record
# lifecycles) counts what it did here, the same way fault/recovery
# seams count on :data:`repro.runtime.health.HEALTH`.  One registry per
# process; worker processes keep their own (their counts describe their
# own attaches/evictions).

#: the process-global metrics registry
PROCESS = MetricsRegistry()


def process_counter(name: str) -> Counter:
    """The named process-global counter (created on first use)."""
    return PROCESS.counter(name)


def process_snapshot() -> "dict[str, int]":
    """Flat ``{counter name: value}`` view of the process counters."""
    return {
        name: instrument["value"]
        for name, instrument in PROCESS.to_dict().items()
        if instrument.get("type") == "counter"
    }
