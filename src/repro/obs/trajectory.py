"""Perf-trajectory regression gate over committed ``BENCH_*.json``.

The throughput story of this repo lives in small JSON baselines
(``benchmarks/BENCH_throughput.json``, ``BENCH_obs_overhead.json``):
every perf-relevant PR re-measures and commits them, so ``git log``
holds the whole performance trajectory.  This module turns that
history into a gate:

* collect every numeric leaf of each baseline file (dotted paths, e.g.
  ``refs_per_sec.filtered``);
* a metric is **gated** when its path contains ``speedup`` or lives
  under ``refs_per_sec`` — those are higher-is-better throughput
  numbers; everything else (counts, seconds, ``*_pct`` noise bands) is
  reported but never fails the gate;
* the **baseline** for a metric is its value in the latest commit that
  touched the file *with the same workload context* (the top-level
  ``workload`` string) — numbers measured at different scales are
  never compared against each other;
* the **current** value is the working-tree file, or a freshly
  measured result overlaid via ``--measured`` (matched by basename);
* with ``--check``, any gated metric that dropped more than
  ``--threshold`` (default 10 %) below its baseline exits non-zero.

CLI (also wired as ``python -m repro.obs trajectory``)::

    python -m repro.obs trajectory --check
    python -m repro.obs trajectory --measured BENCH_new.json \
        --markdown trajectory.md --json trajectory.json
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

BASELINE_GLOB = "BENCH_*.json"
DEFAULT_THRESHOLD = 0.10
DEFAULT_MAX_HISTORY = 50
REPORT_SCHEMA = "repro.obs/trajectory@1"


def is_gated(path: str) -> bool:
    """Is this dotted metric path throughput-gating (higher-better)?"""
    return "speedup" in path or path.split(".", 1)[0] == "refs_per_sec"


def flatten_numeric(
    data: object, prefix: str = ""
) -> "dict[str, float]":
    """Numeric leaves of a JSON document as ``dotted.path -> value``."""
    out: "dict[str, float]" = {}
    if isinstance(data, dict):
        for key, value in data.items():
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value, sub))
    elif isinstance(data, bool):
        pass  # bool is an int subclass; flags are not metrics
    elif isinstance(data, (int, float)):
        out[prefix] = float(data)
    return out


def workload_context(data: object) -> str:
    """The comparison context: numbers only compare within the same
    workload string (scale changes change the workload)."""
    if isinstance(data, dict):
        return str(data.get("workload", ""))
    return ""


@dataclass
class MetricEntry:
    """One metric's trajectory within one baseline file."""

    file: str  #: baseline basename
    metric: str  #: dotted path
    context: str  #: current workload string
    current: float
    gated: bool
    baseline: "float | None" = None
    baseline_commit: "str | None" = None
    delta_pct: "float | None" = None  #: (current - baseline) / baseline
    regressed: bool = False
    history: "list[dict[str, object]]" = field(default_factory=list)

    def to_dict(self) -> "dict[str, object]":
        return {
            "file": self.file,
            "metric": self.metric,
            "context": self.context,
            "current": self.current,
            "gated": self.gated,
            "baseline": self.baseline,
            "baseline_commit": self.baseline_commit,
            "delta_pct": self.delta_pct,
            "regressed": self.regressed,
            "history": self.history,
        }


def compare_metrics(
    current: "dict[str, float]",
    current_context: str,
    file_name: str,
    history: "Sequence[tuple[str, dict]]",
    threshold: float = DEFAULT_THRESHOLD,
) -> "list[MetricEntry]":
    """Pure comparison core: ``history`` is newest-first
    ``(commit, parsed-json)`` snapshots of the baseline file."""
    entries: "list[MetricEntry]" = []
    flattened = [
        (commit, workload_context(doc), flatten_numeric(doc))
        for commit, doc in history
    ]
    for metric, value in sorted(current.items()):
        entry = MetricEntry(
            file=file_name,
            metric=metric,
            context=current_context,
            current=value,
            gated=is_gated(metric),
        )
        for commit, context, values in flattened:
            if metric not in values:
                continue
            entry.history.append(
                {"commit": commit, "value": values[metric], "context": context}
            )
            if entry.baseline is None and context == current_context:
                entry.baseline = values[metric]
                entry.baseline_commit = commit
        if entry.baseline is not None and entry.baseline != 0:
            entry.delta_pct = (value - entry.baseline) / abs(entry.baseline)
            if entry.gated and entry.delta_pct < -threshold:
                entry.regressed = True
        entries.append(entry)
    return entries


# -- git plumbing --------------------------------------------------------


def _git(args: "Sequence[str]", cwd: Path) -> "str | None":
    try:
        result = subprocess.run(
            ["git", *args],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return result.stdout if result.returncode == 0 else None


def file_history(
    path: Path, max_history: int = DEFAULT_MAX_HISTORY
) -> "list[tuple[str, dict]]":
    """Newest-first ``(commit, parsed-json)`` snapshots of ``path`` from
    git; empty when the file (or git itself) has no history."""
    root_text = _git(["rev-parse", "--show-toplevel"], path.parent)
    if not root_text:
        return []
    root = Path(root_text.strip())
    try:
        relpath = path.resolve().relative_to(root).as_posix()
    except ValueError:
        return []
    log = _git(
        ["log", f"--max-count={max_history}", "--format=%H", "--", relpath],
        root,
    )
    if not log:
        return []
    snapshots: "list[tuple[str, dict]]" = []
    for sha in log.split():
        blob = _git(["show", f"{sha}:{relpath}"], root)
        if blob is None:
            continue
        try:
            doc = json.loads(blob)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict):
            snapshots.append((sha, doc))
    return snapshots


# -- report assembly -----------------------------------------------------


def find_baselines(root: "str | Path") -> "list[Path]":
    """``BENCH_*.json`` in ``root`` and ``root/benchmarks``."""
    root = Path(root)
    found: "list[Path]" = []
    for directory in (root, root / "benchmarks"):
        if directory.is_dir():
            found.extend(sorted(directory.glob(BASELINE_GLOB)))
    # de-dup (root may *be* benchmarks/)
    unique: "dict[Path, None]" = {}
    for path in found:
        unique.setdefault(path.resolve(), None)
    return list(unique)


def build_report(
    baselines: "Sequence[Path]",
    measured: "Sequence[Path]" = (),
    threshold: float = DEFAULT_THRESHOLD,
    max_history: int = DEFAULT_MAX_HISTORY,
) -> "dict[str, object]":
    """The full trajectory report over baseline files plus optional
    freshly measured overlays (matched to baselines by basename)."""
    overlays: "dict[str, dict]" = {}
    for path in measured:
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict):
            overlays[Path(path).name] = doc

    entries: "list[MetricEntry]" = []
    files: "list[str]" = []
    for path in baselines:
        try:
            committed = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(committed, dict):
            continue
        files.append(str(path))
        history = file_history(path, max_history=max_history)
        current = overlays.pop(path.name, committed)
        entries.extend(
            compare_metrics(
                flatten_numeric(current),
                workload_context(current),
                path.name,
                history,
                threshold=threshold,
            )
        )
    # measured files with no committed counterpart: first data points,
    # nothing to compare against yet
    for name, doc in sorted(overlays.items()):
        files.append(name)
        entries.extend(
            compare_metrics(
                flatten_numeric(doc), workload_context(doc), name, [],
                threshold=threshold,
            )
        )

    regressions = [e for e in entries if e.regressed]
    return {
        "schema": REPORT_SCHEMA,
        "threshold": threshold,
        "files": files,
        "entries": [e.to_dict() for e in entries],
        "regressions": [e.to_dict() for e in regressions],
        "gated_metrics": sum(1 for e in entries if e.gated),
        "compared_metrics": sum(
            1 for e in entries if e.baseline is not None
        ),
        "ok": not regressions,
    }


def render_markdown(report: "dict[str, object]") -> str:
    """The report as a PR-comment-ready markdown document."""
    lines = ["# Performance trajectory", ""]
    threshold = report["threshold"]
    if report["ok"]:
        lines.append(
            f"**OK** — no gated metric regressed more than "
            f"{threshold:.0%} vs its committed baseline."
        )
    else:
        lines.append(
            f"**REGRESSED** — {len(report['regressions'])} gated "
            f"metric(s) dropped more than {threshold:.0%}:"
        )
        for entry in report["regressions"]:
            lines.append(
                f"- `{entry['file']}` `{entry['metric']}`: "
                f"{entry['current']:g} vs {entry['baseline']:g} "
                f"({entry['delta_pct']:+.1%}) at "
                f"{(entry['baseline_commit'] or '')[:12]}"
            )
    lines.append("")
    by_file: "dict[str, list[dict]]" = {}
    for entry in report["entries"]:
        by_file.setdefault(entry["file"], []).append(entry)
    for file_name in sorted(by_file):
        lines.append(f"## {file_name}")
        lines.append("")
        lines.append("| metric | current | baseline | delta | gate |")
        lines.append("|---|---:|---:|---:|---|")
        for entry in by_file[file_name]:
            if entry["baseline"] is None:
                base = "—"
                delta = "—"
            else:
                base = f"{entry['baseline']:g}"
                delta = (
                    f"{entry['delta_pct']:+.1%}"
                    if entry["delta_pct"] is not None
                    else "—"
                )
            if not entry["gated"]:
                gate = "info"
            elif entry["regressed"]:
                gate = "**FAIL**"
            elif entry["baseline"] is None:
                gate = "no baseline"
            else:
                gate = "ok"
            lines.append(
                f"| `{entry['metric']}` | {entry['current']:g} "
                f"| {base} | {delta} | {gate} |"
            )
        lines.append("")
    return "\n".join(lines)


# -- CLI -----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs trajectory",
        description="perf-trajectory report and regression gate",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=".",
        help="repo root to scan for BENCH_*.json (default: .)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any gated metric regressed",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative drop that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--measured",
        action="append",
        default=[],
        metavar="FILE",
        help="freshly measured JSON to overlay (matched by basename; "
        "repeatable)",
    )
    parser.add_argument(
        "--markdown", default=None, help="also write a markdown report here"
    )
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument(
        "--max-history",
        type=int,
        default=DEFAULT_MAX_HISTORY,
        help="commits of history to walk per file (default 50)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    baselines = find_baselines(args.root)
    report = build_report(
        baselines,
        measured=[Path(p) for p in args.measured],
        threshold=args.threshold,
        max_history=args.max_history,
    )
    markdown = render_markdown(report)
    print(markdown)
    if args.markdown:
        Path(args.markdown).write_text(markdown + "\n", encoding="utf-8")
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if not report["files"]:
        print("no BENCH_*.json baselines found", file=sys.stderr)
        return 0
    if args.check and not report["ok"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
