"""``python -m repro.obs`` — inspect and export observability artifacts.

Subcommands::

    python -m repro.obs summarize obs-out/ 'more-obs/*.metrics.json'
    python -m repro.obs export obs-out/ other-obs/ -o sweep/trace.json
    python -m repro.obs watch obs-out/
    python -m repro.obs trajectory --check

``summarize`` prints a terminal table over every report found in the
given directories/globs/files (one row per instrumented job), the
event-kind census, the merged chip counters, and the sweep roll-up
(per-stage latency histograms, span-linkage check).  ``export`` merges
everything into one Perfetto-loadable trace plus the machine-readable
``sweep_summary.json`` (see :mod:`repro.obs.aggregate`).  ``watch``
tails a sweep's run logs live, and ``trajectory`` is the perf-history
regression gate (:mod:`repro.obs.trajectory`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.aggregate import (
    build_sweep_trace,
    collect_artifacts,
    load_reports_from,
    sweep_summary,
)
from repro.obs.export import summarize_reports
from repro.obs.probe import ObsReport


def load_reports(directory: "str | Path") -> "list[ObsReport]":
    """Rebuild reports from one artifact directory (thin alias kept for
    existing imports; multi-input loading lives in
    :mod:`repro.obs.aggregate`)."""
    return load_reports_from(directory)


def _merged_chip_counters(reports: "list[ObsReport]") -> "str | None":
    from repro.experiments.report import counters_section
    from repro.multicore.chip import ChipStats

    stats_dicts = [
        report.meta["chip_stats"]
        for report in reports
        if isinstance(report.meta.get("chip_stats"), dict)
    ]
    if not stats_dicts:
        return None
    merged = ChipStats()
    for data in stats_dicts:
        merged = merged.merge(ChipStats.from_dict(data))
    return counters_section(
        f"chip counters (merged over {len(stats_dicts)} run(s))",
        merged.to_dict(),
    )


def _stage_lines(summary: "dict[str, object]") -> "list[str]":
    lines = []
    stages = summary.get("stages", {})
    if stages:
        lines.append("sweep stages (us):")
        for name, hist in sorted(stages.items()):
            lines.append(
                f"  {name:<24s} n={hist['count']:<5d} "
                f"p50={hist['p50']:,.0f} p99={hist['p99']:,.0f} "
                f"max={hist['max']:,}"
            )
    unlinked = summary.get("unlinked_spans", [])
    if unlinked:
        lines.append(f"UNLINKED spans (broken parents): {len(unlinked)}")
    return lines


def _cmd_summarize(args: argparse.Namespace) -> int:
    artifacts = collect_artifacts(args.inputs)
    if not artifacts.reports and not artifacts.runtime_events:
        print(
            f"no obs artifacts in {' '.join(args.inputs)}", file=sys.stderr
        )
        return 1
    if artifacts.reports:
        print(summarize_reports(artifacts.reports))
        merged = _merged_chip_counters(artifacts.reports)
        if merged:
            print()
            print(merged)
    if artifacts.runtime_events:
        print(
            f"\nscheduler events bridged: {len(artifacts.runtime_events):,}"
        )
    summary = sweep_summary(artifacts)
    for line in _stage_lines(summary):
        print(line)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    artifacts = collect_artifacts(args.inputs)
    document = build_sweep_trace(artifacts)
    if not document["traceEvents"]:
        print(f"no trace artifacts in {' '.join(args.inputs)}", file=sys.stderr)
        return 1
    first = Path(args.inputs[0])
    base = first if first.is_dir() else first.parent
    out = Path(args.output or (base / "trace.json"))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document) + "\n", encoding="utf-8")
    summary = sweep_summary(artifacts)
    summary_path = out.with_name("sweep_summary.json")
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"wrote {out} ({len(document['traceEvents']):,} trace events) — "
        "load it at https://ui.perfetto.dev"
    )
    print(f"wrote {summary_path}")
    unlinked = summary.get("unlinked_spans", [])
    if unlinked:
        print(f"warning: {len(unlinked)} span(s) have unknown parents",
              file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="terminal summary of obs artifacts"
    )
    summarize.add_argument(
        "inputs",
        nargs="+",
        help="--obs directories, globs, or individual artifact files",
    )
    summarize.set_defaults(handler=_cmd_summarize)

    export = sub.add_parser(
        "export",
        help="merge all traces into one Chrome trace-event JSON "
        "(+ sweep_summary.json)",
    )
    export.add_argument(
        "inputs",
        nargs="+",
        help="--obs directories, globs, or individual artifact files",
    )
    export.add_argument(
        "-o",
        "--output",
        default=None,
        help="output path (default: <first input dir>/trace.json)",
    )
    export.set_defaults(handler=_cmd_export)

    from repro.obs.watch import add_watch_parser

    add_watch_parser(sub)

    sub.add_parser(
        "trajectory",
        help="perf-trajectory report / regression gate over BENCH_*.json "
        "(see `python -m repro.obs trajectory --help`)",
        add_help=False,
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # `trajectory` owns its whole argument vector (argparse subparsers
    # cannot hand leading options through untouched).
    if argv and argv[0] == "trajectory":
        from repro.obs import trajectory

        return trajectory.main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
