"""``python -m repro.obs`` — inspect and export observability artifacts.

Subcommands::

    python -m repro.obs summarize obs-out/
    python -m repro.obs export obs-out/ -o obs-out/trace.json

``summarize`` prints a terminal table over every report in an ``--obs``
directory (one row per instrumented job) plus the event-kind census and
the merged chip counters.  ``export`` merges every per-job Chrome trace
and the bridged scheduler runlog into one Perfetto-loadable file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.bridge import merge_obs_dir
from repro.obs.export import load_events_jsonl, summarize_reports
from repro.obs.probe import ObsReport


def load_reports(directory: "str | Path") -> "list[ObsReport]":
    """Rebuild reports from the ``*.metrics.json`` / ``*.events.jsonl``
    artifact pairs in a directory."""
    directory = Path(directory)
    reports: "list[ObsReport]" = []
    for metrics_path in sorted(directory.glob("*.metrics.json")):
        try:
            data = json.loads(metrics_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        events_path = metrics_path.with_name(
            metrics_path.name.replace(".metrics.json", ".events.jsonl")
        )
        events = load_events_jsonl(events_path) if events_path.exists() else []
        reports.append(
            ObsReport(
                meta=dict(data.get("meta", {})),
                metrics=dict(data.get("metrics", {})),
                events=events,
                dropped_events=int(data.get("dropped_events", 0)),
            )
        )
    return reports


def _merged_chip_counters(reports: "list[ObsReport]") -> "str | None":
    from repro.experiments.report import counters_section
    from repro.multicore.chip import ChipStats

    stats_dicts = [
        report.meta["chip_stats"]
        for report in reports
        if isinstance(report.meta.get("chip_stats"), dict)
    ]
    if not stats_dicts:
        return None
    merged = ChipStats()
    for data in stats_dicts:
        merged = merged.merge(ChipStats.from_dict(data))
    return counters_section(
        f"chip counters (merged over {len(stats_dicts)} run(s))",
        merged.to_dict(),
    )


def _cmd_summarize(args: argparse.Namespace) -> int:
    reports = load_reports(args.directory)
    if not reports:
        print(f"no *.metrics.json artifacts in {args.directory}", file=sys.stderr)
        return 1
    print(summarize_reports(reports))
    merged = _merged_chip_counters(reports)
    if merged:
        print()
        print(merged)
    runlog = Path(args.directory) / "runtime.jsonl"
    if runlog.exists():
        print(f"\nscheduler events bridged: {len(load_events_jsonl(runlog)):,}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    document = merge_obs_dir(args.directory)
    if not document["traceEvents"]:
        print(f"no trace artifacts in {args.directory}", file=sys.stderr)
        return 1
    out = Path(args.output or (Path(args.directory) / "trace.json"))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document) + "\n", encoding="utf-8")
    print(
        f"wrote {out} ({len(document['traceEvents']):,} trace events) — "
        "load it at https://ui.perfetto.dev"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="terminal summary of an --obs directory"
    )
    summarize.add_argument("directory", help="the run_all --obs output directory")
    summarize.set_defaults(handler=_cmd_summarize)

    export = sub.add_parser(
        "export", help="merge all traces into one Chrome trace-event JSON"
    )
    export.add_argument("directory", help="the run_all --obs output directory")
    export.add_argument(
        "-o", "--output", default=None, help="output path (default: <dir>/trace.json)"
    )
    export.set_defaults(handler=_cmd_export)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
