"""Bridge the runtime's :class:`~repro.runtime.events.JobEvent` stream
into the observability sink, so one artifact directory — and one merged
Chrome trace — covers the *scheduler* (jobs queueing, starting,
retrying, finishing across worker processes) and the *simulator*
(migrations, filter flips, storms inside each job).

Two clocks meet here.  Simulator events tick in trace references; the
scheduler ticks in wall-clock seconds.  Bridged runtime events are
stamped in microseconds since the bridge was created, so in a merged
trace the scheduler rows and each job's simulator rows are separate
processes with comparable magnitudes (1 ref = 1 us on the simulator
side).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Iterable, Sequence

from repro.obs.events import SimEvent
from repro.obs.export import load_events_jsonl, merge_trace_documents
from repro.runtime.events import JobEvent

#: prefix shared by every bridged scheduler event kind
RUNTIME_PREFIX = "runtime."

#: JobEvent kinds that open/close a per-job span in the trace view
_SPAN_OPEN = ("started",)
_SPAN_CLOSE = ("finished", "failed", "interrupted")


def sim_event_from_job_event(
    event: JobEvent, t0: float, seq: int = 0
) -> SimEvent:
    """Convert one scheduler event into the obs event shape."""
    args: "dict[str, object]" = {
        "label": event.label,
        "job_hash": event.job_hash,
        "attempt": event.attempt,
        # Absolute wall clock (epoch us): the aggregate merger uses it
        # to place scheduler spans and kernel phase spans from several
        # processes on one shared timeline (relative `t` cannot — each
        # runlog's t0 is the sink's creation time, local to it).
        "wall_us": int(event.timestamp * 1_000_000),
    }
    if event.duration is not None:
        args["duration"] = event.duration
    if event.references is not None:
        args["references"] = event.references
    if event.error is not None:
        args["error"] = event.error
    if event.trace_id is not None:
        args["trace_id"] = event.trace_id
        args["span_id"] = event.span_id
        args["parent_span_id"] = event.parent_span_id
    return SimEvent(
        kind=RUNTIME_PREFIX + event.event,
        t=max(0, int((event.timestamp - t0) * 1_000_000)),
        seq=seq,
        args=args,
    )


def bridge_job_events(
    events: "Iterable[JobEvent]", t0: "float | None" = None
) -> "list[SimEvent]":
    """Convert a scheduler event stream, preserving its order via
    monotonically increasing ``seq`` numbers."""
    events = list(events)
    if t0 is None:
        t0 = min((e.timestamp for e in events), default=0.0)
    return [
        sim_event_from_job_event(event, t0, seq=i + 1)
        for i, event in enumerate(events)
    ]


class ObsRunlogSink:
    """A runtime :class:`~repro.runtime.events.EventBus` sink that
    appends scheduler events, in obs JSONL shape, into the obs
    directory — the file half of the scheduler/simulator bridge.

    Follows the sink protocol of :mod:`repro.runtime.events`: every
    ``emit`` is flushed so a Ctrl-C'd run keeps all delivered events,
    and ``close()`` releases the handle (re-opening lazily if emitted
    to again).
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._t0 = time.time()
        self._seq = 0
        self._handle: "IO[str] | None" = None

    def emit(self, event: JobEvent) -> None:
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._seq += 1
        record = sim_event_from_job_event(event, self._t0, seq=self._seq)
        self._handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def runtime_trace_events(
    events: "Sequence[SimEvent]", pid: int = 1
) -> "list[dict[str, object]]":
    """Chrome trace events for a bridged scheduler stream: one thread
    row per job, spans from ``started`` to a terminal event, instants
    for the rest."""
    out: "list[dict[str, object]]" = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "scheduler"},
        }
    ]
    tids: "dict[str, int]" = {}
    open_spans: "dict[str, tuple[int, int]]" = {}  # label -> (tid, start_ts)
    for event in events:
        label = str(event.args.get("label", "job"))
        if label not in tids:
            tids[label] = len(tids)
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[label],
                    "args": {"name": label},
                }
            )
        tid = tids[label]
        suffix = event.kind[len(RUNTIME_PREFIX):]
        if suffix in _SPAN_OPEN:
            open_spans[label] = (tid, event.t)
            continue
        if suffix in _SPAN_CLOSE and label in open_spans:
            span_tid, start = open_spans.pop(label)
            out.append(
                {
                    "name": suffix,
                    "cat": "runtime",
                    "ph": "X",
                    "pid": pid,
                    "tid": span_tid,
                    "ts": start,
                    "dur": max(1, event.t - start),
                    "args": dict(event.args),
                }
            )
            continue
        out.append(
            {
                "name": suffix,
                "cat": "runtime",
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": event.t,
                "args": dict(event.args),
            }
        )
    return out


def merge_obs_dir(directory: "str | Path") -> "dict[str, object]":
    """One trace document for a whole ``--obs`` directory: every
    per-job ``*.trace.json`` plus the bridged scheduler stream from
    ``runtime.jsonl``, as separate processes."""
    directory = Path(directory)
    documents: "list[dict[str, object]]" = []
    runlog = directory / "runtime.jsonl"
    if runlog.exists():
        documents.append(
            {"traceEvents": runtime_trace_events(load_events_jsonl(runlog))}
        )
    for path in sorted(directory.glob("*.trace.json")):
        if path.name == "trace.json":
            continue  # a previous merge output, not an input
        try:
            documents.append(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError):
            continue  # a torn file from a killed run must not block merging
    return merge_trace_documents(documents)
