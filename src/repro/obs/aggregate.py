"""Stitch per-worker/per-host obs artifacts into one sweep view.

A parallel sweep scatters telemetry: every worker process writes its
own report triple (``*.metrics.json`` / ``*.events.jsonl`` /
``*.trace.json``), the scheduler bridge appends ``runtime.jsonl``, a
service instance appends ``service-runtime.jsonl``, and kernel phase
spans land in ``phases.jsonl``.  This module merges any mix of those —
directories, globs, or individual files — into:

* **one Perfetto trace** (:func:`build_sweep_trace`): a ``scheduler``
  process with a root ``sweep`` span per trace id, one thread row per
  job carrying its queue-wait span, execute span, and kernel phase
  spans (all causally linked by ``trace_id``/``span_id``/
  ``parent_span_id`` from :mod:`repro.obs.trace_context`), plus each
  job's simulator rows as separate processes via the pid-remapping
  merge in :mod:`repro.obs.export`;
* **one machine-readable summary** (:func:`sweep_summary`): per-stage
  latency HDR histograms (queue wait, execution, each kernel phase)
  and cache-hit / retry / failure counters, with a span-linkage check
  (every span's parent must exist in the merged trace).

Scheduler and phase events carry absolute wall-clock microseconds
(``wall_us``), so artifacts from different processes land on one
shared timeline; simulator rows keep their own reference clock
(1 ref = 1 us) as before.
"""

from __future__ import annotations

import glob as _glob
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.events import SimEvent
from repro.obs.export import (
    chrome_trace,
    load_events_jsonl,
    merge_trace_documents,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.probe import ObsReport
from repro.obs.trace_context import load_phases

SUMMARY_SCHEMA = "repro.obs/sweep-summary@1"

#: JobEvent wire-shape keys accepted when reading raw run logs
_JOB_EVENT_KEYS = (
    "event",
    "label",
    "job_hash",
    "timestamp",
    "attempt",
    "duration",
    "references",
    "error",
    "trace_id",
    "span_id",
    "parent_span_id",
)

_RUNTIME_PREFIX = "runtime."
_TERMINAL = ("finished", "failed", "interrupted")


@dataclass
class SweepArtifacts:
    """Everything one aggregation found across its inputs."""

    reports: "list[ObsReport]" = field(default_factory=list)
    runtime_events: "list[SimEvent]" = field(default_factory=list)
    phases: "list[dict[str, object]]" = field(default_factory=list)
    service_metrics: "list[dict[str, object]]" = field(default_factory=list)
    sources: "list[Path]" = field(default_factory=list)


@dataclass
class JobSpan:
    """One job's reconstructed lifecycle across the sweep."""

    label: str
    job_hash: str
    trace_id: "str | None" = None
    span_id: "str | None" = None
    parent_span_id: "str | None" = None
    queued_us: "int | None" = None  #: wall clock, epoch microseconds
    started_us: "int | None" = None
    ended_us: "int | None" = None
    status: "str | None" = None
    attempts: int = 1
    retries: int = 0
    cache_hit: bool = False
    references: "int | None" = None

    def to_dict(self) -> "dict[str, object]":
        queue_wait = (
            self.started_us - self.queued_us
            if self.started_us is not None and self.queued_us is not None
            else None
        )
        execute = (
            self.ended_us - self.started_us
            if self.ended_us is not None and self.started_us is not None
            else None
        )
        return {
            "label": self.label,
            "job_hash": self.job_hash,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "cache_hit": self.cache_hit,
            "queue_wait_us": queue_wait,
            "execute_us": execute,
            "references": self.references,
        }


# -- input resolution ----------------------------------------------------


def resolve_inputs(inputs: "Sequence[str | Path]") -> "list[Path]":
    """Expand directories and shell globs into concrete paths."""
    resolved: "list[Path]" = []
    for item in inputs:
        text = str(item)
        if any(ch in text for ch in "*?["):
            matches = sorted(_glob.glob(text))
            resolved.extend(Path(m) for m in matches)
        else:
            resolved.append(Path(text))
    return resolved


def load_reports_from(directory: "str | Path") -> "list[ObsReport]":
    """Rebuild reports from the ``*.metrics.json`` / ``*.events.jsonl``
    artifact pairs in a directory."""
    directory = Path(directory)
    reports: "list[ObsReport]" = []
    for metrics_path in sorted(directory.glob("*.metrics.json")):
        report = _load_report(metrics_path)
        if report is not None:
            reports.append(report)
    return reports


def _load_report(metrics_path: Path) -> "ObsReport | None":
    try:
        data = json.loads(metrics_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    events_path = metrics_path.with_name(
        metrics_path.name.replace(".metrics.json", ".events.jsonl")
    )
    try:
        events = load_events_jsonl(events_path) if events_path.exists() else []
    except (OSError, ValueError, KeyError):
        events = []
    return ObsReport(
        meta=dict(data.get("meta", {})),
        metrics=dict(data.get("metrics", {})),
        events=events,
        dropped_events=int(data.get("dropped_events", 0)),
    )


def load_runlog(path: "str | Path") -> "list[SimEvent]":
    """Read one run log in either wire shape: obs-bridged
    (:class:`SimEvent` dicts, as ``ObsRunlogSink`` writes) or raw
    scheduler (``JobEvent`` records, as ``JsonlSink`` writes — these
    are bridged here)."""
    from repro.obs.bridge import bridge_job_events
    from repro.runtime.events import JobEvent

    sim_events: "list[SimEvent]" = []
    job_events: "list[JobEvent]" = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return sim_events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of a killed run
        if not isinstance(data, dict):
            continue
        if "kind" in data:
            try:
                sim_events.append(SimEvent.from_dict(data))
            except (KeyError, TypeError, ValueError):
                continue
        elif "event" in data:
            kwargs = {k: data[k] for k in _JOB_EVENT_KEYS if k in data}
            try:
                job_events.append(JobEvent(**kwargs))
            except (TypeError, ValueError):
                continue
    if job_events:
        sim_events.extend(bridge_job_events(job_events))
    return sim_events


def collect_artifacts(inputs: "Sequence[str | Path]") -> SweepArtifacts:
    """Gather reports, run logs, and phase spans from any mix of
    directories, glob patterns, and files."""
    artifacts = SweepArtifacts()
    for path in resolve_inputs(inputs):
        if path.is_dir():
            _collect_dir(path, artifacts)
        elif path.is_file():
            _collect_file(path, artifacts)
    return artifacts


def _collect_dir(directory: Path, artifacts: SweepArtifacts) -> None:
    artifacts.sources.append(directory)
    artifacts.reports.extend(load_reports_from(directory))
    for runlog in sorted(directory.glob("*.jsonl")):
        if runlog.name.endswith(".events.jsonl"):
            continue  # a report's sim events, already loaded above
        if runlog.name == "phases.jsonl":
            artifacts.phases.extend(load_phases(runlog))
            continue
        artifacts.runtime_events.extend(load_runlog(runlog))
    metrics = directory / "service-metrics.json"
    if metrics.is_file():
        try:
            data = json.loads(metrics.read_text(encoding="utf-8"))
            if isinstance(data, dict):
                artifacts.service_metrics.append(data)
        except (OSError, json.JSONDecodeError):
            pass


def _collect_file(path: Path, artifacts: SweepArtifacts) -> None:
    name = path.name
    if name.endswith(".metrics.json"):
        report = _load_report(path)
        if report is not None:
            artifacts.sources.append(path)
            artifacts.reports.append(report)
    elif name == "phases.jsonl" or name.endswith(".phases.jsonl"):
        artifacts.sources.append(path)
        artifacts.phases.extend(load_phases(path))
    elif name.endswith(".jsonl") and not name.endswith(".events.jsonl"):
        artifacts.sources.append(path)
        artifacts.runtime_events.extend(load_runlog(path))
    # *.trace.json and *.events.jsonl are derived views of the above;
    # merged outputs (trace.json) must never feed back in as inputs.


# -- job-span reconstruction ---------------------------------------------


def _wall_us(event: SimEvent) -> "int | None":
    wall = event.args.get("wall_us")
    return int(wall) if isinstance(wall, (int, float)) else None


def build_job_spans(events: "Sequence[SimEvent]") -> "list[JobSpan]":
    """Fold a bridged scheduler stream into one span per job hash."""
    spans: "dict[str, JobSpan]" = {}
    order: "list[str]" = []
    # Wall clock first (it is shared across processes; seq/t are local
    # to one runlog), seq as the same-file tie-break.
    for event in sorted(
        events, key=lambda e: (_wall_us(e) or e.t, e.seq)
    ):
        if not event.kind.startswith(_RUNTIME_PREFIX):
            continue
        suffix = event.kind[len(_RUNTIME_PREFIX):]
        job_hash = str(event.args.get("job_hash", ""))
        span = spans.get(job_hash)
        if span is None:
            span = JobSpan(
                label=str(event.args.get("label", "job")), job_hash=job_hash
            )
            spans[job_hash] = span
            order.append(job_hash)
        trace_id = event.args.get("trace_id")
        if trace_id is not None:
            span.trace_id = str(trace_id)
            span.span_id = str(event.args.get("span_id"))
            parent = event.args.get("parent_span_id")
            span.parent_span_id = str(parent) if parent is not None else None
        wall = _wall_us(event)
        attempt = event.args.get("attempt")
        if isinstance(attempt, int) and attempt > span.attempts:
            span.attempts = attempt
        if suffix == "queued" and span.queued_us is None:
            span.queued_us = wall
        elif suffix == "started" and span.started_us is None:
            span.started_us = wall
        elif suffix == "retried":
            span.retries += 1
        elif suffix == "cache-hit":
            span.cache_hit = True
            span.status = span.status or "cache-hit"
            span.ended_us = wall
        elif suffix in _TERMINAL:
            span.status = suffix
            span.ended_us = wall
            refs = event.args.get("references")
            if isinstance(refs, int):
                span.references = refs
    return [spans[h] for h in order]


def _trace_roots(
    spans: "Iterable[JobSpan]",
    phases: "Iterable[dict[str, object]]" = (),
) -> "dict[str, str]":
    """``trace_id -> root span id`` as observed from job parents (with
    orphan phase parents never overriding a job-derived root)."""
    roots: "dict[str, str]" = {}
    for span in spans:
        if span.trace_id and span.parent_span_id:
            roots.setdefault(span.trace_id, span.parent_span_id)
    for phase in phases:
        trace_id = phase.get("trace_id")
        parent = phase.get("parent_span_id")
        if trace_id and parent and str(trace_id) not in roots:
            # A phase recorded outside any job span parents straight to
            # the sweep root.
            roots[str(trace_id)] = str(parent)
    return roots


# -- the sweep summary ---------------------------------------------------


def sweep_summary(artifacts: SweepArtifacts) -> "dict[str, object]":
    """The machine-readable sweep roll-up (``sweep_summary.json``)."""
    spans = build_job_spans(artifacts.runtime_events)
    roots = _trace_roots(spans, artifacts.phases)

    stages: "dict[str, Histogram]" = {}

    def stage(name: str) -> Histogram:
        hist = stages.get(name)
        if hist is None:
            hist = stages[name] = Histogram()
        return hist

    counters = {
        "jobs": len(spans),
        "finished": 0,
        "failed": 0,
        "interrupted": 0,
        "cache_hits": 0,
        "crash_retries": 0,
        "fault_recoveries": 0,
    }
    for span in spans:
        data = span.to_dict()
        if data["queue_wait_us"] is not None:
            stage("queue_wait_us").record(data["queue_wait_us"])
        if data["execute_us"] is not None:
            stage("execute_us").record(data["execute_us"])
        if span.status in counters:
            counters[span.status] += 1
        if span.cache_hit:
            counters["cache_hits"] += 1
        counters["crash_retries"] += span.retries
        # A job that was crash-retried *and* still finished is a
        # recovery the fault layer won.
        if span.retries and span.status == "finished":
            counters["fault_recoveries"] += 1
    for phase in artifacts.phases:
        dur = phase.get("dur_us")
        name = str(phase.get("name", "phase"))
        if isinstance(dur, (int, float)):
            stage(f"phase.{name}_us").record(int(dur))

    # Dedup/cache counters from a co-located service instance, when
    # its metrics snapshot is part of the artifact set.
    service_counters: "dict[str, object]" = {}
    if artifacts.service_metrics:
        merged = MetricsRegistry.merge_dicts(artifacts.service_metrics)
        service_counters = {
            name: metric["value"]
            for name, metric in sorted(merged.items())
            if isinstance(metric, dict)
            and metric.get("type") == "counter"
            and not name.startswith("service.tenant.")
        }

    known_spans = set(roots.values())
    known_spans.update(s.span_id for s in spans if s.span_id)
    known_spans.update(
        str(p["span_id"]) for p in artifacts.phases if p.get("span_id")
    )
    unlinked = [
        s.span_id
        for s in spans
        if s.parent_span_id and s.parent_span_id not in known_spans
    ]
    unlinked.extend(
        str(p.get("span_id"))
        for p in artifacts.phases
        if p.get("parent_span_id")
        and str(p["parent_span_id"]) not in known_spans
    )

    return {
        "schema": SUMMARY_SCHEMA,
        "traces": {
            trace_id: {"root_span_id": root}
            for trace_id, root in sorted(roots.items())
        },
        "jobs": counters,
        "stages": {
            name: hist.to_dict() for name, hist in sorted(stages.items())
        },
        "service": service_counters,
        "spans": [span.to_dict() for span in spans],
        "phase_spans": len(artifacts.phases),
        "reports": len(artifacts.reports),
        "unlinked_spans": unlinked,
        "sources": [str(p) for p in artifacts.sources],
    }


# -- the merged Perfetto trace -------------------------------------------


def scheduler_trace_events(
    artifacts: SweepArtifacts, pid: int = 1
) -> "list[dict[str, object]]":
    """Chrome trace events for the scheduler side of a sweep: the root
    ``sweep`` span, one thread row per job with queue-wait and execute
    spans, kernel phase spans nested on their job's row, and instants
    for retries/cache hits — all on one wall-clock timeline."""
    spans = build_job_spans(artifacts.runtime_events)
    roots = _trace_roots(spans, artifacts.phases)
    walls: "list[int]" = []
    for span in spans:
        walls.extend(
            w
            for w in (span.queued_us, span.started_us, span.ended_us)
            if w is not None
        )
    for phase in artifacts.phases:
        start = phase.get("start_us")
        if isinstance(start, (int, float)):
            walls.append(int(start))
            dur = phase.get("dur_us")
            if isinstance(dur, (int, float)):
                walls.append(int(start) + int(dur))
    t0 = min(walls) if walls else 0
    t_end = max(walls) if walls else 0

    out: "list[dict[str, object]]" = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "scheduler"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "sweep"},
        },
    ]
    for trace_id, root_span in sorted(roots.items()):
        out.append(
            {
                "name": "sweep",
                "cat": "runtime",
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "dur": max(1, t_end - t0),
                "args": {"trace_id": trace_id, "span_id": root_span},
            }
        )

    tids: "dict[str, int]" = {}
    span_tids: "dict[str, int]" = {}  # job span id -> tid, for phases

    def tid_for(label: str) -> int:
        if label not in tids:
            tids[label] = len(tids) + 1
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[label],
                    "args": {"name": label},
                }
            )
        return tids[label]

    for span in spans:
        tid = tid_for(span.label)
        if span.span_id:
            span_tids[span.span_id] = tid
        trace_args = {
            "job_hash": span.job_hash,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_span_id": span.parent_span_id,
        }
        if span.queued_us is not None and span.started_us is not None:
            out.append(
                {
                    "name": "queue-wait",
                    "cat": "runtime",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": span.queued_us - t0,
                    "dur": max(1, span.started_us - span.queued_us),
                    "args": trace_args,
                }
            )
        if span.started_us is not None and span.ended_us is not None:
            out.append(
                {
                    "name": span.status or "execute",
                    "cat": "runtime",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": span.started_us - t0,
                    "dur": max(1, span.ended_us - span.started_us),
                    "args": {**trace_args, "attempts": span.attempts},
                }
            )
        elif span.cache_hit and span.ended_us is not None:
            out.append(
                {
                    "name": "cache-hit",
                    "cat": "runtime",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": span.ended_us - t0,
                    "args": trace_args,
                }
            )
        if span.retries:
            out.append(
                {
                    "name": "retried",
                    "cat": "runtime",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": (span.started_us or span.queued_us or t0) - t0,
                    "args": {**trace_args, "retries": span.retries},
                }
            )

    orphan_tid: "int | None" = None
    for phase in artifacts.phases:
        start = phase.get("start_us")
        if not isinstance(start, (int, float)):
            continue
        parent = phase.get("parent_span_id")
        tid = span_tids.get(str(parent)) if parent is not None else None
        if tid is None:
            if orphan_tid is None:
                orphan_tid = len(tids) + 1
                tids["(phases)"] = orphan_tid
                out.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": orphan_tid,
                        "args": {"name": "(phases)"},
                    }
                )
            tid = orphan_tid
        dur = phase.get("dur_us")
        out.append(
            {
                "name": str(phase.get("name", "phase")),
                "cat": "phase",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": int(start) - t0,
                "dur": max(1, int(dur) if isinstance(dur, (int, float)) else 1),
                "args": {
                    "trace_id": phase.get("trace_id"),
                    "span_id": phase.get("span_id"),
                    "parent_span_id": phase.get("parent_span_id"),
                    "pid": phase.get("pid"),
                },
            }
        )
    return out


def build_sweep_trace(artifacts: SweepArtifacts) -> "dict[str, object]":
    """One Perfetto-loadable document for the whole artifact set."""
    documents: "list[dict[str, object]]" = []
    if artifacts.runtime_events or artifacts.phases:
        documents.append({"traceEvents": scheduler_trace_events(artifacts)})
    for report in artifacts.reports:
        documents.append(chrome_trace(report))
    return merge_trace_documents(documents)


def aggregate(
    inputs: "Sequence[str | Path]",
) -> "tuple[dict[str, object], dict[str, object]]":
    """Collect the inputs once; return ``(trace_document, summary)``."""
    artifacts = collect_artifacts(inputs)
    return build_sweep_trace(artifacts), sweep_summary(artifacts)


def write_aggregate(
    directory: "str | Path",
    inputs: "Sequence[str | Path] | None" = None,
) -> "dict[str, Path]":
    """Aggregate ``inputs`` (default: the directory itself) and write
    ``trace.json`` + ``sweep_summary.json`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    document, summary = aggregate(inputs if inputs is not None else [directory])
    trace_path = directory / "trace.json"
    trace_path.write_text(json.dumps(document) + "\n", encoding="utf-8")
    summary_path = directory / "sweep_summary.json"
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return {"trace": trace_path, "summary": summary_path}
