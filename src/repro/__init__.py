"""Reproduction of "Exploiting the Cache Capacity of a Single-Chip Multi-Core
Processor with Execution Migration" (Pierre Michaud, HPCA 2004).

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.common``
    Saturating fixed-width integers, Fenwick trees, deterministic RNG
    helpers and text-table rendering.
``repro.traces``
    Instruction-indexed memory reference streams: synthetic behaviours
    (Circular, HalfRandom, ...), calibrated SPEC CPU2000-like models, and
    L1-cache filters.
``repro.olden``
    Re-implementations of five Olden benchmarks executed over a traced
    heap allocator, producing genuine linked-data-structure traces.
``repro.caches``
    LRU stack-distance profiling (Mattson), fully-, set- and
    skewed-associative caches, and a single-core cache hierarchy.
``repro.core``
    The affinity algorithm, R-window, affinity cache, transition filter,
    working-set sampling, 4-way splitting, and the migration controller.
``repro.multicore``
    The multi-core chip model with migration-mode coherence, the update
    bus, and the migration engine.
``repro.partition``
    Offline graph-partitioning baselines (Kernighan-Lin, static splits).
``repro.analysis``
    Stack-profile experiments, splittability metrics, parameter sweeps.
``repro.experiments``
    One driver per table/figure of the paper plus the workload registry.

Quickstart::

    from repro.core import MigrationController, ControllerConfig
    from repro.traces import Circular

    controller = MigrationController(ControllerConfig())
    for address in Circular(num_lines=4000).addresses(100_000):
        subset = controller.access(address)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
