"""Figures 4-5: LRU stack profiles, single stack vs 4-way split.

For every benchmark the paper plots ``p1(x)`` ("normal") and ``p4(x)``
("split") for cache sizes 16 KB .. 16 MB, plus the transition
frequency.  This driver runs the section 4.1 pipeline — raw trace →
16-KB fully-associative L1 filters → stack experiment — and reports
both curves at the paper's six sizes along with the transition
frequency and a splittability verdict.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from repro.analysis.splittability import SplittabilityReport, splittability_report
from repro.analysis.stack_profiles import (
    PAPER_CACHE_SIZE_LABELS,
    PAPER_CACHE_SIZES_LINES,
    StackExperimentResult,
    run_stack_experiment,
)
from repro.experiments.report import ascii_curve, render_rows, section
from repro.experiments.workloads import WORKLOAD_NAMES, workload
from repro.runtime import Job, payloads
from repro.traces.filters import L1Filter, L1FilterConfig


@dataclass(frozen=True)
class FigureProfileRow:
    """One benchmark's Figure 4/5 panel."""

    name: str
    references: int  #: L1 misses fed to the stacks
    p1_curve: "tuple[float, ...]"
    p4_curve: "tuple[float, ...]"
    transition_frequency: float
    verdict: SplittabilityReport


def run_figures45_for(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    sizes_lines: "Sequence[int]" = PAPER_CACHE_SIZES_LINES,
) -> FigureProfileRow:
    """Run the stack experiment for one workload."""
    spec = workload(name, scale=scale, seed=seed)
    l1 = L1Filter(L1FilterConfig())
    filtered = (ref.line for ref in l1.filter(spec.accesses()))
    result: StackExperimentResult = run_stack_experiment(filtered, name=name)
    p1_curve, p4_curve = result.curves(sizes_lines)
    return FigureProfileRow(
        name=name,
        references=result.references,
        p1_curve=tuple(p1_curve),
        p4_curve=tuple(p4_curve),
        transition_frequency=result.transition_frequency,
        verdict=splittability_report(result, sizes_lines),
    )


def figures45_job(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    sizes_lines: "Sequence[int] | None" = None,
) -> "dict[str, object]":
    """Runtime job: one Figure 4/5 panel as a JSON-able payload."""
    row = run_figures45_for(
        name,
        scale=scale,
        seed=seed,
        sizes_lines=(
            tuple(sizes_lines)
            if sizes_lines is not None
            else PAPER_CACHE_SIZES_LINES
        ),
    )
    payload = asdict(row)
    payload["p1_curve"] = list(row.p1_curve)
    payload["p4_curve"] = list(row.p4_curve)
    payload["references"] = row.references
    return payload


def figures45_row_from_payload(
    payload: "dict[str, object]",
) -> FigureProfileRow:
    verdict = payload["verdict"]
    return FigureProfileRow(
        name=payload["name"],
        references=payload["references"],
        p1_curve=tuple(payload["p1_curve"]),
        p4_curve=tuple(payload["p4_curve"]),
        transition_frequency=payload["transition_frequency"],
        verdict=SplittabilityReport(
            name=verdict["name"],
            gap=verdict["gap"],
            transition_frequency=verdict["transition_frequency"],
            splittable=verdict["splittable"],
        ),
    )


def figures45_jobs(
    names: "Sequence[str]" = WORKLOAD_NAMES,
    scale: float = 1.0,
    seed: "int | None" = None,
    sizes_lines: "Sequence[int] | None" = None,
) -> "list[Job]":
    extra = {}
    if sizes_lines is not None:
        extra["sizes_lines"] = list(sizes_lines)
    return [
        Job.create(
            "repro.experiments.figures45:figures45_job",
            label=f"figures45/{name}",
            name=name,
            scale=scale,
            seed=seed,
            **extra,
        )
        for name in names
    ]


def run_figures45(
    names: "Sequence[str]" = WORKLOAD_NAMES,
    scale: float = 1.0,
    sizes_lines: "Sequence[int]" = PAPER_CACHE_SIZES_LINES,
    seed: "int | None" = None,
    runtime=None,
) -> "list[FigureProfileRow]":
    """Run the stack experiment for every workload."""
    if runtime is None:
        return [
            run_figures45_for(
                name, scale=scale, seed=seed, sizes_lines=sizes_lines
            )
            for name in names
        ]
    jobs = figures45_jobs(
        names,
        scale=scale,
        seed=seed,
        sizes_lines=(
            None if tuple(sizes_lines) == tuple(PAPER_CACHE_SIZES_LINES)
            else sizes_lines
        ),
    )
    return [figures45_row_from_payload(p) for p in payloads(runtime.map(jobs))]


def render_figures45(
    rows: "Sequence[FigureProfileRow]",
    size_labels: "Sequence[str]" = PAPER_CACHE_SIZE_LABELS,
) -> str:
    """Per-benchmark p1/p4 values at the paper's sizes + verdicts."""
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.name,
                "p1",
                *(f"{v:.3f}" for v in row.p1_curve),
                f"{row.transition_frequency:.4f}",
                "",
            ]
        )
        table_rows.append(
            [
                row.name,
                "p4",
                *(f"{v:.3f}" for v in row.p4_curve),
                "",
                "SPLIT" if row.verdict.splittable else "no",
            ]
        )
    body = render_rows(
        ["benchmark", "curve", *size_labels, "trans", "splittable"], table_rows
    )
    sketches = "\n".join(
        f"{row.name:12s} p1 |{ascii_curve(row.p1_curve, 6)}|  "
        f"p4 |{ascii_curve(row.p4_curve, 6)}|"
        for row in rows
    )
    return (
        section("Figures 4-5: LRU stack profiles (normal vs split)")
        + "\n"
        + body
        + "\n\nprofile sketches (16k..16M):\n"
        + sketches
    )
