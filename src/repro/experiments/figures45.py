"""Figures 4-5: LRU stack profiles, single stack vs 4-way split.

For every benchmark the paper plots ``p1(x)`` ("normal") and ``p4(x)``
("split") for cache sizes 16 KB .. 16 MB, plus the transition
frequency.  This driver runs the section 4.1 pipeline — raw trace →
16-KB fully-associative L1 filters → stack experiment — and reports
both curves at the paper's six sizes along with the transition
frequency and a splittability verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.splittability import SplittabilityReport, splittability_report
from repro.analysis.stack_profiles import (
    PAPER_CACHE_SIZE_LABELS,
    PAPER_CACHE_SIZES_LINES,
    StackExperimentResult,
    run_stack_experiment,
)
from repro.experiments.report import ascii_curve, render_rows, section
from repro.experiments.workloads import WORKLOAD_NAMES, workload
from repro.traces.filters import L1Filter, L1FilterConfig


@dataclass(frozen=True)
class FigureProfileRow:
    """One benchmark's Figure 4/5 panel."""

    name: str
    references: int  #: L1 misses fed to the stacks
    p1_curve: "tuple[float, ...]"
    p4_curve: "tuple[float, ...]"
    transition_frequency: float
    verdict: SplittabilityReport


def run_figures45(
    names: "Sequence[str]" = WORKLOAD_NAMES,
    scale: float = 1.0,
    sizes_lines: "Sequence[int]" = PAPER_CACHE_SIZES_LINES,
) -> "list[FigureProfileRow]":
    """Run the stack experiment for every workload."""
    rows = []
    for name in names:
        spec = workload(name, scale=scale)
        l1 = L1Filter(L1FilterConfig())
        filtered = (ref.line for ref in l1.filter(spec.accesses()))
        result: StackExperimentResult = run_stack_experiment(filtered, name=name)
        p1_curve, p4_curve = result.curves(sizes_lines)
        rows.append(
            FigureProfileRow(
                name=name,
                references=result.references,
                p1_curve=tuple(p1_curve),
                p4_curve=tuple(p4_curve),
                transition_frequency=result.transition_frequency,
                verdict=splittability_report(result, sizes_lines),
            )
        )
    return rows


def render_figures45(
    rows: "Sequence[FigureProfileRow]",
    size_labels: "Sequence[str]" = PAPER_CACHE_SIZE_LABELS,
) -> str:
    """Per-benchmark p1/p4 values at the paper's sizes + verdicts."""
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.name,
                "p1",
                *(f"{v:.3f}" for v in row.p1_curve),
                f"{row.transition_frequency:.4f}",
                "",
            ]
        )
        table_rows.append(
            [
                row.name,
                "p4",
                *(f"{v:.3f}" for v in row.p4_curve),
                "",
                "SPLIT" if row.verdict.splittable else "no",
            ]
        )
    body = render_rows(
        ["benchmark", "curve", *size_labels, "trans", "splittable"], table_rows
    )
    sketches = "\n".join(
        f"{row.name:12s} p1 |{ascii_curve(row.p1_curve, 6)}|  "
        f"p4 |{ascii_curve(row.p4_curve, 6)}|"
        for row in rows
    )
    return (
        section("Figures 4-5: LRU stack profiles (normal vs split)")
        + "\n"
        + body
        + "\n\nprofile sketches (16k..16M):\n"
        + sketches
    )
