"""Variant sweeps over one shared L1-filter record.

Section 2.3's strict L1 mirroring makes the L1 stage of every chip
variant identical on a given trace, so a sweep comparing the single-core
baseline, the migrating chip, and controller ablations only has to
simulate the IL1/DL1 pair **once** per workload: each variant replays
the same compact :class:`~repro.kernels.l1filter.L1FilterRecord`
(see ``docs/performance.md``).

:func:`run_sweep` schedules the sweep in two waves — first the one
L1-filter job, then the per-variant replay jobs — so the record is
guaranteed to be built exactly once even with caching disabled for the
payloads; each variant payload carries ``l1_filter_cached`` so tests
(and curious users) can verify the reuse actually happened.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.report import render_rows, section
from repro.kernels.l1filter import ensure_l1_filter, l1_filter_job_for
from repro.runtime import Job, payloads

#: the default 3-variant sweep: baseline / migration / one ablation
VARIANT_NAMES = ("baseline", "migration", "no-l2-filter")


def make_variant(variant: str):
    """Build the simulation model for one sweep variant."""
    from repro.caches.hierarchy import SingleCoreHierarchy
    from repro.core.controller import ControllerConfig
    from repro.multicore.chip import ChipConfig, MultiCoreChip

    if variant == "baseline":
        return SingleCoreHierarchy()
    if variant == "migration":
        return MultiCoreChip(ChipConfig())
    if variant == "no-l2-filter":
        controller = replace(ControllerConfig.four_core(), l2_filtering=False)
        return MultiCoreChip(ChipConfig(controller=controller))
    raise ValueError(
        f"unknown variant {variant!r}; known: {VARIANT_NAMES}"
    )


def variant_job(
    name: str,
    variant: str,
    scale: float = 1.0,
    seed: "int | None" = None,
) -> "dict[str, object]":
    """Runtime job: replay one workload's L1 record through one variant."""
    record, cached = ensure_l1_filter(name, scale=scale, seed=seed)
    model = make_variant(variant)
    model.run_filtered(record)
    stats = model.stats
    return {
        "workload": name,
        "variant": variant,
        "l1_misses": stats.l1_misses,
        "l2_accesses": stats.l2_accesses,
        "l2_misses": stats.l2_misses,
        "migrations": getattr(stats, "migrations", 0),
        "instructions": stats.instructions,
        "l1_filter_cached": cached,
        "references": record.accesses,
    }


def sweep_jobs(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    variants: "Sequence[str]" = VARIANT_NAMES,
) -> "list[Job]":
    """The per-variant replay jobs (the L1-filter job is separate)."""
    return [
        Job.create(
            "repro.experiments.variants:variant_job",
            label=f"sweep/{name}/{variant}",
            name=name,
            variant=variant,
            scale=scale,
            seed=seed,
        )
        for variant in variants
    ]


def run_sweep(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    runtime=None,
    variants: "Sequence[str]" = VARIANT_NAMES,
) -> "list[dict[str, object]]":
    """Run one workload through every variant; returns variant payloads.

    With a runtime, the L1-filter job runs (or cache-hits) first so the
    miss-stream sidecar exists before any variant starts — the replay
    jobs then share it even when they run in parallel workers.
    """
    if runtime is None:
        return [
            variant_job(name, variant, scale=scale, seed=seed)
            for variant in variants
        ]
    payloads(runtime.map([l1_filter_job_for(name, scale=scale, seed=seed)]))
    outcomes = runtime.map(sweep_jobs(name, scale=scale, seed=seed, variants=variants))
    return payloads(outcomes)


def run_population(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    runtime=None,
    variants: "Sequence[str]" = VARIANT_NAMES,
    share_memory: bool = True,
):
    """Population-batch twin of :func:`run_sweep`.

    Delegates to :func:`repro.kernels.sweep.evaluate_population`: the
    L1-filter record is materialised once in the coordinating process
    and shared with workers (fork inheritance or shared memory) instead
    of each variant job re-reading the sidecar.  Returns the
    :class:`~repro.kernels.sweep.PopulationResult`; ``result.rows`` is
    render-compatible with :func:`render_sweep`.
    """
    from repro.kernels.sweep import evaluate_population

    return evaluate_population(
        name,
        variants,
        scale=scale,
        seed=seed,
        runtime=runtime,
        share_memory=share_memory,
    )


def render_population(result) -> str:
    """Render one :class:`~repro.kernels.sweep.PopulationResult`: the
    ordinary sweep table plus the record-sharing footer."""
    sources = ", ".join(
        f"{count}× {source}"
        for source, count in sorted(result.record_sources.items())
    )
    return (
        render_sweep(result.rows)
        + f"\nrecord loads: {result.shared_record_loads} "
        + f"(sources: {sources or 'none'}; "
        + f"{result.wall_seconds:.2f}s wall)\n"
    )


def render_sweep(rows: "Sequence[dict[str, object]]") -> str:
    body = render_rows(
        ["variant", "L2 accesses", "L2 misses", "migrations", "L1 reuse"],
        [
            [
                str(row["variant"]),
                f"{row['l2_accesses']:,}",
                f"{row['l2_misses']:,}",
                f"{row['migrations']:,}",
                "cached" if row["l1_filter_cached"] else "built",
            ]
            for row in rows
        ],
    )
    workload = rows[0]["workload"] if rows else "?"
    return (
        section(f"Variant sweep over one L1-filter record — {workload}")
        + "\n"
        + body
    )
