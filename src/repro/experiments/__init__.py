"""Per-table/figure experiment drivers.

Each module regenerates one piece of the paper's evaluation:

* :mod:`repro.experiments.workloads` -- the 18-benchmark registry
  (13 SPEC models + 5 mini-Olden programs) with a global scale knob,
* :mod:`repro.experiments.table1` -- benchmark inventory (Table 1),
* :mod:`repro.experiments.figure3` -- affinity dynamics on Circular and
  HalfRandom (Figure 3),
* :mod:`repro.experiments.figures45` -- LRU stack profiles p1 vs p4
  (Figures 4 and 5),
* :mod:`repro.experiments.table2` -- the four-core 512-KB-L2 chip
  (Table 2),
* :mod:`repro.experiments.report` -- text rendering shared by the
  drivers and the benchmark harness.

``python -m repro.experiments.run_all`` regenerates everything and
prints the full report.
"""

from repro.experiments.workloads import (
    WORKLOAD_NAMES,
    WorkloadSpec,
    workload,
    workload_names,
)
from repro.experiments.table1 import Table1Row, run_table1, render_table1
from repro.experiments.figure3 import Figure3Snapshot, run_figure3, render_figure3
from repro.experiments.figures45 import (
    FigureProfileRow,
    run_figures45,
    render_figures45,
)
from repro.experiments.speedups import (
    SpeedupRow,
    project_speedups,
    render_speedups,
)
from repro.experiments.table2 import Table2Row, run_table2, render_table2

__all__ = [
    "Figure3Snapshot",
    "FigureProfileRow",
    "SpeedupRow",
    "Table1Row",
    "Table2Row",
    "WORKLOAD_NAMES",
    "WorkloadSpec",
    "project_speedups",
    "render_speedups",
    "render_figure3",
    "render_figures45",
    "render_table1",
    "render_table2",
    "run_figure3",
    "run_figures45",
    "run_table1",
    "run_table2",
    "workload",
    "workload_names",
]
