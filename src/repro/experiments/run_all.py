"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

Options::

    python -m repro.experiments.run_all --scale 0.5 --only table2
    python -m repro.experiments.run_all --workloads 179.art 181.mcf

The output of a full run (scale 1.0) is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figure3 import render_figure3, run_figure3
from repro.experiments.figures45 import render_figures45, run_figures45
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.speedups import project_speedups, render_speedups
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.workloads import WORKLOAD_NAMES

_EXPERIMENTS = ("figure3", "table1", "figures45", "table2", "speedups")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale")
    parser.add_argument(
        "--only",
        choices=_EXPERIMENTS,
        action="append",
        help="run only these experiments (repeatable)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(WORKLOAD_NAMES),
        help="subset of workload names",
    )
    args = parser.parse_args(argv)
    selected = args.only or list(_EXPERIMENTS)

    for experiment in selected:
        start = time.time()
        if experiment == "figure3":
            print(render_figure3(run_figure3()))
        elif experiment == "table1":
            print(render_table1(run_table1(args.workloads, scale=args.scale)))
        elif experiment == "figures45":
            print(
                render_figures45(run_figures45(args.workloads, scale=args.scale))
            )
        elif experiment == "table2":
            print(render_table2(run_table2(args.workloads, scale=args.scale)))
        elif experiment == "speedups":
            rows = run_table2(args.workloads, scale=args.scale)
            print(render_speedups(project_speedups(rows)))
        print(f"[{experiment}: {time.time() - start:.1f}s]\n", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
