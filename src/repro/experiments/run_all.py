"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

Options::

    python -m repro.experiments.run_all --scale 0.5 --only table2
    python -m repro.experiments.run_all --workloads 179.art 181.mcf
    python -m repro.experiments.run_all --jobs 4 --seed 7 --runlog run.jsonl
    python -m repro.experiments.run_all --server http://127.0.0.1:8321

Every experiment fans its workloads out as jobs through
:mod:`repro.runtime`: ``--jobs N`` runs them over N worker processes,
finished jobs are cached in ``.repro-cache/`` (re-runs and interrupted
runs resume from it; ``--no-cache`` disables), and per-job progress
streams to stderr.  Tables are rendered from job payloads in workload
order, so parallel output is byte-identical to serial output.

The output of a full run (scale 1.0) is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro.experiments.figure3 import render_figure3, run_figure3_with_runtime
from repro.experiments.figures45 import render_figures45, run_figures45
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.speedups import project_speedups, render_speedups
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.workloads import WORKLOAD_NAMES
from repro.runtime.scheduler import ExperimentRuntime, runtime_from_args

_EXPERIMENTS = ("figure3", "table1", "figures45", "table2", "speedups")


def _run_experiment(
    experiment: str,
    args: argparse.Namespace,
    runtime: ExperimentRuntime,
    table2_memo: "dict[str, list]",
) -> str:
    """Produce one experiment's rendered report."""
    if experiment == "population":
        from repro.experiments.variants import render_population, run_population

        reports = []
        for name in args.workloads:
            result = run_population(
                name, scale=args.scale, seed=args.seed, runtime=runtime
            )
            reports.append(render_population(result))
        return "\n".join(reports)
    if experiment == "figure3":
        return render_figure3(run_figure3_with_runtime(runtime))
    if experiment == "table1":
        return render_table1(
            run_table1(
                args.workloads, scale=args.scale, seed=args.seed, runtime=runtime
            )
        )
    if experiment == "figures45":
        return render_figures45(
            run_figures45(
                args.workloads, scale=args.scale, seed=args.seed, runtime=runtime
            )
        )
    # table2 and speedups share the same underlying rows; memoise so one
    # invocation selecting both simulates each workload once even with
    # the cache disabled.
    if "rows" not in table2_memo:
        if args.segments:
            from repro.experiments.table2 import run_table2_segmented

            table2_memo["rows"] = run_table2_segmented(
                args.workloads,
                scale=args.scale,
                seed=args.seed,
                runtime=runtime,
                segments=args.segments,
            )
        else:
            table2_memo["rows"] = run_table2(
                args.workloads,
                scale=args.scale,
                seed=args.seed,
                runtime=runtime,
                obs_dir=args.obs,
            )
    if experiment == "table2":
        return render_table2(table2_memo["rows"])
    if experiment == "speedups":
        return render_speedups(project_speedups(table2_memo["rows"]))
    raise ValueError(f"unknown experiment {experiment!r}")


def _finalize_obs(obs_dir: str) -> None:
    """Aggregate every per-job trace, the bridged scheduler runlog, and
    the kernel phase spans into ``<obs_dir>/trace.json`` plus the
    machine-readable ``<obs_dir>/sweep_summary.json`` (best-effort:
    never fails the run)."""
    try:
        from repro.obs.aggregate import write_aggregate

        paths = write_aggregate(obs_dir)
        print(
            f"[obs] merged trace: {paths['trace']} — "
            "load at https://ui.perfetto.dev",
            file=sys.stderr,
        )
        print(f"[obs] sweep summary: {paths['summary']}", file=sys.stderr)
    except Exception as exc:  # noqa: BLE001 - telemetry must not fail runs
        print(f"[obs] trace merge failed: {exc}", file=sys.stderr)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale")
    parser.add_argument(
        "--only",
        choices=_EXPERIMENTS,
        action="append",
        help="run only these experiments (repeatable)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(WORKLOAD_NAMES),
        help="subset of workload names",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="re-derive every stochastic trace stream from this seed "
        "(default: the calibrated per-workload seeds)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = in-process serial, for debugging)",
    )
    parser.add_argument(
        "--population",
        action="store_true",
        help="run the variant population sweep instead of the paper "
        "experiments: every chip variant replays one shared L1-filter "
        "record per workload (fork-inherited or shared-memory; see "
        "docs/performance.md)",
    )
    parser.add_argument(
        "--segments",
        type=int,
        default=None,
        metavar="K",
        help="replay the table2/speedups chip pass segment-parallel: "
        "capture K exact snapshots per workload and fan one runtime "
        "job per segment (digest-verified stitch; bit-identical rows)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock limit in seconds (parallel mode)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--runlog",
        default=None,
        help="append structured per-job events to this JSONL file",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="journal completed jobs to this JSONL file and resume "
        "from it: a killed run restarted with the same checkpoint "
        "recomputes only the jobs that were in flight (works even "
        "with --no-cache)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress lines on stderr",
    )
    parser.add_argument(
        "--obs",
        default=None,
        metavar="DIR",
        help="write observability artifacts (per-job metrics/events/"
        "Chrome traces + bridged scheduler runlog + merged trace.json) "
        "into this directory; table2 jobs run instrumented",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="dump a cProfile .prof per executed job into the --obs "
        "directory (or next to the --runlog, or ./profiles)",
    )
    parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="submit jobs to a running repro.service instance at URL "
        "instead of forking local workers (shares its queue, dedup, "
        "and result cache with every other client)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.segments is not None and args.segments < 1:
        parser.error(f"--segments must be >= 1, got {args.segments}")
    if args.segments and args.obs:
        parser.error(
            "--segments replays the chip pass through the probe-free "
            "specialized kernels; --obs needs instrumented runs and "
            "cannot be combined with it"
        )
    if args.server and (args.obs or args.profile or args.checkpoint):
        parser.error(
            "--server executes on the remote service; --obs/--profile/"
            "--checkpoint instrument local execution and cannot be "
            "combined with it"
        )
    if args.population and args.only:
        parser.error(
            "--population is its own experiment pass and cannot be "
            "combined with --only"
        )
    if args.population and args.server:
        parser.error(
            "--population coordinates record sharing locally and cannot "
            "be combined with --server"
        )
    selected = (
        ["population"] if args.population else (args.only or list(_EXPERIMENTS))
    )
    profile_dir = None
    if args.profile:
        from pathlib import Path

        if args.obs:
            profile_dir = str(Path(args.obs) / "profiles")
        elif args.runlog:
            profile_dir = str(Path(args.runlog).parent / "profiles")
        else:
            profile_dir = "profiles"
    if args.server:
        from repro.runtime.events import EventBus, JsonlSink, StderrSink
        from repro.service.client import RemoteRuntime, ServiceClient

        sinks: "list[object]" = [] if args.quiet else [StderrSink()]
        if args.runlog:
            sinks.append(JsonlSink(args.runlog))
        runtime = RemoteRuntime(ServiceClient(args.server), bus=EventBus(sinks))
    else:
        runtime = runtime_from_args(
            jobs=args.jobs,
            timeout=args.timeout,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            runlog=args.runlog,
            quiet=args.quiet,
            profile_dir=profile_dir,
            checkpoint=args.checkpoint,
        )
    if args.obs:
        from pathlib import Path

        from repro.obs.bridge import ObsRunlogSink

        runtime.bus.add(ObsRunlogSink(Path(args.obs) / "runtime.jsonl"))

    start = time.time()
    failures: "list[tuple[str, str]]" = []
    completed = 0
    table2_memo: "dict[str, list]" = {}
    try:
        for experiment in selected:
            experiment_start = time.time()
            interrupted_before = runtime.stats.interrupted
            try:
                print(_run_experiment(experiment, args, runtime, table2_memo))
            except KeyboardInterrupt:
                failures.append((experiment, "interrupted"))
                print(f"[{experiment}: interrupted]", file=sys.stderr)
                break
            except Exception as exc:  # noqa: BLE001 - keep running the rest
                # The scheduler drains Ctrl-C into ``interrupted`` outcomes
                # rather than re-raising; a Ctrl-C must stop the whole run,
                # not fall through to the next experiment.
                if runtime.stats.interrupted > interrupted_before:
                    failures.append((experiment, "interrupted"))
                    print(f"[{experiment}: interrupted]", file=sys.stderr)
                    break
                failures.append((experiment, f"{type(exc).__name__}: {exc}"))
                traceback.print_exc()
                print(f"[{experiment}: FAILED]", file=sys.stderr)
                continue
            completed += 1
            print(
                f"[{experiment}: {time.time() - experiment_start:.1f}s]\n",
                file=sys.stderr,
            )
    finally:
        # Flush/close event sinks even on Ctrl-C so run logs (and the
        # bridged obs runlog) are never truncated.
        runtime.close()

    if args.obs:
        _finalize_obs(args.obs)
    if profile_dir:
        print(
            f"[profile] per-job cProfile dumps in {profile_dir}/ "
            "(inspect with python -m pstats)",
            file=sys.stderr,
        )

    stats = runtime.stats
    wall = time.time() - start
    summary = (
        f"run_all: {completed}/{len(selected)} experiments ok, "
        f"{stats.executed} jobs run, {stats.cache_hits} cache hits, "
        f"{stats.failed} job failures, {wall:.1f}s wall"
    )
    if failures:
        summary += "; FAILED: " + ", ".join(
            f"{name} ({reason})" for name, reason in failures
        )
    print(summary, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
