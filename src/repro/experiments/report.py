"""Shared rendering helpers for the experiment drivers."""

from __future__ import annotations

from typing import Sequence

from repro.common.tables import TextTable


def ascii_curve(values: "Sequence[float]", width: int = 40) -> str:
    """Render a 0..1-valued series as a one-line bar sparkline.

    Used to eyeball the Figure 4/5 profile shapes in terminal reports.
    """
    glyphs = " .:-=+*#%@"
    cells = []
    for value in values:
        clamped = min(1.0, max(0.0, value))
        cells.append(glyphs[min(len(glyphs) - 1, int(clamped * (len(glyphs) - 1) + 0.5))])
    return "".join(cells)


def ratio_cell(value: float) -> str:
    """Table 2's "ratio" column format (two decimals)."""
    if value != value:  # NaN: baseline had no misses
        return "-"
    return f"{value:.2f}"


def section(title: str) -> str:
    rule = "=" * len(title)
    return f"{title}\n{rule}"


def render_rows(columns: "Sequence[str]", rows: "Sequence[Sequence[object]]") -> str:
    table = TextTable(columns)
    for row in rows:
        table.add_row(row)
    return table.render()


def counters_section(title: str, counters: "dict[str, object]") -> str:
    """Render a flat counter dict (e.g. ``ChipStats.to_dict()``) as a
    titled two-column table — the one place stats dicts get formatted,
    instead of each caller reaching into attributes ad hoc."""
    body = render_rows(
        ["counter", "value"],
        [
            [name, f"{value:,}" if isinstance(value, int) else value]
            for name, value in counters.items()
        ],
    )
    return section(title) + "\n" + body
