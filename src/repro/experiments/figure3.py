"""Figure 3: affinity dynamics on Circular and HalfRandom(300).

The paper plots the per-element affinity ``A_e`` for ``e ∈ [0, 4000)``
with ``|R| = 100`` after 20k, 100k and 1000k references, for the two
behaviours of section 3.3, annotated with the transition frequency
(1/2000 for Circular and 1/300 for HalfRandom at t = 100k).

This driver runs a 2-way mechanism with an unbounded store (the
Figure 3 setting has no filter, no sampling, no caches) and snapshots
the affinity array at the same three instants, reporting per-snapshot
summary statistics and the raw series for plotting.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from itertools import islice
from typing import Sequence

import numpy as np

from repro.core.affinity_store import UnboundedAffinityStore
from repro.core.mechanism import SplitMechanism
from repro.experiments.report import render_rows, section
from repro.runtime import Job, payloads
from repro.traces.synthetic import Circular, HalfRandom

PAPER_SNAPSHOT_TIMES = (20_000, 100_000, 1_000_000)


@dataclass(frozen=True)
class Figure3Snapshot:
    """Affinity state of one behaviour at one instant."""

    behavior: str
    time: int
    affinities: "tuple[int, ...]"  #: A_e for e in [0, N)
    transitions_so_far: int
    tail_transition_frequency: float  #: over the last snapshot interval

    @property
    def positive_count(self) -> int:
        return sum(1 for a in self.affinities if a >= 0)

    @property
    def balance(self) -> float:
        """Fraction of elements with positive affinity (0.5 = balanced)."""
        if not self.affinities:
            return 0.5
        return self.positive_count / len(self.affinities)

    @property
    def sign_runs(self) -> int:
        """Number of contiguous same-sign runs over element index — the
        visual "pieces" of the Figure 3 plots (2 = optimal split)."""
        runs = 1
        previous = self.affinities[0] >= 0
        for value in self.affinities[1:]:
            current = value >= 0
            if current != previous:
                runs += 1
            previous = current
        return runs


def run_figure3(
    num_elements: int = 4000,
    window_size: int = 100,
    snapshot_times: "Sequence[int]" = PAPER_SNAPSHOT_TIMES,
    half_random_burst: int = 300,
) -> "dict[str, list[Figure3Snapshot]]":
    """Run both behaviours, snapshotting at the paper's instants."""
    snapshot_times = sorted(snapshot_times)
    behaviors = {
        "Circular": Circular(num_elements),
        f"HalfRandom({half_random_burst})": HalfRandom(
            num_elements, half_random_burst
        ),
    }
    results: "dict[str, list[Figure3Snapshot]]" = {}
    for label, behavior in behaviors.items():
        mechanism = SplitMechanism(window_size, UnboundedAffinityStore())
        snapshots: "list[Figure3Snapshot]" = []
        transitions = 0
        previous_sign = None
        last_time = 0
        last_transitions = 0
        stream = behavior.addresses(snapshot_times[-1])
        t = 0
        # The stream is consumed in snapshot-to-snapshot segments so the
        # mechanism can run its batched fast path between instants; the
        # sign-transition count over each segment is vectorised.
        for target in snapshot_times:
            segment = list(islice(stream, target - t))
            affinities = mechanism.process_many(segment)
            t += len(segment)
            if affinities:
                signs = np.asarray(affinities, dtype=np.int64) >= 0
                if previous_sign is not None and bool(signs[0]) != previous_sign:
                    transitions += 1
                transitions += int(np.count_nonzero(signs[1:] != signs[:-1]))
                previous_sign = bool(signs[-1])
            if t != target:
                break  # stream exhausted before this instant
            interval = max(1, t - last_time)
            snapshots.append(
                Figure3Snapshot(
                    behavior=label,
                    time=t,
                    affinities=tuple(
                        mechanism.affinity_of(e) or 0
                        for e in range(num_elements)
                    ),
                    transitions_so_far=transitions,
                    tail_transition_frequency=(
                        (transitions - last_transitions) / interval
                    ),
                )
            )
            last_time = t
            last_transitions = transitions
        results[label] = snapshots
    return results


def figure3_job(
    num_elements: int = 4000,
    window_size: int = 100,
    half_random_burst: int = 300,
) -> "dict[str, object]":
    """Runtime job: both Figure 3 behaviours as a JSON-able payload."""
    results = run_figure3(
        num_elements=num_elements,
        window_size=window_size,
        half_random_burst=half_random_burst,
    )
    return {
        "results": {
            label: [asdict(snapshot) for snapshot in snapshots]
            for label, snapshots in results.items()
        },
        # both behaviours stream up to the last snapshot instant
        "references": len(results) * max(PAPER_SNAPSHOT_TIMES),
    }


def figure3_from_payload(
    payload: "dict[str, object]",
) -> "dict[str, list[Figure3Snapshot]]":
    return {
        label: [
            Figure3Snapshot(
                behavior=d["behavior"],
                time=d["time"],
                affinities=tuple(d["affinities"]),
                transitions_so_far=d["transitions_so_far"],
                tail_transition_frequency=d["tail_transition_frequency"],
            )
            for d in snapshots
        ]
        for label, snapshots in payload["results"].items()
    }


def run_figure3_with_runtime(runtime) -> "dict[str, list[Figure3Snapshot]]":
    """Run (or fetch from cache) Figure 3 as one runtime job."""
    job = Job.create(
        "repro.experiments.figure3:figure3_job", label="figure3"
    )
    return figure3_from_payload(payloads(runtime.map([job]))[0])


def render_figure3(results: "dict[str, list[Figure3Snapshot]]") -> str:
    """Summary table (the raw series are in the snapshots for plotting)."""
    rows = []
    for label, snapshots in results.items():
        for snap in snapshots:
            rows.append(
                [
                    label,
                    f"{snap.time:,}",
                    f"{snap.balance:.3f}",
                    snap.sign_runs,
                    f"{snap.tail_transition_frequency:.5f}",
                ]
            )
    body = render_rows(
        ["behavior", "t", "balance", "sign runs", "trans freq (interval)"], rows
    )
    return (
        section("Figure 3: affinity dynamics (|R|=100, N=4000)") + "\n" + body
    )
