"""The 18-benchmark registry of the paper's evaluation (Table 1).

13 SPEC CPU2000 models (:mod:`repro.traces.spec_models`) and 5
mini-Olden programs (:mod:`repro.olden`), addressable by the paper's
names.  A global ``scale`` knob shrinks every workload proportionally —
1.0 is this reproduction's standard size (10^6-10^7 references per
workload; the paper ran 10^9 instructions), and the test suite uses
much smaller scales.

Olden traces are cached per (name, scale) because building them means
actually running the benchmark — in memory per process (``lru_cache``)
and on disk across processes: :meth:`WorkloadSpec.arrays` memoises each
generated Olden trace as a ``file_format`` npz under the runtime cache
dir, keyed by (workload, scale, seed, code version), so repeated sweep
jobs skip pure-Python trace regeneration entirely.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.olden import OLDEN_BENCHMARKS, olden_benchmark
from repro.traces.spec_models import spec_model, spec_model_names
from repro.traces.trace import Access

#: Paper order: SPEC first, then Olden (Tables 1-2, Figures 4-5).
WORKLOAD_NAMES = tuple(spec_model_names()) + OLDEN_BENCHMARKS


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, scaled workload that can produce its trace repeatedly.

    ``seed`` re-derives every stochastic stream in the workload's trace
    generator; ``None`` keeps the calibrated per-workload defaults.
    Either way the trace is a pure function of ``(name, scale, seed)``,
    so serial and parallel runs — in any execution order — are
    bit-identical.
    """

    name: str
    scale: float = 1.0
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.name not in WORKLOAD_NAMES:
            raise KeyError(
                f"unknown workload {self.name!r}; known: {WORKLOAD_NAMES}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def is_olden(self) -> bool:
        return self.name in OLDEN_BENCHMARKS

    def accesses(self) -> "Iterator[Access]":
        """The workload's access trace (deterministic, replayable)."""
        if self.is_olden:
            return _olden_trace(self.name, self.scale, self.seed).accesses()
        model = spec_model(self.name, seed=self.seed)
        # Scale each model's own calibrated default length (2-6 x 10^6;
        # the splittable models carry longer defaults for convergence).
        model.length = max(10_000, int(model.length * self.scale))
        return model.accesses()

    def arrays(self):
        """The trace as ``(addresses, kinds, instructions)`` arrays.

        Olden traces go through the on-disk npz memo (generation means
        actually running the benchmark); SPEC models are cheap streams
        and are just materialised.
        """
        if self.is_olden:
            return _olden_arrays(self.name, self.scale, self.seed)
        from repro.kernels.arrays import trace_to_arrays

        return trace_to_arrays(self.accesses())


@lru_cache(maxsize=8)
def _olden_trace(name: str, scale: float, seed: "int | None" = None):
    return olden_benchmark(name, scale=scale, seed=seed)


def olden_trace_path(name: str, scale: float, seed: "int | None" = None):
    """Where :meth:`WorkloadSpec.arrays` memoises this Olden trace.

    Lives under the runtime result cache's current code generation, so
    editing simulator source invalidates trace memos alongside result
    artifacts (``repro.runtime.cache``).
    """
    from repro.runtime.cache import code_fingerprint, default_cache_root

    stem = f"olden-{name}-s{scale}-r{'default' if seed is None else seed}"
    return default_cache_root() / code_fingerprint() / "traces" / f"{stem}.npz"


def _olden_arrays(name: str, scale: float, seed: "int | None"):
    from repro.traces.file_format import load_trace, save_trace_arrays

    path = olden_trace_path(name, scale, seed)
    if path.is_file():
        try:
            return load_trace(path).arrays()
        except (OSError, ValueError, KeyError):
            pass  # corrupt/stale memo: fall through and regenerate
    arrays = _olden_trace(name, scale, seed).arrays()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=str(path.parent), prefix=".tmp-", suffix=".npz", delete=False
        )
        try:
            with handle:
                save_trace_arrays(handle, *arrays)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
    except OSError:
        pass  # read-only cache dir: memo is an optimisation, not a need
    return arrays


def workload(
    name: str, scale: float = 1.0, seed: "int | None" = None
) -> WorkloadSpec:
    """Look up one workload by its paper name (e.g. ``"179.art"``)."""
    return WorkloadSpec(name=name, scale=scale, seed=seed)


def workload_names() -> "list[str]":
    return list(WORKLOAD_NAMES)
