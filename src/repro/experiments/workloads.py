"""The 18-benchmark registry of the paper's evaluation (Table 1).

13 SPEC CPU2000 models (:mod:`repro.traces.spec_models`) and 5
mini-Olden programs (:mod:`repro.olden`), addressable by the paper's
names.  A global ``scale`` knob shrinks every workload proportionally —
1.0 is this reproduction's standard size (10^6-10^7 references per
workload; the paper ran 10^9 instructions), and the test suite uses
much smaller scales.

Olden traces are cached per (name, scale) because building them means
actually running the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.olden import OLDEN_BENCHMARKS, olden_benchmark
from repro.traces.spec_models import spec_model, spec_model_names
from repro.traces.trace import Access

#: Paper order: SPEC first, then Olden (Tables 1-2, Figures 4-5).
WORKLOAD_NAMES = tuple(spec_model_names()) + OLDEN_BENCHMARKS


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, scaled workload that can produce its trace repeatedly.

    ``seed`` re-derives every stochastic stream in the workload's trace
    generator; ``None`` keeps the calibrated per-workload defaults.
    Either way the trace is a pure function of ``(name, scale, seed)``,
    so serial and parallel runs — in any execution order — are
    bit-identical.
    """

    name: str
    scale: float = 1.0
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.name not in WORKLOAD_NAMES:
            raise KeyError(
                f"unknown workload {self.name!r}; known: {WORKLOAD_NAMES}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def is_olden(self) -> bool:
        return self.name in OLDEN_BENCHMARKS

    def accesses(self) -> "Iterator[Access]":
        """The workload's access trace (deterministic, replayable)."""
        if self.is_olden:
            return _olden_trace(self.name, self.scale, self.seed).accesses()
        model = spec_model(self.name, seed=self.seed)
        # Scale each model's own calibrated default length (2-6 x 10^6;
        # the splittable models carry longer defaults for convergence).
        model.length = max(10_000, int(model.length * self.scale))
        return model.accesses()


@lru_cache(maxsize=8)
def _olden_trace(name: str, scale: float, seed: "int | None" = None):
    return olden_benchmark(name, scale=scale, seed=seed)


def workload(
    name: str, scale: float = 1.0, seed: "int | None" = None
) -> WorkloadSpec:
    """Look up one workload by its paper name (e.g. ``"179.art"``)."""
    return WorkloadSpec(name=name, scale=scale, seed=seed)


def workload_names() -> "list[str]":
    return list(WORKLOAD_NAMES)
