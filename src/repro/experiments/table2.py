"""Table 2: the four-core processor with 512-KB L2 caches.

For every benchmark the paper reports, in instructions per event
(higher is better): L1 misses, L2 misses on a single core ("normal"),
L2 misses with migrations enabled ("4xL2"), the miss ratio
``misses_with_migration / misses_baseline`` (below 1 = migration
removed misses), and the number of migrations.

This driver runs each workload twice over the identical trace: once
through the single-core hierarchy (baseline) and once through the
migration-mode chip (section 4.2 configuration), then derives the
paper's columns plus the break-even ``P_mig``.

Both passes replay the workload's shared
:class:`~repro.kernels.l1filter.L1FilterRecord` (the L1 stage is
simulated once per trace and geometry, cached on disk), which is
bit-identical to feeding the raw trace through ``chip.run`` — see
``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from repro.caches.hierarchy import SingleCoreHierarchy
from repro.experiments.report import ratio_cell, render_rows, section
from repro.experiments.workloads import WORKLOAD_NAMES
from repro.kernels.l1filter import ensure_l1_filter
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.multicore.migration import break_even_pmig
from repro.runtime import Job, payloads


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's Table 2 entry (raw counts; per-event views below)."""

    name: str
    instructions: int
    l1_misses: int
    l2_misses_baseline: int
    l2_misses_migrating: int
    migrations: int
    accesses: int = 0  #: trace references per pass (work-volume metric)

    def _per(self, events: int) -> float:
        return self.instructions / events if events else float("inf")

    @property
    def instr_per_l1_miss(self) -> float:
        return self._per(self.l1_misses)

    @property
    def instr_per_l2_miss(self) -> float:
        return self._per(self.l2_misses_baseline)

    @property
    def instr_per_4xl2_miss(self) -> float:
        return self._per(self.l2_misses_migrating)

    @property
    def ratio(self) -> float:
        """``misses_with_migration / misses_baseline`` — Table 2's
        "ratio"; < 1 means execution migration removed L2 misses."""
        if self.l2_misses_baseline == 0:
            return float("nan")
        return self.l2_misses_migrating / self.l2_misses_baseline

    @property
    def instr_per_migration(self) -> float:
        return self._per(self.migrations)

    @property
    def break_even_pmig(self) -> float:
        """Max relative migration penalty at which migration still wins."""
        return break_even_pmig(
            self.instructions,
            self.l2_misses_baseline,
            self.l2_misses_migrating,
            self.migrations,
        )


def run_table2_for(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    obs_dir: "str | None" = None,
) -> Table2Row:
    """Run baseline + migrating chip for one workload.

    With ``obs_dir``, both passes run instrumented
    (:class:`~repro.obs.probe.SimProbe`) and write their telemetry
    artifact triples (metrics/events/Chrome trace) into that directory.
    """
    from repro.obs import trace_context

    record, _cached = ensure_l1_filter(name, scale=scale, seed=seed)
    baseline_probe = chip_probe = None
    if obs_dir is not None:
        from repro.obs import SimProbe

        baseline_probe = SimProbe(name="baseline")
        chip_probe = SimProbe(name="chip")
    baseline = SingleCoreHierarchy(probe=baseline_probe)
    with trace_context.phase("replay.baseline", workload=name):
        baseline.run_filtered(record)
    chip = MultiCoreChip(ChipConfig(), probe=chip_probe)
    with trace_context.phase("replay.chip", workload=name):
        chip.run_filtered(record)
    if obs_dir is not None:
        from pathlib import Path

        from repro.obs import save_report

        save_report(
            baseline_probe.report(workload=name, run="baseline"),
            obs_dir,
            f"table2-{name}-baseline",
        )
        save_report(
            chip_probe.report(workload=name, run="chip"),
            obs_dir,
            f"table2-{name}-chip",
        )
        # Kernel phase spans (L1-filter load/build, both replay passes)
        # join the obs artifacts; the aggregate merger parents them to
        # this job's span via the propagated trace context.
        trace_context.write_phases(Path(obs_dir) / "phases.jsonl")
    else:
        trace_context.drain_phases()  # bounded either way; keep it empty
    chip_stats = chip.stats.to_dict()
    return Table2Row(
        name=name,
        instructions=chip_stats["instructions"],
        l1_misses=chip.stats.l1_misses,
        l2_misses_baseline=baseline.stats.l2_misses,
        l2_misses_migrating=chip_stats["l2_misses"],
        migrations=chip_stats["migrations"],
        accesses=chip_stats["accesses"],
    )


def table2_job(
    name: str,
    scale: float = 1.0,
    seed: "int | None" = None,
    obs_dir: "str | None" = None,
) -> "dict[str, object]":
    """Runtime job: one Table 2 row as a JSON-able payload."""
    row = run_table2_for(name, scale=scale, seed=seed, obs_dir=obs_dir)
    payload = asdict(row)
    # The identical trace runs through the baseline and the chip.
    payload["references"] = 2 * row.accesses
    return payload


def table2_row_from_payload(payload: "dict[str, object]") -> Table2Row:
    return Table2Row(
        name=payload["name"],
        instructions=payload["instructions"],
        l1_misses=payload["l1_misses"],
        l2_misses_baseline=payload["l2_misses_baseline"],
        l2_misses_migrating=payload["l2_misses_migrating"],
        migrations=payload["migrations"],
        accesses=payload.get("accesses", 0),
    )


def table2_jobs(
    names: "Sequence[str]" = WORKLOAD_NAMES,
    scale: float = 1.0,
    seed: "int | None" = None,
    obs_dir: "str | None" = None,
) -> "list[Job]":
    # obs_dir joins the job params (and so the content hash) only when
    # set, keeping plain runs' cache keys path-independent.
    extra = {"obs_dir": obs_dir} if obs_dir is not None else {}
    return [
        Job.create(
            "repro.experiments.table2:table2_job",
            label=f"table2/{name}",
            name=name,
            scale=scale,
            seed=seed,
            **extra,
        )
        for name in names
    ]


def run_table2(
    names: "Sequence[str]" = WORKLOAD_NAMES,
    scale: float = 1.0,
    seed: "int | None" = None,
    runtime=None,
    obs_dir: "str | None" = None,
) -> "list[Table2Row]":
    """Regenerate Table 2, serially or fanned out through a runtime."""
    if runtime is None:
        return [
            run_table2_for(name, scale=scale, seed=seed, obs_dir=obs_dir)
            for name in names
        ]
    outcomes = runtime.map(
        table2_jobs(names, scale=scale, seed=seed, obs_dir=obs_dir)
    )
    return [table2_row_from_payload(p) for p in payloads(outcomes)]


def run_table2_segmented(
    names: "Sequence[str]" = WORKLOAD_NAMES,
    scale: float = 1.0,
    seed: "int | None" = None,
    runtime=None,
    segments: int = 2,
) -> "list[Table2Row]":
    """Table 2 with the chip pass replayed segment-parallel.

    The baseline hierarchy replays serially in the driver (one pass per
    workload); the migration-mode chip pass runs through
    :func:`repro.kernels.segmented.run_segmented` — snapshot capture,
    one runtime job per segment, digest-verified stitch.  Rows are
    bit-identical to :func:`run_table2`'s (the stitch raises on any
    divergence rather than returning approximate rows).
    """
    from repro.kernels.segmented import run_segmented

    rows = []
    for name in names:
        record, _cached = ensure_l1_filter(name, scale=scale, seed=seed)
        baseline = SingleCoreHierarchy()
        baseline.run_filtered(record)
        stitched = run_segmented(
            name, scale=scale, seed=seed, segments=segments, runtime=runtime
        )
        stats = stitched.stats
        rows.append(
            Table2Row(
                name=name,
                instructions=stats.instructions,
                l1_misses=stats.l1_misses,
                l2_misses_baseline=baseline.stats.l2_misses,
                l2_misses_migrating=stats.l2_misses,
                migrations=stats.migrations,
                accesses=stats.accesses,
            )
        )
    return rows


def _per_cell(value: float) -> str:
    if value == float("inf"):
        return "-"
    return f"{value:,.0f}"


def render_table2(rows: "Sequence[Table2Row]") -> str:
    body = render_rows(
        [
            "benchmark",
            "L1 miss",
            "L2 miss",
            "4xL2 miss",
            "ratio",
            "migration",
            "breakeven Pmig",
        ],
        [
            [
                row.name,
                _per_cell(row.instr_per_l1_miss),
                _per_cell(row.instr_per_l2_miss),
                _per_cell(row.instr_per_4xl2_miss),
                ratio_cell(row.ratio),
                _per_cell(row.instr_per_migration),
                (
                    f"{row.break_even_pmig:.0f}"
                    if row.break_even_pmig not in (float("inf"),)
                    else "-"
                ),
            ]
            for row in rows
        ],
    )
    return (
        section(
            "Table 2: 4-core / 512-KB L2s — instructions per event "
            "(higher is better)"
        )
        + "\n"
        + body
    )
