"""Speedup projection: Table 2 rows → performance gains vs ``P_mig``.

The paper deliberately reports event frequencies, not cycles ("We make
no assumption on the value of P_mig"), and argues in break-even terms.
This driver makes the implied final step explicit: feed a Table 2 row
into the first-order timing model and report the projected speedup of
execution migration for a range of assumed relative migration
penalties — the "potential for improving the performance of certain
sequential programs, without degrading significantly the performance of
others" of the abstract, as one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.report import render_rows, section
from repro.experiments.table2 import Table2Row
from repro.multicore.timing import TimingModel, speedup_curve

PAPER_PMIG_VALUES = (1, 5, 10, 20, 50, 100)


@dataclass(frozen=True)
class SpeedupRow:
    """Projected migration speedups for one benchmark."""

    name: str
    break_even_pmig: float
    speedups: "tuple[float, ...]"  #: one per PAPER_PMIG_VALUES entry


def project_speedups(
    rows: "Sequence[Table2Row]",
    model: "TimingModel | None" = None,
    pmig_values: "Sequence[float]" = PAPER_PMIG_VALUES,
) -> "list[SpeedupRow]":
    """Convert Table 2 rows into speedup-vs-P_mig projections."""
    model = model or TimingModel()
    projected = []
    for row in rows:
        curve = speedup_curve(
            model,
            instructions=row.instructions,
            l1_misses=row.l1_misses,
            l2_misses_baseline=row.l2_misses_baseline,
            l2_misses_migrating=row.l2_misses_migrating,
            migrations=row.migrations,
            pmig_values=pmig_values,
        )
        projected.append(
            SpeedupRow(
                name=row.name,
                break_even_pmig=row.break_even_pmig,
                speedups=tuple(point.speedup for point in curve),
            )
        )
    return projected


def render_speedups(
    rows: "Sequence[SpeedupRow]",
    pmig_values: "Sequence[float]" = PAPER_PMIG_VALUES,
) -> str:
    body = render_rows(
        ["benchmark", *(f"Pmig={int(p)}" for p in pmig_values), "break-even"],
        [
            [
                row.name,
                *(f"{s:.3f}" for s in row.speedups),
                (
                    "-"
                    if row.break_even_pmig == float("inf")
                    else f"{row.break_even_pmig:.0f}"
                ),
            ]
            for row in rows
        ],
    )
    return (
        section("Projected speedup of execution migration vs assumed P_mig")
        + "\n"
        + body
    )
