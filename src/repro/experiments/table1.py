"""Table 1: benchmark inventory.

The paper's Table 1 lists, per benchmark, the input, the number of
dynamic instructions simulated, and the IL1/DL1 miss counts through
16-KB fully-associative LRU L1s with 64-byte lines.  This driver
regenerates the same columns for the 18 modelled workloads (at this
reproduction's scale — all quantities are also reported per 1000
instructions so shapes compare directly with the paper's
millions-per-billion).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from repro.experiments.report import render_rows, section
from repro.experiments.workloads import WORKLOAD_NAMES, workload
from repro.runtime import Job, payloads
from repro.traces.filters import L1Filter, L1FilterConfig


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's inventory entry."""

    name: str
    accesses: int
    instructions: int
    il1_misses: int
    dl1_misses: int

    @property
    def il1_per_kilo_instruction(self) -> float:
        return 1000.0 * self.il1_misses / max(1, self.instructions)

    @property
    def dl1_per_kilo_instruction(self) -> float:
        return 1000.0 * self.dl1_misses / max(1, self.instructions)


def run_table1_for(
    name: str, scale: float = 1.0, seed: "int | None" = None
) -> Table1Row:
    """Measure one workload through the section 4.1 L1 filters."""
    spec = workload(name, scale=scale, seed=seed)
    l1 = L1Filter(L1FilterConfig())
    for _ in l1.filter(spec.accesses()):
        pass
    return Table1Row(
        name=name,
        accesses=l1.accesses,
        instructions=l1.instructions,
        il1_misses=l1.il1_misses,
        dl1_misses=l1.dl1_misses,
    )


def table1_job(
    name: str, scale: float = 1.0, seed: "int | None" = None
) -> "dict[str, object]":
    """Runtime job: one Table 1 row as a JSON-able payload."""
    row = run_table1_for(name, scale=scale, seed=seed)
    payload = asdict(row)
    payload["references"] = row.accesses
    return payload


def table1_row_from_payload(payload: "dict[str, object]") -> Table1Row:
    return Table1Row(
        name=payload["name"],
        accesses=payload["accesses"],
        instructions=payload["instructions"],
        il1_misses=payload["il1_misses"],
        dl1_misses=payload["dl1_misses"],
    )


def table1_jobs(
    names: "Sequence[str]" = WORKLOAD_NAMES,
    scale: float = 1.0,
    seed: "int | None" = None,
) -> "list[Job]":
    return [
        Job.create(
            "repro.experiments.table1:table1_job",
            label=f"table1/{name}",
            name=name,
            scale=scale,
            seed=seed,
        )
        for name in names
    ]


def run_table1(
    names: "Sequence[str]" = WORKLOAD_NAMES,
    scale: float = 1.0,
    seed: "int | None" = None,
    runtime=None,
) -> "list[Table1Row]":
    """Measure every workload through the section 4.1 L1 filters.

    With a :class:`~repro.runtime.ExperimentRuntime`, workloads fan out
    as one cached job each; without one, they run serially in-process.
    """
    if runtime is None:
        return [run_table1_for(name, scale=scale, seed=seed) for name in names]
    outcomes = runtime.map(table1_jobs(names, scale=scale, seed=seed))
    return [table1_row_from_payload(p) for p in payloads(outcomes)]


def render_table1(rows: "Sequence[Table1Row]") -> str:
    """Text rendering in the paper's column layout."""
    body = render_rows(
        ["benchmark", "instr", "IL1 miss", "DL1 miss", "i/1k-instr", "d/1k-instr"],
        [
            [
                row.name,
                f"{row.instructions:,}",
                f"{row.il1_misses:,}",
                f"{row.dl1_misses:,}",
                f"{row.il1_per_kilo_instruction:.2f}",
                f"{row.dl1_per_kilo_instruction:.2f}",
            ]
            for row in rows
        ],
    )
    return section("Table 1: benchmarks, instruction counts, L1 misses") + "\n" + body
