"""The trace model: instruction-indexed memory references.

A *trace* is an iterable of :class:`Access` records.  Each access carries
a byte address, a kind (instruction fetch, load, or store) and the
dynamic instruction index at which it occurred, so that every metric the
paper reports per instruction ("instructions per L2 miss", Table 2) can
be recovered from a scaled-down run.

Synthetic behaviours (paper section 3.3) work directly on abstract
*element identifiers*; :class:`LineStream` is the light-weight protocol
they implement, and :func:`repro.traces.synthetic.behavior_trace` lifts a
line stream into a full byte-addressed trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple, Protocol, runtime_checkable


class AccessKind(enum.IntEnum):
    """Type of a memory reference."""

    FETCH = 0  #: instruction fetch (goes through the IL1)
    LOAD = 1  #: data read (goes through the DL1)
    STORE = 2  #: data write (write-through DL1)


class Access(NamedTuple):
    """One memory reference.

    ``address`` is a byte address; ``instruction`` is the dynamic
    instruction index of the referencing instruction (monotone
    non-decreasing along a trace).
    """

    address: int
    kind: AccessKind = AccessKind.LOAD
    instruction: int = 0

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.STORE

    @property
    def is_fetch(self) -> bool:
        return self.kind is AccessKind.FETCH


def line_address(address: int, line_size: int) -> int:
    """Map a byte address to its cache-line address (line index)."""
    return address // line_size


@runtime_checkable
class TraceSource(Protocol):
    """Anything that can produce an :class:`Access` stream.

    Implementations also expose ``name`` (for reports) and
    ``instruction_count`` *after* the trace has been fully generated
    (some sources only know it post hoc).
    """

    name: str

    def accesses(self) -> Iterator[Access]:
        """Yield the trace.  May be called more than once; each call
        restarts the trace deterministically."""
        ...


@runtime_checkable
class LineStream(Protocol):
    """Abstract element-identifier stream used by paper section 3.3.

    Elements are small integers in ``[0, num_lines)``; the affinity
    algorithm treats them as cache lines.
    """

    name: str
    num_lines: int

    def addresses(self, count: int) -> Iterator[int]:
        """Yield ``count`` element identifiers."""
        ...


@dataclass
class TraceStats:
    """Counts accumulated over a trace."""

    accesses: int = 0
    fetches: int = 0
    loads: int = 0
    stores: int = 0
    instructions: int = 0
    distinct_lines: int = 0
    _lines: set = field(default_factory=set, repr=False)

    def record(self, access: Access, line_size: int = 64) -> None:
        self.accesses += 1
        if access.kind is AccessKind.FETCH:
            self.fetches += 1
        elif access.kind is AccessKind.LOAD:
            self.loads += 1
        else:
            self.stores += 1
        if access.instruction >= self.instructions:
            self.instructions = access.instruction + 1
        line = line_address(access.address, line_size)
        if line not in self._lines:
            self._lines.add(line)
            self.distinct_lines += 1

    @property
    def footprint_bytes(self) -> int:
        """Working-set footprint assuming 64-byte lines by default use."""
        return self.distinct_lines * 64


def measure_trace(accesses: Iterable[Access], line_size: int = 64) -> TraceStats:
    """Consume a trace and return its :class:`TraceStats`."""
    stats = TraceStats()
    for access in accesses:
        stats.record(access, line_size)
    return stats
