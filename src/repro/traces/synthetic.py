"""Synthetic working-set behaviours (paper section 3.3).

The paper studies the affinity algorithm on two reference behaviours:

* ``Circular`` -- the infinite stream ``0, 1, ..., N-1, 0, 1, ...``.
  "Many applications exhibit this kind of working-set behavior,
  especially after filtering by a L1 cache."
* ``HalfRandom(m)`` -- ``m`` uniform-random elements from the lower half
  of ``[0, N)``, then ``m`` from the upper half, alternating forever.

This module implements both, plus the additional behaviours needed by
the calibrated SPEC-like models: uniform random (the canonical
*unsplittable* working set, section 3.4), constant stride (section 3.5
motivates the prime sampling modulus with these), interleaved streams,
phase-alternating mixtures, and replay of explicit sequences.

All behaviours implement the :class:`repro.traces.trace.LineStream`
protocol — they yield abstract element identifiers.  Use
:func:`behavior_trace` to lift one into a byte-addressed
:class:`~repro.traces.trace.Access` trace.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.common.rng import make_rng, mix_seed
from repro.traces.trace import Access, AccessKind


class Circular:
    """The stream ``0, 1, ..., N-1, 0, 1, ...`` over ``num_lines`` elements."""

    def __init__(self, num_lines: int, start: int = 0) -> None:
        if num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {num_lines}")
        if not 0 <= start < num_lines:
            raise ValueError(f"start {start} outside [0, {num_lines})")
        self.num_lines = num_lines
        self.start = start
        self.name = f"circular-{num_lines}"

    def addresses(self, count: int) -> Iterator[int]:
        n = self.num_lines
        e = self.start
        for _ in range(count):
            yield e
            e += 1
            if e == n:
                e = 0


class HalfRandom:
    """HalfRandom(m): bursts of ``m`` uniform picks alternating between the
    lower half ``[0, N/2)`` and the upper half ``[N/2, N)`` of the set."""

    def __init__(self, num_lines: int, burst: int, seed: "int | None" = 0) -> None:
        if num_lines < 2 or num_lines % 2:
            raise ValueError(f"num_lines must be even and >= 2, got {num_lines}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.num_lines = num_lines
        self.burst = burst
        self.seed = seed
        self.name = f"halfrandom-{num_lines}-m{burst}"

    def reseed(self, seed: "int | None") -> None:
        self.seed = seed

    def addresses(self, count: int) -> Iterator[int]:
        rng = make_rng(self.seed)
        half = self.num_lines // 2
        produced = 0
        lower = True
        while produced < count:
            take = min(self.burst, count - produced)
            base = 0 if lower else half
            for value in rng.integers(0, half, size=take):
                yield base + int(value)
            produced += take
            lower = not lower


class UniformRandom:
    """Uniform random picks over ``[0, num_lines)`` -- the canonical
    *unsplittable* working set of paper section 3.4."""

    def __init__(self, num_lines: int, seed: "int | None" = 0) -> None:
        if num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {num_lines}")
        self.num_lines = num_lines
        self.seed = seed
        self.name = f"random-{num_lines}"

    def reseed(self, seed: "int | None") -> None:
        self.seed = seed

    def addresses(self, count: int) -> Iterator[int]:
        rng = make_rng(self.seed)
        remaining = count
        while remaining > 0:
            chunk = min(remaining, 65536)
            for value in rng.integers(0, self.num_lines, size=chunk):
                yield int(value)
            remaining -= chunk


class Stride:
    """Constant-stride sweep over ``[0, num_lines)``.

    Section 3.5 chooses a prime sampling modulus precisely because
    "constant-stride reference streams ... are frequent"; this behaviour
    exists to exercise that interaction.
    """

    def __init__(self, num_lines: int, stride: int = 1, start: int = 0) -> None:
        if num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {num_lines}")
        if stride == 0:
            raise ValueError("stride must be non-zero")
        self.num_lines = num_lines
        self.stride = stride
        self.start = start % num_lines
        self.name = f"stride-{num_lines}-s{stride}"

    def addresses(self, count: int) -> Iterator[int]:
        n = self.num_lines
        e = self.start
        s = self.stride
        for _ in range(count):
            yield e
            e = (e + s) % n


class PermutationCycle:
    """Cyclic traversal of a fixed random permutation of ``[0, num_lines)``.

    Models pointer chasing over a linked data structure whose layout is
    random but *stable*: the visit order repeats, so the behaviour is a
    Circular working set in disguise — splittable by the affinity
    algorithm even though addresses look random (the paper's 181.mcf is
    the motivating case).
    """

    def __init__(self, num_lines: int, seed: "int | None" = 0) -> None:
        if num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {num_lines}")
        self.num_lines = num_lines
        self.seed = seed
        self.name = f"permcycle-{num_lines}"
        self._order = make_rng(seed).permutation(num_lines)

    def reseed(self, seed: "int | None") -> None:
        self.seed = seed
        self._order = make_rng(seed).permutation(self.num_lines)

    def addresses(self, count: int) -> Iterator[int]:
        order = self._order
        n = self.num_lines
        position = 0
        for _ in range(count):
            yield int(order[position])
            position += 1
            if position == n:
                position = 0


class SequenceBehavior:
    """Replay an explicit element sequence cyclically."""

    def __init__(self, sequence: Sequence[int], name: str = "sequence") -> None:
        if not sequence:
            raise ValueError("sequence must be non-empty")
        self._sequence = list(sequence)
        self.num_lines = max(self._sequence) + 1
        self.name = name

    def addresses(self, count: int) -> Iterator[int]:
        return itertools.islice(itertools.cycle(self._sequence), count)


class PhaseAlternating:
    """Alternate between child behaviours in fixed-length phases.

    ``phases`` is a list of ``(behavior, phase_length)`` pairs; the
    stream cycles through them.  Child element identifiers are offset so
    that distinct children use disjoint identifier ranges (set
    ``disjoint=False`` to share the range instead, modelling phases over
    the *same* data).
    """

    def __init__(
        self,
        phases: "Sequence[tuple[object, int]]",
        disjoint: bool = True,
        name: str = "phases",
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self._phases = []
        offset = 0
        for behavior, length in phases:
            if length <= 0:
                raise ValueError(f"phase length must be positive, got {length}")
            self._phases.append((behavior, length, offset if disjoint else 0))
            if disjoint:
                offset += behavior.num_lines
        self.num_lines = offset if disjoint else max(b.num_lines for b, _ in phases)
        self.name = name

    def reseed(self, seed: "int | None") -> None:
        for i, (behavior, _, _) in enumerate(self._phases):
            reseed(behavior, None if seed is None else mix_seed(seed, i))

    def addresses(self, count: int) -> Iterator[int]:
        iterators = [
            (behavior.addresses(count), length, offset)
            for behavior, length, offset in self._phases
        ]
        produced = 0
        while produced < count:
            for iterator, length, offset in iterators:
                take = min(length, count - produced)
                for _ in range(take):
                    yield next(iterator) + offset
                produced += take
                if produced >= count:
                    return


class InterleavedStreams:
    """Interleave child behaviours reference-by-reference with weights.

    Each output element is drawn from child ``i`` with probability
    proportional to ``weights[i]``.  Children use disjoint identifier
    ranges.  This models a program mixing, e.g., a circular sweep with a
    random-access hash table.
    """

    def __init__(
        self,
        behaviors: Sequence[object],
        weights: "Sequence[float] | None" = None,
        seed: "int | None" = 0,
        name: str = "interleaved",
    ) -> None:
        if not behaviors:
            raise ValueError("need at least one behaviour")
        self._behaviors = list(behaviors)
        if weights is None:
            weights = [1.0] * len(behaviors)
        if len(weights) != len(behaviors):
            raise ValueError("weights and behaviors must have the same length")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._probabilities = [w / total for w in weights]
        self._offsets = []
        offset = 0
        for behavior in self._behaviors:
            self._offsets.append(offset)
            offset += behavior.num_lines
        self.num_lines = offset
        self.seed = seed
        self.name = name

    def reseed(self, seed: "int | None") -> None:
        self.seed = seed
        for i, behavior in enumerate(self._behaviors):
            reseed(behavior, None if seed is None else mix_seed(seed, "child", i))

    def addresses(self, count: int) -> Iterator[int]:
        rng = make_rng(self.seed)
        iterators = [b.addresses(count) for b in self._behaviors]
        choices = rng.choice(len(iterators), size=count, p=self._probabilities)
        for which in choices:
            yield next(iterators[which]) + self._offsets[which]


def reseed(behavior: object, seed: "int | None") -> object:
    """Re-derive a behaviour's stochastic state from ``seed``.

    Deterministic behaviours (``Circular``, ``Stride``, explicit
    sequences) have no ``reseed`` method and pass through unchanged;
    composite behaviours recurse into their children with independent
    derived seeds.  ``seed=None`` restores OS-entropy seeding on the
    stochastic behaviours.  Returns ``behavior`` for chaining.
    """
    method = getattr(behavior, "reseed", None)
    if method is not None:
        method(seed)
    return behavior


#: spec ``type`` → behaviour class, for declarative (JSON-able) specs
BEHAVIOR_TYPES = {
    "circular": Circular,
    "halfrandom": HalfRandom,
    "uniform": UniformRandom,
    "stride": Stride,
    "permutation": PermutationCycle,
}


def behavior_from_spec(spec: "dict[str, object]") -> object:
    """Build a behaviour from a declarative spec, e.g.
    ``{"type": "circular", "num_lines": 800}``.

    Specs are plain JSON-able dicts, which is what lets the runtime
    ship sweep points to worker processes and content-hash them for the
    result cache (callables cannot be hashed or safely pickled across
    code versions).  Remaining keys are constructor kwargs.
    """
    spec = dict(spec)
    try:
        kind = spec.pop("type")
    except KeyError:
        raise ValueError(f"behavior spec needs a 'type' key: {spec!r}") from None
    try:
        factory = BEHAVIOR_TYPES[kind]
    except KeyError:
        known = ", ".join(sorted(BEHAVIOR_TYPES))
        raise ValueError(
            f"unknown behavior type {kind!r}; known: {known}"
        ) from None
    return factory(**spec)


def behavior_trace(
    behavior: object,
    count: int,
    line_size: int = 64,
    instructions_per_access: int = 3,
    base_address: int = 0,
    kind: AccessKind = AccessKind.LOAD,
) -> Iterator[Access]:
    """Lift a :class:`LineStream` into a byte-addressed access trace.

    Each element identifier becomes one access to the first byte of the
    corresponding line; the dynamic instruction index advances by
    ``instructions_per_access`` per reference (the paper's workloads
    average roughly 2-5 instructions per memory access, Table 1).
    """
    if instructions_per_access <= 0:
        raise ValueError("instructions_per_access must be positive")
    instruction = 0
    for element in behavior.addresses(count):
        yield Access(base_address + element * line_size, kind, instruction)
        instruction += instructions_per_access
