"""Trace capture and replay on disk.

Trace-driven simulators live and die by trace files; this module stores
any :class:`~repro.traces.trace.Access` stream as a compressed ``.npz``
(three parallel ``numpy`` arrays: addresses, kinds, instruction
indices) and replays it as a :class:`FileTrace`.

Capturing an expensive source once (an Olden run, a long SPEC model)
and replaying it into many experiments keeps full-scale studies cheap::

    from repro.traces.file_format import save_trace, load_trace
    save_trace("art.npz", spec_model("179.art").accesses())
    trace = load_trace("art.npz")      # a TraceSource
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

import numpy as np

from repro.traces.trace import Access, AccessKind

_FORMAT_VERSION = 1


def save_trace(path: "str | os.PathLike", accesses: Iterable[Access]) -> int:
    """Write a trace to ``path`` (``.npz``); returns the access count."""
    addresses = []
    kinds = []
    instructions = []
    for access in accesses:
        addresses.append(access.address)
        kinds.append(int(access.kind))
        instructions.append(access.instruction)
    return save_trace_arrays(path, addresses, kinds, instructions)


def save_trace_arrays(
    path: "str | os.PathLike", addresses, kinds, instructions
) -> int:
    """Write a trace already held as parallel arrays; same format as
    :func:`save_trace`, no per-access materialisation."""
    addresses = np.asarray(addresses, dtype=np.int64)
    kinds = np.asarray(kinds, dtype=np.int8)
    instructions = np.asarray(instructions, dtype=np.int64)
    if not len(addresses) == len(kinds) == len(instructions):
        raise ValueError("trace arrays must have equal lengths")
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        addresses=addresses,
        kinds=kinds,
        instructions=instructions,
    )
    return len(addresses)


class FileTrace:
    """A trace loaded from disk; replayable any number of times."""

    def __init__(
        self,
        name: str,
        addresses: np.ndarray,
        kinds: np.ndarray,
        instructions: np.ndarray,
    ) -> None:
        if not len(addresses) == len(kinds) == len(instructions):
            raise ValueError("trace arrays must have equal lengths")
        self.name = name
        self._addresses = addresses
        self._kinds = kinds
        self._instructions = instructions

    def __len__(self) -> int:
        return len(self._addresses)

    @property
    def instruction_count(self) -> int:
        if len(self._instructions) == 0:
            return 0
        return int(self._instructions[-1]) + 1

    def accesses(self) -> Iterator[Access]:
        addresses = self._addresses
        kinds = self._kinds
        instructions = self._instructions
        for i in range(len(addresses)):
            yield Access(
                int(addresses[i]),
                AccessKind(int(kinds[i])),
                int(instructions[i]),
            )

    def arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(addresses, kinds, instructions)`` for the batched kernels."""
        return (
            np.asarray(self._addresses, dtype=np.int64),
            np.asarray(self._kinds, dtype=np.int8),
            np.asarray(self._instructions, dtype=np.int64),
        )


def load_trace(path: "str | os.PathLike") -> FileTrace:
    """Load a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
        return FileTrace(
            name,
            data["addresses"].copy(),
            data["kinds"].copy(),
            data["instructions"].copy(),
        )
