"""L1 front-end filters.

Section 4.1: "We work with a stream of references that is filtered by a
16-Kbyte DL1 cache and a 16-Kbyte IL1 cache, both fully-associative with
LRU replacement.  Each reference consists of a cache line address,
assuming 64-byte lines."  The migration controller, the LRU stack
profiles, and the offline partitioning baselines all consume this
*L1-miss stream*, never the raw trace.

:class:`L1Filter` turns an :class:`~repro.traces.trace.Access` stream
into a stream of :class:`FilteredReference` records (one per L1 miss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.set_assoc import SetAssociativeCache
from repro.traces.trace import Access, AccessKind


class FilteredReference(NamedTuple):
    """One L1 miss: the line address, referencing instruction and kind."""

    line: int
    instruction: int
    kind: AccessKind

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.STORE


@dataclass(frozen=True)
class L1FilterConfig:
    """Geometry of the filtering L1s (defaults = paper section 4.1)."""

    line_size: int = 64
    il1_bytes: int = 16 * 1024
    dl1_bytes: int = 16 * 1024
    ways: int = 0  #: 0 = fully-associative (the section 4.1 setting)
    store_allocate: bool = True
    """Whether stores allocate in the DL1.  Section 4.1 does "not
    distinguish between loads and stores", i.e. stores behave as loads;
    set ``False`` for the section 4.2 write-through/non-write-allocate
    behaviour."""


class L1Filter:
    """Filter a raw access trace through IL1 + DL1, yielding L1 misses."""

    def __init__(self, config: "L1FilterConfig | None" = None) -> None:
        self.config = config or L1FilterConfig()
        self.il1 = self._make_cache(self.config.il1_bytes)
        self.dl1 = self._make_cache(self.config.dl1_bytes)
        self.accesses = 0
        self.il1_misses = 0
        self.dl1_misses = 0
        self.instructions = 0

    def _make_cache(self, capacity_bytes: int):
        if self.config.ways == 0:
            return FullyAssociativeCache.from_bytes(
                capacity_bytes, self.config.line_size
            )
        return SetAssociativeCache.from_bytes(
            capacity_bytes, self.config.line_size, self.config.ways
        )

    @property
    def l1_misses(self) -> int:
        return self.il1_misses + self.dl1_misses

    def filter_one(self, access: Access) -> "FilteredReference | None":
        """Run one access; return its L1 miss, or ``None`` on a hit."""
        self.accesses += 1
        if access.instruction >= self.instructions:
            self.instructions = access.instruction + 1
        line = access.address // self.config.line_size
        kind = access.kind
        if kind is AccessKind.FETCH:
            if not self.il1.access(line):
                self.il1_misses += 1
                return FilteredReference(line, access.instruction, kind)
        elif kind is AccessKind.LOAD:
            if not self.dl1.access(line):
                self.dl1_misses += 1
                return FilteredReference(line, access.instruction, kind)
        else:
            hit = self.dl1.access(
                line, write=True, allocate=self.config.store_allocate
            )
            if not hit:
                self.dl1_misses += 1
                return FilteredReference(line, access.instruction, kind)
        return None

    def filter(self, accesses: Iterable[Access]) -> Iterator[FilteredReference]:
        """Yield one :class:`FilteredReference` per L1 miss in the trace."""
        for access in accesses:
            miss = self.filter_one(access)
            if miss is not None:
                yield miss
