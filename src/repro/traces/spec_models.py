"""Calibrated SPEC CPU2000-like workload models.

The paper evaluates 13 SPEC CPU2000 benchmarks (train inputs, first
10^9 instructions) traced by SimpleScalar/PISA.  Neither the binaries
nor the simulator exist here, so each benchmark is modelled as a
mixture of the synthetic behaviours of :mod:`repro.traces.synthetic`
whose *L1-filtered* reference stream matches the published
characteristics qualitatively:

* working-set size (where the Figure 4/5 LRU-stack profile falls),
* splittability (whether ``p4`` drops below ``p1``: circular or
  stable-permutation behaviours are splittable; uniform-random ones are
  not),
* instruction- vs data-miss mix (Table 1: ``gcc``, ``crafty`` and
  ``vortex`` are instruction-miss heavy),
* Table 2 outcome class (win / neutral / slight loss).

The calibration table at the bottom of this module documents, per
benchmark, what the paper observed and how the model encodes it.
These are *models*, not the benchmarks: EXPERIMENTS.md reports
paper-vs-measured for every figure and table built on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Sequence, Tuple

from repro.common.rng import make_rng, mix_seed
from repro.traces.synthetic import (
    Circular,
    PermutationCycle,
    PhaseAlternating,
    Stride,
    UniformRandom,
    reseed,
)
from repro.traces.trace import Access, AccessKind

#: lines per megabyte with the paper's 64-byte lines
LINES_PER_MB = 16384
LINES_PER_KB = 16


@dataclass(frozen=True)
class Component:
    """One behaviour in a workload mixture.

    ``weight`` is the fraction of references drawn from this component;
    ``kind`` is the access type its references carry (loads may be
    turned into stores by the model's ``store_fraction``).
    """

    weight: float
    kind: AccessKind
    behavior: object  #: a LineStream

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class SpecModelConfig:
    """Shape of one benchmark model."""

    name: str
    components: "Tuple[Component, ...]"
    instructions_per_access: float = 2.8
    store_fraction: float = 0.12  #: fraction of data refs that are stores
    default_length: int = 2_000_000
    seed: int = 12345

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a model needs at least one component")
        if self.instructions_per_access < 1.0:
            raise ValueError("instructions_per_access must be >= 1")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")


class SpecModel:
    """A TraceSource built from a weighted mixture of behaviours.

    Components occupy disjoint address regions (64-byte-aligned, 1-MB
    padded) so that, e.g., a benchmark's code and data never alias.
    """

    def __init__(
        self,
        config: SpecModelConfig,
        length: "int | None" = None,
        seed: "int | None" = None,
    ) -> None:
        self.config = config
        self.name = config.name
        self.length = length if length is not None else config.default_length
        self.seed = seed
        if seed is None:
            self._mixture_seed = config.seed
        else:
            # An explicit seed re-derives every stochastic stream — the
            # mixture draws and each component behaviour — from
            # (seed, name, position), so two runs with the same seed are
            # bit-identical regardless of workload execution order, and
            # different seeds give independent traces.
            self._mixture_seed = mix_seed(seed, config.name, "mixture")
            for i, component in enumerate(config.components):
                reseed(component.behavior, mix_seed(seed, config.name, i))
        total = sum(c.weight for c in config.components)
        self._probabilities = [c.weight / total for c in config.components]
        self._bases: "list[int]" = []
        base = 0
        for component in config.components:
            self._bases.append(base)
            # Pad regions to a 1-MB boundary past the component footprint.
            footprint = component.behavior.num_lines
            base += ((footprint // LINES_PER_MB) + 1) * LINES_PER_MB

    @property
    def footprint_lines(self) -> int:
        return sum(c.behavior.num_lines for c in self.config.components)

    def accesses(self) -> Iterator[Access]:
        """Yield the trace (deterministic per model seed)."""
        cfg = self.config
        rng = make_rng(self._mixture_seed)
        components = cfg.components
        iterators = [c.behavior.addresses(self.length) for c in components]
        # Pre-draw in chunks for speed.
        chunk = 65536
        produced = 0
        instruction = 0
        # Instruction gaps average instructions_per_access using a
        # deterministic fractional accumulator plus +-1 jitter.
        mean_gap = cfg.instructions_per_access
        gap_accumulator = 0.0
        store_fraction = cfg.store_fraction
        while produced < self.length:
            take = min(chunk, self.length - produced)
            picks = rng.choice(len(components), size=take, p=self._probabilities)
            store_draws = rng.random(take)
            jitter = rng.integers(-1, 2, size=take)
            for i in range(take):
                which = int(picks[i])
                component = components[which]
                element = next(iterators[which]) + self._bases[which]
                kind = component.kind
                if kind is AccessKind.LOAD and store_draws[i] < store_fraction:
                    kind = AccessKind.STORE
                yield Access(element * 64, kind, instruction)
                gap_accumulator += mean_gap
                gap = max(1, int(gap_accumulator) + int(jitter[i]))
                gap_accumulator -= int(gap_accumulator)
                instruction += gap
            produced += take


def _mb(megabytes: float) -> int:
    return int(megabytes * LINES_PER_MB)


def _kb(kilobytes: float) -> int:
    return int(kilobytes * LINES_PER_KB)


def _load(weight: float, behavior: object) -> Component:
    return Component(weight, AccessKind.LOAD, behavior)


def _fetch(weight: float, behavior: object) -> Component:
    return Component(weight, AccessKind.FETCH, behavior)


# ---------------------------------------------------------------------------
# Per-benchmark calibrations.
#
# Paper evidence used (Figures 4-5 LRU profiles, Tables 1-2):
#   164.gzip   random-like, few-MB footprint, NOT splittable, ratio 1.01
#   171.swim   streaming arrays > 16 MB, ratio 1.00 (affinity cache too small)
#   172.mgrid  streaming ~4-8 MB, ratio 1.00
#   175.vpr    random-like, < 1 MB hot set, NOT splittable, highest
#              transition frequency (1.34 %), ratio 1.60 (loss)
#   176.gcc    instruction-miss heavy (41.6M IL1 misses), mild win 0.95
#   179.art    circular ~3-4 MB, strongly splittable, ratio 0.03
#   181.mcf    pointer chasing over ~3-4 MB, splittable, ratio 0.67
#   186.crafty instruction-heavy, working set fits one L2, ratio 1.13
#   188.ammp   circular ~2-4 MB, strongly splittable, ratio 0.17
#   197.parser random-like over ~2-4 MB, NOT splittable, ratio 1.00
#   255.vortex instruction-heavy, moderate set, slight loss 1.10
#   256.bzip2  block-phase behaviour over ~2-3 MB, splittable, ratio 0.35
#   300.twolf  ~256 KB hot set (fits one L2), ratio 1.00
# ---------------------------------------------------------------------------

_BUILDERS: "Dict[str, Callable[[], SpecModelConfig]]" = {}


def _register(name: str):
    def decorator(builder: "Callable[[], SpecModelConfig]"):
        _BUILDERS[name] = builder
        return builder

    return decorator


@_register("164.gzip")
def _gzip() -> SpecModelConfig:
    return SpecModelConfig(
        name="164.gzip",
        components=(
            _load(0.60, UniformRandom(_mb(2.5), seed=11)),
            _load(0.40, UniformRandom(_kb(448), seed=13)),
        ),
        instructions_per_access=58.0,
    )


@_register("171.swim")
def _swim() -> SpecModelConfig:
    return SpecModelConfig(
        name="171.swim",
        components=(
            _load(0.85, Circular(_mb(4.0))),
            _load(0.15, Stride(_mb(2.0), stride=2)),
        ),
        instructions_per_access=42.0,
        store_fraction=0.25,
        default_length=6_000_000,
    )


@_register("172.mgrid")
def _mgrid() -> SpecModelConfig:
    return SpecModelConfig(
        name="172.mgrid",
        components=(
            _load(0.80, Circular(_mb(3.0))),
            _load(0.20, Stride(_mb(1.5), stride=4)),
        ),
        instructions_per_access=140.0,
        store_fraction=0.08,
        default_length=5_000_000,
    )


@_register("175.vpr")
def _vpr() -> SpecModelConfig:
    return SpecModelConfig(
        name="175.vpr",
        components=(
            _load(0.75, UniformRandom(_kb(704), seed=17)),
            _load(0.25, UniformRandom(_kb(96), seed=19)),
        ),
        instructions_per_access=40.0,
    )


@_register("176.gcc")
def _gcc() -> SpecModelConfig:
    return SpecModelConfig(
        name="176.gcc",
        components=(
            _fetch(0.55, Circular(_mb(1.4))),
            _load(0.30, UniformRandom(_mb(1.0), seed=23)),
            _load(0.15, Circular(_kb(640))),
        ),
        instructions_per_access=17.0,
    )


@_register("179.art")
def _art() -> SpecModelConfig:
    return SpecModelConfig(
        name="179.art",
        components=(
            _load(0.88, Circular(_mb(1.5))),
            _load(0.12, UniformRandom(_kb(192), seed=29)),
        ),
        instructions_per_access=9.0,
        store_fraction=0.05,
        default_length=4_000_000,
    )


@_register("181.mcf")
def _mcf() -> SpecModelConfig:
    return SpecModelConfig(
        name="181.mcf",
        components=(
            _load(0.65, PermutationCycle(_mb(1.25), seed=31)),
            _load(0.35, UniformRandom(_mb(1.2), seed=37)),
        ),
        instructions_per_access=12.0,
        store_fraction=0.08,
        default_length=4_000_000,
    )


@_register("186.crafty")
def _crafty() -> SpecModelConfig:
    return SpecModelConfig(
        name="186.crafty",
        components=(
            _fetch(0.60, Circular(_kb(176))),
            _load(0.40, UniformRandom(_kb(112), seed=41)),
        ),
        instructions_per_access=9.0,
    )


@_register("188.ammp")
def _ammp() -> SpecModelConfig:
    return SpecModelConfig(
        name="188.ammp",
        components=(
            _load(0.90, Circular(_mb(1.3))),
            _load(0.10, UniformRandom(_kb(128), seed=43)),
        ),
        instructions_per_access=6.3,
        store_fraction=0.10,
        default_length=4_000_000,
    )


@_register("197.parser")
def _parser() -> SpecModelConfig:
    return SpecModelConfig(
        name="197.parser",
        components=(
            _load(0.65, UniformRandom(_mb(2.2), seed=47)),
            _load(0.35, UniformRandom(_kb(448), seed=49)),
        ),
        instructions_per_access=80.0,
    )


@_register("255.vortex")
def _vortex() -> SpecModelConfig:
    return SpecModelConfig(
        name="255.vortex",
        components=(
            _fetch(0.40, UniformRandom(_mb(1.2), seed=53)),
            _fetch(0.15, Circular(_kb(256))),
            _load(0.45, UniformRandom(_mb(1.0), seed=57)),
        ),
        instructions_per_access=14.0,
    )


@_register("256.bzip2")
def _bzip2() -> SpecModelConfig:
    blocks = PhaseAlternating(
        phases=[
            (Circular(_mb(0.9)), 60_000),
            (Circular(_mb(0.9)), 60_000),
        ],
        name="bzip2-blocks",
    )
    return SpecModelConfig(
        name="256.bzip2",
        components=(
            _load(0.80, blocks),
            _load(0.20, UniformRandom(_kb(256), seed=59)),
        ),
        instructions_per_access=120.0,
        default_length=4_000_000,
    )


@_register("300.twolf")
def _twolf() -> SpecModelConfig:
    return SpecModelConfig(
        name="300.twolf",
        components=(
            _load(0.70, UniformRandom(_kb(176), seed=61)),
            _load(0.30, Circular(_kb(64))),
        ),
        instructions_per_access=24.0,
    )


def spec_model_names() -> "list[str]":
    """The 13 modelled SPEC CPU2000 benchmarks, in paper order."""
    return list(_BUILDERS)


def spec_model(
    name: str, length: "int | None" = None, seed: "int | None" = None
) -> SpecModel:
    """Build the model for one benchmark (e.g. ``"179.art"``).

    ``length`` overrides the default trace length (accesses, not
    instructions); ``seed`` re-derives every stochastic stream in the
    model (``None`` keeps the calibrated per-model defaults).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(_BUILDERS)
        raise KeyError(f"unknown SPEC model {name!r}; known: {known}") from None
    return SpecModel(builder(), length=length, seed=seed)
