"""Memory reference streams.

The paper's experiments consume *traces*: sequences of memory references
annotated with the dynamic instruction count.  This package provides

* the trace model (:mod:`repro.traces.trace`),
* the synthetic working-set behaviours of paper section 3.3
  (:mod:`repro.traces.synthetic`),
* calibrated SPEC CPU2000-like workload models (:mod:`repro.traces.spec_models`),
* L1-cache front ends that turn a raw trace into the L1-miss stream the
  migration controller observes (:mod:`repro.traces.filters`).
"""

from repro.traces.trace import (
    Access,
    AccessKind,
    LineStream,
    TraceSource,
    TraceStats,
    line_address,
    measure_trace,
)
from repro.traces.synthetic import (
    Circular,
    HalfRandom,
    InterleavedStreams,
    PermutationCycle,
    PhaseAlternating,
    SequenceBehavior,
    Stride,
    UniformRandom,
    behavior_trace,
)
from repro.traces.file_format import FileTrace, load_trace, save_trace
from repro.traces.filters import L1FilterConfig, L1Filter, FilteredReference
from repro.traces.spec_models import (
    SpecModel,
    SpecModelConfig,
    spec_model,
    spec_model_names,
)

__all__ = [
    "Access",
    "AccessKind",
    "Circular",
    "FileTrace",
    "FilteredReference",
    "HalfRandom",
    "InterleavedStreams",
    "L1Filter",
    "L1FilterConfig",
    "LineStream",
    "PermutationCycle",
    "PhaseAlternating",
    "SequenceBehavior",
    "SpecModel",
    "SpecModelConfig",
    "Stride",
    "TraceSource",
    "TraceStats",
    "UniformRandom",
    "behavior_trace",
    "line_address",
    "load_trace",
    "measure_trace",
    "save_trace",
    "spec_model",
    "spec_model_names",
]
