"""Olden ``treeadd``: recursive sum over a balanced binary tree.

Not part of the paper's five evaluated Olden benchmarks, but the
simplest member of the suite and a useful extra workload: repeated
depth-first walks over a pointer tree are the cleanest example of a
*recurring deterministic traversal order* — circular behaviour in
disguise, hence splittable once the tree outgrows one L2.

The traced sum is checked against the known closed form.
"""

from __future__ import annotations

from repro.olden.heap import HeapObject, RecordedTrace, TracedHeap

_NODE_FIELDS = ("value", "left", "right")


def _build(heap: TracedHeap, levels: int) -> HeapObject:
    node = heap.allocate(_NODE_FIELDS)
    node.set("value", 1)
    if levels > 1:
        node.set("left", _build(heap, levels - 1))
        node.set("right", _build(heap, levels - 1))
    else:
        node.set("left", None)
        node.set("right", None)
    return node


def _tree_add(heap: TracedHeap, node: "HeapObject | None") -> int:
    if node is None:
        return 0
    total = node.get("value")
    total += _tree_add(heap, node.get("left"))
    total += _tree_add(heap, node.get("right"))
    heap.work(3)
    return total


def treeadd(levels: int = 14, iterations: int = 4) -> RecordedTrace:
    """Build a ``levels``-deep perfect tree and sum it ``iterations``
    times (Olden's driver re-walks the tree repeatedly too)."""
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    heap = TracedHeap("treeadd")
    root = _build(heap, levels)
    expected = (1 << levels) - 1
    for _ in range(iterations):
        total = _tree_add(heap, root)
        if total != expected:
            raise AssertionError(
                f"treeadd computed {total}, expected {expected}"
            )
    return heap.finish()
