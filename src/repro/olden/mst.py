"""Olden ``mst``: minimum spanning tree over hashed adjacency
[Bentley; Olden port by Carlisle & Rogers].

The graph is complete: every vertex stores the weight of its edge to
every other vertex in a *chained hash table* allocated on the heap.
Prim's algorithm ("blue rule") then repeatedly scans the not-yet-in-tree
vertices, looking up their distance to the freshly added vertex in the
hash tables and keeping the running minimum.

The dominant traffic is hash-bucket walks over a multi-megabyte edge
store — a working set far bigger than the aggregate L2 at the paper's
input (1024 vertices), which is why Table 2 reports a neutral ratio of
1.00 for mst: the affinity cache is too small to split it, and the
miss-policy ``O_e = Δ`` keeps migrations away.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.olden.heap import HeapObject, RecordedTrace, TracedHeap

_VERTEX_FIELDS = ("mindist", "hash")
_ENTRY_FIELDS = ("key", "value", "next")


class _HashTable:
    """Chained hash table on the traced heap (Olden's ``hash.c``)."""

    def __init__(self, heap: TracedHeap, num_buckets: int) -> None:
        if num_buckets <= 0 or num_buckets & (num_buckets - 1):
            raise ValueError("num_buckets must be a positive power of two")
        self._heap = heap
        self._buckets = heap.allocate_array(num_buckets, name="bucket")
        self._mask = num_buckets - 1

    def _bucket_field(self, key: int) -> str:
        # Olden hashes vertex pointers; keys here are vertex indices.
        return f"bucket{(key * 2654435761) & self._mask}"

    def insert(self, key: int, value: int) -> None:
        field = self._bucket_field(key)
        entry = self._heap.allocate(_ENTRY_FIELDS)
        entry.set("key", key)
        entry.set("value", value)
        entry.set("next", self._buckets.get(field))
        self._buckets.set(field, entry)

    def lookup(self, key: int) -> "int | None":
        entry = self._buckets.get(self._bucket_field(key))
        while entry is not None:
            if entry.get("key") == key:
                return entry.get("value")
            entry = entry.get("next")
        return None


def _edge_weight(i: int, j: int, seed: int) -> int:
    """Deterministic pseudo-random symmetric edge weight (Olden computes
    weights from a per-pair hash as well)."""
    a, b = (i, j) if i < j else (j, i)
    x = (a * 0x9E3779B1 ^ b * 0x85EBCA77 ^ seed) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x2C1B3C6D) & 0xFFFFFFFF
    x ^= x >> 12
    return (x & 0xFFFF) + 1


def mst(
    num_vertices: int = 512,
    neighbors_per_vertex: "int | None" = None,
    seed: int = 317,
) -> RecordedTrace:
    """Build the hashed graph and run Prim's algorithm.

    ``neighbors_per_vertex`` limits each vertex's stored edges (default:
    all ``num_vertices - 1``, the complete graph Olden uses — beware the
    O(V^2) footprint and runtime).  Returns the recorded trace; the MST
    weight is checked against a plain-Python Prim on the same weights.
    """
    if num_vertices < 2:
        raise ValueError(f"need at least 2 vertices, got {num_vertices}")
    heap = TracedHeap("mst")
    rng = make_rng(seed)
    weight_seed = int(rng.integers(0, 1 << 30))
    if neighbors_per_vertex is None:
        neighbors_per_vertex = num_vertices - 1
    buckets = max(4, 1 << max(2, (num_vertices // 4).bit_length()))

    vertices: "list[HeapObject]" = []
    tables: "list[_HashTable]" = []
    for _ in range(num_vertices):
        vertex = heap.allocate(_VERTEX_FIELDS)
        vertex.set("mindist", 1 << 30)
        table = _HashTable(heap, buckets)
        vertex.set("hash", table._buckets)
        vertices.append(vertex)
        tables.append(table)

    # AddEdges: store each vertex's distance to its neighbours.
    for i in range(num_vertices):
        count = 0
        j = (i + 1) % num_vertices
        while count < neighbors_per_vertex:
            if j != i:
                tables[i].insert(j, _edge_weight(i, j, weight_seed))
                count += 1
            j = (j + 1) % num_vertices
            if j == i and count < neighbors_per_vertex:
                break

    # ComputeMst (Prim / blue rule).
    in_tree = [False] * num_vertices
    in_tree[0] = True
    total = 0
    current = 0
    for _ in range(num_vertices - 1):
        # BlueRule: relax distances against the newly added vertex.
        best = None
        best_dist = 1 << 31
        for v in range(num_vertices):
            if in_tree[v]:
                continue
            distance = tables[v].lookup(current)
            heap.work(4)
            if distance is not None and distance < vertices[v].get("mindist"):
                vertices[v].set("mindist", distance)
            mind = vertices[v].get("mindist")
            if mind < best_dist:
                best_dist = mind
                best = v
        assert best is not None, "graph is connected by construction"
        in_tree[best] = True
        total += best_dist
        current = best

    # Correctness check against an untraced reference Prim.
    expected = _reference_mst_weight(num_vertices, weight_seed)
    if neighbors_per_vertex == num_vertices - 1 and total != expected:
        raise AssertionError(
            f"traced MST weight {total} != reference {expected}"
        )
    return heap.finish()


def _reference_mst_weight(num_vertices: int, weight_seed: int) -> int:
    """Plain Prim over the same deterministic weights (no tracing)."""
    import heapq

    in_tree = [False] * num_vertices
    best = [1 << 30] * num_vertices
    best[0] = 0
    queue = [(0, 0)]
    total = 0
    added = 0
    while queue and added < num_vertices:
        dist, v = heapq.heappop(queue)
        if in_tree[v]:
            continue
        in_tree[v] = True
        total += dist
        added += 1
        for u in range(num_vertices):
            if u == v or in_tree[u]:
                continue
            w = _edge_weight(v, u, weight_seed)
            if w < best[u]:
                best[u] = w
                heapq.heappush(queue, (w, u))
    return total
