"""Olden ``bisort``: adaptive bitonic sort over a binary tree
[Bilardi & Nicolau], following the structure of the Olden C source
(``RandTree`` + ``Bisort`` + ``Bimerge`` with value/subtree spine swaps).

The access pattern is recursive tree walks with value swaps along
left/right spines — pointer chasing over a perfect binary tree.  The
paper (Table 2) finds bisort essentially non-splittable (ratio 1.08).
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.olden.heap import HeapObject, RecordedTrace, TracedHeap

_FIELDS = ("value", "left", "right")


def _rand_tree(heap: TracedHeap, size: int, rng) -> HeapObject:
    """Build a perfect binary tree of ``size - 1`` nodes (size = 2^k),
    filled with random values, as Olden's ``RandTree`` does."""
    node = heap.allocate(_FIELDS)
    node.set("value", int(rng.integers(0, 1 << 30)))
    if size > 2:
        node.set("left", _rand_tree(heap, size // 2, rng))
        node.set("right", _rand_tree(heap, size // 2, rng))
    else:
        node.set("left", None)
        node.set("right", None)
    return node


def _swap_value(a: HeapObject, b: HeapObject, heap: TracedHeap) -> None:
    va = a.get("value")
    vb = b.get("value")
    a.set("value", vb)
    b.set("value", va)
    heap.work(2)


def _swap_subtree(a: HeapObject, b: HeapObject, side: str, heap: TracedHeap) -> None:
    sa = a.get(side)
    sb = b.get(side)
    a.set(side, sb)
    b.set(side, sa)
    heap.work(2)


def _bimerge(heap: TracedHeap, t: HeapObject, sprval: int, direction: bool) -> int:
    """Merge a bitonic tree into a sorted one; returns the new spare."""
    right_exchange = (t.get("value") > sprval) ^ direction
    if right_exchange:
        value = t.get("value")
        t.set("value", sprval)
        sprval = value
    pl = t.get("left")
    pr = t.get("right")
    while pl is not None:
        element_exchange = (pl.get("value") > pr.get("value")) ^ direction
        pll = pl.get("left")
        plr = pl.get("right")
        prl = pr.get("left")
        prr = pr.get("right")
        if right_exchange:
            if element_exchange:
                _swap_value(pl, pr, heap)
                _swap_subtree(pl, pr, "right", heap)
                pl = pll
                pr = prl
            else:
                pl = plr
                pr = prr
        else:
            if element_exchange:
                _swap_value(pl, pr, heap)
                _swap_subtree(pl, pr, "left", heap)
                pl = plr
                pr = prr
            else:
                pl = pll
                pr = prl
    if t.get("left") is not None:
        t.set("value", _bimerge(heap, t.get("left"), t.get("value"), direction))
        sprval = _bimerge(heap, t.get("right"), sprval, direction)
    return sprval


def _bisort(heap: TracedHeap, t: HeapObject, sprval: int, direction: bool) -> int:
    """Sort the tree + spare; ``direction`` False = ascending."""
    if t.get("left") is None:
        if (t.get("value") > sprval) ^ direction:
            value = t.get("value")
            t.set("value", sprval)
            sprval = value
    else:
        t.set("value", _bisort(heap, t.get("left"), t.get("value"), direction))
        sprval = _bisort(heap, t.get("right"), sprval, not direction)
        sprval = _bimerge(heap, t, sprval, direction)
    return sprval


def _inorder(t: "HeapObject | None", out: "list[int]") -> None:
    if t is None:
        return
    _inorder(t.peek("left"), out)
    out.append(t.peek("value"))
    _inorder(t.peek("right"), out)


def bisort(size: int = 8192, seed: int = 1024, check: bool = False) -> RecordedTrace:
    """Run bisort on ``size`` values (must be a power of two >= 2).

    As in Olden's driver, the tree is sorted forward and then backward.
    With ``check=True`` the in-order result is verified to be sorted
    (descending after the backward pass) before the trace is returned.
    """
    if size < 2 or size & (size - 1):
        raise ValueError(f"size must be a power of two >= 2, got {size}")
    heap = TracedHeap("bisort")
    rng = make_rng(seed)
    root = _rand_tree(heap, size, rng)
    spare = int(rng.integers(0, 1 << 30))
    spare = _bisort(heap, root, spare, False)  # forward (ascending)
    spare = _bisort(heap, root, spare, True)  # backward (descending)
    if check:
        values: "list[int]" = []
        _inorder(root, values)
        values.append(spare)
        if values != sorted(values, reverse=True):
            raise AssertionError("bisort backward pass did not sort descending")
    return heap.finish()
