"""Olden ``bh``: Barnes-Hut hierarchical N-body simulation [Barnes & Hut
1986; Olden port by Carlisle & Rogers].

Each timestep builds an octree over the bodies, computes cell centres
of mass bottom-up, then computes the force on every body by walking the
tree with the opening criterion ``s / d < θ`` (far cells are
approximated by their centre of mass), and finally integrates.

The working set (bodies + tree cells, a few hundred KB at the paper's
2k-body input) fits in a single 512-KB L2, which is why Table 2 shows
essentially no L2 misses for bh and a ratio slightly above 1 — the
benchmark exists to check that execution migration *does not hurt* a
cache-resident tree code.
"""

from __future__ import annotations

import math

from repro.common.rng import make_rng
from repro.olden.heap import HeapObject, RecordedTrace, TracedHeap

_BODY_FIELDS = ("mass", "x", "y", "z", "vx", "vy", "vz", "ax", "ay", "az")
_CELL_FIELDS = ("mass", "x", "y", "z") + tuple(f"child{i}" for i in range(8))

_THETA = 0.7
_EPSILON = 0.05
_DT = 0.025


def _octant(cell_center, half: float, x: float, y: float, z: float):
    """Child index and child-cube centre for a point in a cell."""
    cx, cy, cz = cell_center
    index = 0
    nx, ny, nz = cx - half / 2, cy - half / 2, cz - half / 2
    if x >= cx:
        index |= 1
        nx = cx + half / 2
    if y >= cy:
        index |= 2
        ny = cy + half / 2
    if z >= cz:
        index |= 4
        nz = cz + half / 2
    return index, (nx, ny, nz)


class _Tree:
    """One timestep's octree: traced cells over untraced geometry."""

    def __init__(self, heap: TracedHeap, size: float) -> None:
        self._heap = heap
        self.size = size
        self.root = self._new_cell()
        self._geometry = {self.root.address: ((0.0, 0.0, 0.0), size)}
        self._is_cell = {self.root.address}

    def _new_cell(self) -> HeapObject:
        cell = self._heap.allocate(_CELL_FIELDS)
        for i in range(8):
            cell.set(f"child{i}", None)
        cell.set("mass", 0.0)
        return cell

    def insert(self, body: HeapObject) -> None:
        x = body.get("x")
        y = body.get("y")
        z = body.get("z")
        node = self.root
        while True:
            center, size = self._geometry[node.address]
            index, child_center = _octant(center, size / 2, x, y, z)
            field = f"child{index}"
            child = node.get(field)
            if child is None:
                node.set(field, body)
                return
            if child.address in self._is_cell:
                node = child
                continue
            # Occupied by a body: split into a sub-cell, reinsert both.
            cell = self._new_cell()
            self._geometry[cell.address] = (child_center, size / 2)
            self._is_cell.add(cell.address)
            node.set(field, cell)
            self._reinsert(cell, child)
            node = cell

    def _reinsert(self, cell: HeapObject, body: HeapObject) -> None:
        center, size = self._geometry[cell.address]
        index, _child_center = _octant(
            center, size / 2, body.get("x"), body.get("y"), body.get("z")
        )
        cell.set(f"child{index}", body)

    def compute_centers_of_mass(self, node: "HeapObject | None" = None) -> None:
        node = node if node is not None else self.root
        mass = 0.0
        mx = my = mz = 0.0
        for i in range(8):
            child = node.get(f"child{i}")
            if child is None:
                continue
            if child.address in self._is_cell:
                self.compute_centers_of_mass(child)
            m = child.get("mass")
            mass += m
            mx += m * child.get("x")
            my += m * child.get("y")
            mz += m * child.get("z")
            self._heap.work(6)
        if mass > 0.0:
            node.set("x", mx / mass)
            node.set("y", my / mass)
            node.set("z", mz / mass)
        node.set("mass", mass)

    def force_on(self, body: HeapObject) -> "tuple[float, float, float]":
        bx = body.get("x")
        by = body.get("y")
        bz = body.get("z")
        ax = ay = az = 0.0
        stack: "list[HeapObject]" = [self.root]
        heap = self._heap
        while stack:
            node = stack.pop()
            if node.address == body.address:
                continue
            dx = node.get("x") - bx
            dy = node.get("y") - by
            dz = node.get("z") - bz
            dist2 = dx * dx + dy * dy + dz * dz + _EPSILON
            is_cell = node.address in self._is_cell
            if is_cell:
                size = self._geometry[node.address][1]
                if size * size >= _THETA * _THETA * dist2:
                    # Too close: open the cell.
                    for i in range(8):
                        child = node.get(f"child{i}")
                        if child is not None:
                            stack.append(child)
                    continue
            magnitude = node.get("mass") / (dist2 * math.sqrt(dist2))
            ax += dx * magnitude
            ay += dy * magnitude
            az += dz * magnitude
            heap.work(16)  # the gravity kernel: ~3 mul + sqrt + adds
        return ax, ay, az


def bh(
    num_bodies: int = 2048, timesteps: int = 1, seed: int = 121
) -> RecordedTrace:
    """Run Barnes-Hut on ``num_bodies`` (paper input: 2k) for
    ``timesteps`` steps."""
    if num_bodies < 2:
        raise ValueError(f"need at least 2 bodies, got {num_bodies}")
    if timesteps <= 0:
        raise ValueError(f"timesteps must be positive, got {timesteps}")
    heap = TracedHeap("bh")
    rng = make_rng(seed)
    bodies: "list[HeapObject]" = []
    for _ in range(num_bodies):
        body = heap.allocate(_BODY_FIELDS)
        body.set("mass", 1.0 / num_bodies)
        body.set("x", float(rng.uniform(-0.5, 0.5)))
        body.set("y", float(rng.uniform(-0.5, 0.5)))
        body.set("z", float(rng.uniform(-0.5, 0.5)))
        for field in ("vx", "vy", "vz", "ax", "ay", "az"):
            body.set(field, 0.0)
        bodies.append(body)

    for _ in range(timesteps):
        tree = _Tree(heap, size=2.0)
        for body in bodies:
            tree.insert(body)
        tree.compute_centers_of_mass()
        for body in bodies:
            ax, ay, az = tree.force_on(body)
            body.set("ax", ax)
            body.set("ay", ay)
            body.set("az", az)
        for body in bodies:  # leapfrog integration
            vx = body.get("vx") + body.get("ax") * _DT
            vy = body.get("vy") + body.get("ay") * _DT
            vz = body.get("vz") + body.get("az") * _DT
            body.set("vx", vx)
            body.set("vy", vy)
            body.set("vz", vz)
            body.set("x", body.get("x") + vx * _DT)
            body.set("y", body.get("y") + vy * _DT)
            body.set("z", body.get("z") + vz * _DT)
            heap.work(12)
    return heap.finish()
