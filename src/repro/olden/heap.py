"""The traced heap the mini-Olden benchmarks run on.

:class:`TracedHeap` is a bump allocator over a simulated address space.
Benchmark code allocates :class:`HeapObject` records (named fields, 8
bytes each) and reads/writes them through accessor methods; every field
access appends ``(address, kind, instruction)`` to compact array
buffers.  The result is wrapped as a :class:`RecordedTrace`, a
:class:`~repro.traces.trace.TraceSource` that can be replayed any
number of times.

Instruction accounting: each field load/store advances the dynamic
instruction counter by a small per-operation cost, and benchmarks call
:meth:`TracedHeap.work` for pure-compute stretches (e.g. the
floating-point body of a force calculation), so instructions-per-access
land in the range the paper's Table 1 reports.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, Sequence

from repro.traces.trace import Access, AccessKind

#: bytes per field; the benchmarks treat every field as one 64-bit word
FIELD_BYTES = 8

_LOAD_COST = 2  #: instructions charged per traced load
_STORE_COST = 2  #: instructions charged per traced store


class RecordedTrace:
    """A replayable trace recorded by a :class:`TracedHeap` run."""

    def __init__(
        self,
        name: str,
        addresses: "array[int]",
        kinds: "array[int]",
        instructions: "array[int]",
        pointer_flags: "array[int] | None" = None,
    ) -> None:
        if not len(addresses) == len(kinds) == len(instructions):
            raise ValueError("trace buffers must have equal lengths")
        if pointer_flags is not None and len(pointer_flags) != len(addresses):
            raise ValueError("pointer flags must match trace length")
        self.name = name
        self._addresses = addresses
        self._kinds = kinds
        self._instructions = instructions
        self._pointer_flags = pointer_flags

    def __len__(self) -> int:
        return len(self._addresses)

    @property
    def instruction_count(self) -> int:
        if not self._instructions:
            return 0
        return self._instructions[-1] + 1

    @property
    def pointer_load_count(self) -> int:
        if self._pointer_flags is None:
            return 0
        return sum(self._pointer_flags)

    def accesses(self) -> Iterator[Access]:
        addresses = self._addresses
        kinds = self._kinds
        instructions = self._instructions
        for i in range(len(addresses)):
            yield Access(addresses[i], AccessKind(kinds[i]), instructions[i])

    def arrays(self):
        """``(addresses, kinds, instructions)`` numpy views of the
        recording buffers, for the batched kernels."""
        import numpy as np

        return (
            np.asarray(self._addresses, dtype=np.int64),
            np.asarray(self._kinds, dtype=np.int8),
            np.asarray(self._instructions, dtype=np.int64),
        )

    def accesses_with_pointer_flags(self) -> "Iterator[tuple[Access, bool]]":
        """Yield ``(access, is_pointer_access)`` pairs.

        A pointer access reads or writes a field whose value is a heap
        reference — the class of requests the paper's conclusion
        suggests restricting the transition filter to ("having the
        transition filter updated only on requests coming from pointer
        loads").
        """
        flags = self._pointer_flags
        for i, access in enumerate(self.accesses()):
            yield access, bool(flags[i]) if flags is not None else False


class HeapObject:
    """A heap record with named 8-byte fields.

    Field reads/writes are *traced*: they emit an access at the field's
    address.  Values can be any Python object (pointers are other
    ``HeapObject`` instances or ``None``); the heap only models
    addresses and access order, not data encoding.
    """

    __slots__ = ("address", "_heap", "_offsets", "_values")

    def __init__(
        self, heap: "TracedHeap", address: int, fields: "Sequence[str]"
    ) -> None:
        self.address = address
        self._heap = heap
        self._offsets = {name: i * FIELD_BYTES for i, name in enumerate(fields)}
        self._values: "Dict[str, object]" = {name: None for name in fields}

    @property
    def size_bytes(self) -> int:
        return len(self._offsets) * FIELD_BYTES

    def get(self, field: str):
        """Traced load of ``field`` (tagged as a pointer load when the
        value is a heap reference)."""
        heap = self._heap
        value = self._values[field]
        heap._record(
            self.address + self._offsets[field],
            AccessKind.LOAD,
            pointer=isinstance(value, HeapObject),
        )
        heap.instruction += _LOAD_COST
        return value

    def set(self, field: str, value) -> None:
        """Traced store to ``field``."""
        heap = self._heap
        heap._record(
            self.address + self._offsets[field],
            AccessKind.STORE,
            pointer=isinstance(value, HeapObject),
        )
        heap.instruction += _STORE_COST
        self._values[field] = value

    def peek(self, field: str):
        """Untraced read (for assertions and result checking only)."""
        return self._values[field]


class TracedHeap:
    """Bump allocator + access recorder."""

    def __init__(self, name: str, base_address: int = 0x10000) -> None:
        self.name = name
        self.instruction = 0
        self._brk = base_address
        self._addresses = array("q")
        self._kinds = array("b")
        self._instructions = array("q")
        self._pointer_flags = array("b")

    def _record(self, address: int, kind: AccessKind, pointer: bool = False) -> None:
        self._addresses.append(address)
        self._kinds.append(int(kind))
        self._instructions.append(self.instruction)
        self._pointer_flags.append(1 if pointer else 0)

    def allocate(self, fields: "Sequence[str]", align: int = 8) -> HeapObject:
        """Allocate a record with the given fields (malloc-equivalent).

        Allocation itself costs a handful of instructions but emits no
        accesses (Olden's region allocator is pointer-bump too).
        """
        if align & (align - 1):
            raise ValueError(f"align must be a power of two, got {align}")
        address = (self._brk + align - 1) & ~(align - 1)
        obj = HeapObject(self, address, fields)
        self._brk = address + obj.size_bytes
        self.instruction += 4
        return obj

    def allocate_array(self, length: int, name: str = "slot") -> HeapObject:
        """Allocate a record of ``length`` numbered fields (an array)."""
        return self.allocate([f"{name}{i}" for i in range(length)])

    def work(self, instructions: int) -> None:
        """Charge pure-compute instructions (no memory traffic)."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        self.instruction += instructions

    @property
    def heap_bytes(self) -> int:
        """Total bytes allocated so far."""
        return self._brk

    @property
    def recorded_accesses(self) -> int:
        return len(self._addresses)

    def finish(self) -> RecordedTrace:
        """Freeze the recording into a replayable trace."""
        return RecordedTrace(
            self.name,
            self._addresses,
            self._kinds,
            self._instructions,
            self._pointer_flags,
        )
