"""Olden ``em3d``: electromagnetic wave propagation on a 3-D irregular
bipartite graph [Culler et al.; Olden port by Carlisle & Rogers].

Two node lists — E (electric field) and H (magnetic field) — are
cross-linked: each node holds a ``from`` array of pointers into the
other list plus matching coefficients.  Each timestep updates every
node's value from its neighbours::

    e.value -= Σ_i  coeff_i * from_i.value

The access pattern is a linear sweep over one list with random-indexed
loads into the other — the canonical irregular-gather kernel.  The
paper finds em3d strongly splittable (Table 2 ratio 0.14).
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.olden.heap import HeapObject, RecordedTrace, TracedHeap

_NODE_FIELDS = ("value", "from_count", "from_nodes", "coeffs", "next")


def _make_nodes(heap: TracedHeap, count: int, rng) -> "list[HeapObject]":
    """Allocate one side's node list (values random in [0, 1))."""
    nodes = []
    for _ in range(count):
        node = heap.allocate(_NODE_FIELDS)
        node.set("value", float(rng.random()))
        nodes.append(node)
    return nodes


def _link(
    heap: TracedHeap,
    nodes: "list[HeapObject]",
    others: "list[HeapObject]",
    degree: int,
    rng,
) -> None:
    """Give each node a ``from`` array of ``degree`` random neighbours."""
    for node in nodes:
        from_array = heap.allocate_array(degree, name="from")
        coeff_array = heap.allocate_array(degree, name="coeff")
        picks = rng.integers(0, len(others), size=degree)
        for i in range(degree):
            from_array.set(f"from{i}", others[int(picks[i])])
            coeff_array.set(f"coeff{i}", float(rng.random()))
        node.set("from_count", degree)
        node.set("from_nodes", from_array)
        node.set("coeffs", coeff_array)


def _compute(heap: TracedHeap, nodes: "list[HeapObject]") -> None:
    """One half-step: update every node from its neighbours."""
    for node in nodes:
        count = node.get("from_count")
        from_array = node.get("from_nodes")
        coeff_array = node.get("coeffs")
        value = node.get("value")
        for i in range(count):
            neighbour = from_array.get(f"from{i}")
            value -= coeff_array.get(f"coeff{i}") * neighbour.get("value")
            heap.work(3)  # multiply-subtract + loop overhead
        node.set("value", value)


def em3d(
    num_nodes: int = 2000,
    degree: int = 10,
    timesteps: int = 12,
    seed: int = 783,
) -> RecordedTrace:
    """Run em3d: ``num_nodes`` E nodes + ``num_nodes`` H nodes,
    ``degree`` dependencies per node, ``timesteps`` iterations.

    The paper's input is 2000 nodes (Table 1); the default matches.
    """
    if num_nodes <= 0 or degree <= 0 or timesteps <= 0:
        raise ValueError("num_nodes, degree and timesteps must be positive")
    heap = TracedHeap("em3d")
    rng = make_rng(seed)
    e_nodes = _make_nodes(heap, num_nodes, rng)
    h_nodes = _make_nodes(heap, num_nodes, rng)
    _link(heap, e_nodes, h_nodes, degree, rng)
    _link(heap, h_nodes, e_nodes, degree, rng)
    for _ in range(timesteps):
        _compute(heap, e_nodes)
        _compute(heap, h_nodes)
    return heap.finish()
