"""Olden ``health``: discrete-event simulation of the Colombian
health-care system [Lomet; Olden port by Carlisle & Rogers].

A 4-ary tree of villages, each with a hospital holding three linked
lists of patients (waiting, assess, inside).  Every timestep, each
village generates patients stochastically; patients wait, are assessed,
and are then either treated locally or referred *up* the tree to the
parent hospital.  The hot data structure is a forest of linked lists
whose cells are allocated continuously — the churning pointer-chasing
workload the paper's conclusion highlights (Table 2 ratio 0.14).

This is a faithful port of the Olden logic (``sim``,
``check_patients_*``, ``generate_patient``) with the list cells
allocated on the traced heap.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.olden.heap import HeapObject, RecordedTrace, TracedHeap

_VILLAGE_FIELDS = (
    "level",
    "seed",
    "parent",
    "child0",
    "child1",
    "child2",
    "child3",
    "free_personnel",
    "waiting",
    "assess",
    "inside",
    "returned",
)
_PATIENT_FIELDS = ("hosps_visited", "time", "time_left", "chart")
_CHART_FIELDS = tuple(f"c{i}" for i in range(8))
_CELL_FIELDS = ("patient", "next")

_ASSESS_TIME = 5
_TREATMENT_TIME = 60
_REFERRAL_PROBABILITY = 1.0 / 3.0
_SICK_PROBABILITY = 0.9
_PERSONNEL = 80


class _List:
    """A traced singly-linked list with head pointer stored in a village
    field.  Operations walk and mutate heap cells (all accesses traced)."""

    def __init__(self, heap: TracedHeap, owner: HeapObject, field: str) -> None:
        self._heap = heap
        self._owner = owner
        self._field = field

    def push_back(self, patient: HeapObject) -> None:
        cell = self._heap.allocate(_CELL_FIELDS)
        cell.set("patient", patient)
        cell.set("next", None)
        head = self._owner.get(self._field)
        if head is None:
            self._owner.set(self._field, cell)
            return
        node = head
        while True:
            nxt = node.get("next")
            if nxt is None:
                break
            node = nxt
        node.set("next", cell)

    def drain(self) -> "list[HeapObject]":
        """Walk the list collecting patients, removing every cell."""
        patients = []
        node = self._owner.get(self._field)
        while node is not None:
            patients.append(node.get("patient"))
            node = node.get("next")
        self._owner.set(self._field, None)
        return patients

    def filter_in_place(self, keep) -> "list[HeapObject]":
        """Remove patients for which ``keep(patient)`` is false; return
        the removed ones.  Walks the list with traced pointer updates."""
        removed = []
        previous = None
        node = self._owner.get(self._field)
        while node is not None:
            patient = node.get("patient")
            nxt = node.get("next")
            if keep(patient):
                previous = node
            else:
                removed.append(patient)
                if previous is None:
                    self._owner.set(self._field, nxt)
                else:
                    previous.set("next", nxt)
            node = nxt
        return removed


def _build_village(
    heap: TracedHeap,
    level: int,
    parent: "HeapObject | None",
    rng,
    villages: "list[HeapObject]",
) -> HeapObject:
    village = heap.allocate(_VILLAGE_FIELDS)
    village.set("level", level)
    village.set("seed", int(rng.integers(0, 1 << 30)))
    village.set("parent", parent)
    village.set("free_personnel", _PERSONNEL)
    for field in ("waiting", "assess", "inside", "returned"):
        village.set(field, None)
    villages.append(village)
    for i in range(4):
        child = (
            _build_village(heap, level - 1, village, rng, villages)
            if level > 0
            else None
        )
        village.set(f"child{i}", child)
    return village


def _simulate_step(heap: TracedHeap, village: HeapObject, rng) -> None:
    """One timestep at one village (post-order over the tree is done by
    the caller, mirroring Olden's bottom-up ``sim``)."""
    waiting = _List(heap, village, "waiting")
    assess = _List(heap, village, "assess")
    inside = _List(heap, village, "inside")

    # check_patients_inside: treated patients leave, freeing personnel.
    def still_inside(patient: HeapObject) -> bool:
        time_left = patient.get("time_left") - 1
        patient.set("time_left", time_left)
        patient.set("time", patient.get("time") + 1)
        chart = patient.get("chart")
        chart.get(_CHART_FIELDS[time_left % 8])
        chart.set(_CHART_FIELDS[(time_left + 1) % 8], time_left)
        return time_left > 0

    done = inside.filter_in_place(still_inside)
    if done:
        village.set(
            "free_personnel", village.get("free_personnel") + len(done)
        )

    # check_patients_assess: assessed patients are treated locally or
    # referred up with probability 1/3 (always referred at level 0... the
    # Olden rule refers up when the assessment says so and a parent exists).
    referrals: "list[HeapObject]" = []

    def still_assessing(patient: HeapObject) -> bool:
        time_left = patient.get("time_left") - 1
        patient.set("time_left", time_left)
        patient.set("time", patient.get("time") + 1)
        return time_left > 0

    finished = assess.filter_in_place(still_assessing)
    for patient in finished:
        parent = village.get("parent")
        if parent is not None and rng.random() < _REFERRAL_PROBABILITY:
            referrals.append(patient)
            village.set(
                "free_personnel", village.get("free_personnel") + 1
            )
        else:
            patient.set("time_left", _TREATMENT_TIME)
            inside.push_back(patient)

    for patient in referrals:
        patient.set("hosps_visited", patient.get("hosps_visited") + 1)
        parent = village.get("parent")
        _List(heap, parent, "waiting").push_back(patient)

    # check_patients_waiting: admit while personnel are free.
    admitted: "list[HeapObject]" = []

    def keep_waiting(patient: HeapObject) -> bool:
        if village.get("free_personnel") > 0 and not admitted_full[0]:
            village.set("free_personnel", village.get("free_personnel") - 1)
            patient.set("time_left", _ASSESS_TIME)
            admitted.append(patient)
            return False
        patient.set("time", patient.get("time") + 1)
        return True

    admitted_full = [False]
    waiting.filter_in_place(keep_waiting)
    for patient in admitted:
        assess.push_back(patient)

    # generate_patient: every village admits new patients stochastically
    # (leaves and interior hospitals alike).
    if rng.random() < _SICK_PROBABILITY:
        patient = heap.allocate(_PATIENT_FIELDS)
        patient.set("hosps_visited", 1)
        patient.set("time", 0)
        patient.set("time_left", 0)
        chart = heap.allocate(_CHART_FIELDS)
        for field in _CHART_FIELDS:
            chart.set(field, 0)
        patient.set("chart", chart)
        waiting.push_back(patient)


def health(
    max_level: int = 4, timesteps: int = 160, seed: int = 42
) -> RecordedTrace:
    """Run the health simulation.

    ``max_level`` levels of villages (the paper uses 5; default 4 =
    85 villages) for ``timesteps`` steps (paper: 500).
    """
    if max_level < 1:
        raise ValueError(f"max_level must be >= 1, got {max_level}")
    if timesteps <= 0:
        raise ValueError(f"timesteps must be positive, got {timesteps}")
    heap = TracedHeap("health")
    rng = make_rng(seed)
    villages: "list[HeapObject]" = []
    _build_village(heap, max_level - 1, None, rng, villages)
    # Bottom-up order: deeper villages first, as in Olden's recursive sim.
    villages.sort(key=lambda v: v.peek("level"))
    for _ in range(timesteps):
        for village in villages:
            _simulate_step(heap, village, rng)
    return heap.finish()
