"""Olden ``perimeter``: perimeter of a quadtree-encoded image region
[Samet's algorithm; Olden port by Carlisle & Rogers].

Another extension workload beyond the paper's five: a four-way pointer
tree (NW/NE/SW/SE + parent) is built over a rasterised disk, and the
region's perimeter is computed by visiting every black leaf and
checking its four sides against same-or-larger adjacent neighbours,
found by walking *up* through parent pointers and mirroring back down —
Samet's classic neighbour-finding, an aggressively pointer-chasing
access pattern.

The traced result is verified against a brute-force pixel count on the
same raster.
"""

from __future__ import annotations

from repro.olden.heap import HeapObject, RecordedTrace, TracedHeap

_NODE_FIELDS = ("color", "parent", "quadrant", "size", "nw", "ne", "sw", "se")

_WHITE, _BLACK, _GREY = 0, 1, 2

#: child quadrants as (dy, dx) half-offsets
_QUADRANTS = {"nw": (0, 0), "ne": (0, 1), "sw": (1, 0), "se": (1, 1)}

# Samet adjacency tables for vertical/horizontal neighbours:
# _ADJACENT[side][quadrant] is True when the neighbour in `side`
# direction lies outside the parent; _REFLECT[side][quadrant] mirrors a
# quadrant across the side.
_ADJACENT = {
    "north": {"nw": True, "ne": True, "sw": False, "se": False},
    "south": {"sw": True, "se": True, "nw": False, "ne": False},
    "west": {"nw": True, "sw": True, "ne": False, "se": False},
    "east": {"ne": True, "se": True, "nw": False, "sw": False},
}
_REFLECT = {
    "north": {"nw": "sw", "ne": "se", "sw": "nw", "se": "ne"},
    "south": {"nw": "sw", "ne": "se", "sw": "nw", "se": "ne"},
    "west": {"nw": "ne", "sw": "se", "ne": "nw", "se": "sw"},
    "east": {"nw": "ne", "sw": "se", "ne": "nw", "se": "sw"},
}


def _disk_color(y: int, x: int, size: int) -> bool:
    """The rasterised image: a disk centred in the [0, size)^2 grid."""
    cy = cx = (size - 1) / 2.0
    radius = size * 0.37
    return (y - cy) ** 2 + (x - cx) ** 2 <= radius**2


def _build(
    heap: TracedHeap,
    parent: "HeapObject | None",
    quadrant: "str | None",
    y: int,
    x: int,
    size: int,
) -> HeapObject:
    node = heap.allocate(_NODE_FIELDS)
    node.set("parent", parent)
    node.set("quadrant", quadrant)
    node.set("size", size)
    colors = {
        _disk_color(yy, xx, _build.image_size)
        for yy in range(y, y + size)
        for xx in range(x, x + size)
    }
    if len(colors) == 1 or size == 1:
        node.set("color", _BLACK if colors.pop() else _WHITE)
        for child in _QUADRANTS:
            node.set(child, None)
    else:
        node.set("color", _GREY)
        half = size // 2
        for child, (dy, dx) in _QUADRANTS.items():
            node.set(
                child,
                _build(heap, node, child, y + dy * half, x + dx * half, half),
            )
    return node


def _neighbor(heap: TracedHeap, node: HeapObject, side: str) -> "HeapObject | None":
    """Samet: the same-or-larger neighbour of ``node`` on ``side``."""
    quadrant = node.get("quadrant")
    parent = node.get("parent")
    if parent is None:
        return None
    if _ADJACENT[side][quadrant]:
        mirror = _neighbor(heap, parent, side)
        if mirror is None or mirror.get("color") != _GREY:
            return mirror
        return mirror.get(_REFLECT[side][quadrant])
    return parent.get(_REFLECT[side][quadrant])


def _side_contribution(
    heap: TracedHeap, node: HeapObject, side: str
) -> int:
    """Perimeter contributed by one side of a black leaf."""
    size = node.get("size")
    neighbor = _neighbor(heap, node, side)
    if neighbor is None:
        return size  # image border
    color = neighbor.get("color")
    if color == _WHITE:
        return size
    if color == _BLACK:
        return 0
    # Grey, same size: sum the white leaves along the touching edge.
    opposite = {"north": "south", "south": "north", "west": "east", "east": "west"}
    return _edge_white_length(heap, neighbor, opposite[side], size)


def _edge_white_length(
    heap: TracedHeap, node: HeapObject, side: str, limit: int
) -> int:
    """Length of white border along ``side`` of ``node``'s subtree."""
    color = node.get("color")
    if color == _WHITE:
        return min(node.get("size"), limit)
    if color == _BLACK:
        return 0
    touching = {
        "north": ("nw", "ne"),
        "south": ("sw", "se"),
        "west": ("nw", "sw"),
        "east": ("ne", "se"),
    }[side]
    return sum(
        _edge_white_length(heap, node.get(child), side, limit)
        for child in touching
    )


def _perimeter(heap: TracedHeap, node: HeapObject) -> int:
    color = node.get("color")
    if color == _GREY:
        return sum(
            _perimeter(heap, node.get(child)) for child in _QUADRANTS
        )
    if color == _WHITE:
        return 0
    heap.work(8)
    return sum(
        _side_contribution(heap, node, side)
        for side in ("north", "south", "west", "east")
    )


def _reference_perimeter(size: int) -> int:
    """Brute force on the raster: black pixels' white/border edges."""
    total = 0
    for y in range(size):
        for x in range(size):
            if not _disk_color(y, x, size):
                continue
            for dy, dx in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ny, nx = y + dy, x + dx
                if not (0 <= ny < size and 0 <= nx < size):
                    total += 1
                elif not _disk_color(ny, nx, size):
                    total += 1
    return total


def perimeter(levels: int = 7, iterations: int = 2) -> RecordedTrace:
    """Build the quadtree of a ``2^levels``-pixel-square disk image and
    compute its perimeter ``iterations`` times, verifying against the
    brute-force raster answer."""
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    size = 1 << levels
    heap = TracedHeap("perimeter")
    _build.image_size = size
    root = _build(heap, None, None, 0, 0, size)
    expected = _reference_perimeter(size)
    for _ in range(iterations):
        measured = _perimeter(heap, root)
        if measured != expected:
            raise AssertionError(
                f"perimeter computed {measured}, expected {expected}"
            )
    return heap.finish()
