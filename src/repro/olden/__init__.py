"""Mini-Olden: the five Olden benchmarks the paper evaluates, re-implemented
in Python over a traced heap.

The Olden suite [Carlisle & Rogers 1995; sequential versions by Amir
Roth] exercises linked data structures — exactly the workloads the
paper's conclusion singles out as the most promising for execution
migration.  Rather than synthesising "pointer-like" traces, this package
*runs the real algorithms* over a simulated heap
(:class:`repro.olden.heap.TracedHeap`) that records every field access
with its dynamic instruction index, so the locality structure in the
trace is the genuine article.

Benchmarks (paper Table 1 inputs in parentheses; defaults here are
scaled down, every size is a constructor argument):

* :func:`~repro.olden.bh.bh` — Barnes-Hut N-body (2k bodies)
* :func:`~repro.olden.bisort.bisort` — bitonic sort of a binary tree (250k numbers)
* :func:`~repro.olden.em3d.em3d` — 3-D electromagnetic wave propagation (2000 nodes)
* :func:`~repro.olden.health.health` — Colombian health-care simulation (5 levels, 500 iters)
* :func:`~repro.olden.mst.mst` — minimum spanning tree over hashed adjacency (1024 nodes)
"""

from repro.common.rng import mix_seed
from repro.olden.heap import HeapObject, RecordedTrace, TracedHeap
from repro.olden.bh import bh
from repro.olden.bisort import bisort
from repro.olden.em3d import em3d
from repro.olden.health import health
from repro.olden.mst import mst
from repro.olden.perimeter import perimeter
from repro.olden.treeadd import treeadd

#: the five benchmarks the paper evaluates (Tables 1-2, Figure 5)
OLDEN_BENCHMARKS = ("bh", "bisort", "em3d", "health", "mst")

#: extra Olden programs implemented beyond the paper's set
OLDEN_EXTENSIONS = ("perimeter", "treeadd")


def olden_benchmark(
    name: str, scale: float = 1.0, seed: "int | None" = None
) -> RecordedTrace:
    """Run one Olden benchmark at a size factor and return its trace.

    ``scale`` multiplies the default problem size (1.0 = this package's
    defaults, which are themselves scaled down from the paper's inputs).
    ``seed`` re-derives each benchmark's input-generation seed (``None``
    keeps the calibrated defaults; ``treeadd`` and ``perimeter`` are
    deterministic and ignore it).
    """

    def derive(default: int) -> int:
        if seed is None:
            return default
        return mix_seed(seed, "olden", name)

    if name == "bh":
        return bh(num_bodies=max(64, int(2048 * scale)), seed=derive(121))
    if name == "bisort":
        target = max(1024, int(8192 * scale))
        return bisort(size=1 << (target - 1).bit_length(), seed=derive(1024))
    if name == "em3d":
        return em3d(num_nodes=max(128, int(2000 * scale)), seed=derive(783))
    if name == "health":
        return health(
            max_level=4, timesteps=max(20, int(160 * scale)), seed=derive(42)
        )
    if name == "mst":
        return mst(num_vertices=max(64, int(512 * scale)), seed=derive(317))
    if name == "treeadd":
        target = max(256, int((1 << 14) * scale))
        return treeadd(levels=target.bit_length())
    if name == "perimeter":
        return perimeter(levels=7 if scale >= 0.5 else 6)
    raise KeyError(
        f"unknown Olden benchmark {name!r}; "
        f"known: {OLDEN_BENCHMARKS + OLDEN_EXTENSIONS}"
    )


__all__ = [
    "HeapObject",
    "OLDEN_BENCHMARKS",
    "OLDEN_EXTENSIONS",
    "RecordedTrace",
    "TracedHeap",
    "bh",
    "bisort",
    "em3d",
    "health",
    "mst",
    "olden_benchmark",
    "perimeter",
    "treeadd",
]
