"""Partition-quality metrics.

Quality has two axes (paper section 3.1): **balance** (the subsets
should be the same size, since each maps to one core's L2) and **cut**
(transitions between subsets should be rare).  The cut can be computed
on the transition graph or measured directly by replaying the stream
against a fixed assignment — the two agree by construction, and the
replay form also works for online algorithms whose assignment changes
over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Set

from repro.partition.graph import TransitionGraph


@dataclass(frozen=True)
class PartitionQuality:
    """Cut + balance summary of a bipartition."""

    cut_weight: int
    total_weight: int
    size_a: int
    size_b: int

    @property
    def cut_fraction(self) -> float:
        """Fraction of transition weight crossing the cut (0 = perfect)."""
        if self.total_weight == 0:
            return 0.0
        return self.cut_weight / self.total_weight

    @property
    def balance(self) -> float:
        """max-side share: 0.5 = perfectly balanced, 1.0 = degenerate."""
        total = self.size_a + self.size_b
        if total == 0:
            return 0.5
        return max(self.size_a, self.size_b) / total


def evaluate_partition(
    graph: TransitionGraph, side_a: "Set[int]", side_b: "Set[int]"
) -> PartitionQuality:
    """Quality of a static bipartition against a transition graph."""
    overlap = side_a & side_b
    if overlap:
        raise ValueError(f"sides overlap on {len(overlap)} nodes")
    return PartitionQuality(
        cut_weight=graph.cut_weight(side_a),
        total_weight=graph.total_weight,
        size_a=len(side_a),
        size_b=len(side_b),
    )


def replay_transition_frequency(
    references: "Iterable[int]", subset_of: "Callable[[int], int]"
) -> float:
    """Fraction of consecutive reference pairs that change subset.

    ``subset_of`` maps a line to its subset id; works for static
    partitions (closure over a set) and for oracle assignments alike.
    """
    transitions = 0
    count = 0
    previous = None
    for line in references:
        subset = subset_of(line)
        if previous is not None and subset != previous:
            transitions += 1
        previous = subset
        count += 1
    if count <= 1:
        return 0.0
    return transitions / (count - 1)
