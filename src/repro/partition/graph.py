"""The working-set transition graph (paper section 3.1).

"Let us consider a graph which nodes are the static cache lines
constituting the program working-set.  An edge from line A to line B
means that line B may be referenced just after line A, the edge being
weighted with its frequency of occurrence."

The graph is undirected for partitioning purposes (a transition costs
the same in both directions).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, Set, Tuple


class TransitionGraph:
    """Weighted undirected graph over cache lines."""

    def __init__(self) -> None:
        self._adjacency: "Dict[int, Counter]" = defaultdict(Counter)
        self.total_weight = 0

    @property
    def nodes(self) -> "Set[int]":
        return set(self._adjacency)

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    def add_transition(self, a: int, b: int, weight: int = 1) -> None:
        """Record that ``b`` was referenced just after ``a``."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if a == b:
            self._adjacency[a]  # self-transitions never cross a cut; track the node
            return
        self._adjacency[a][b] += weight
        self._adjacency[b][a] += weight
        self.total_weight += weight

    def weight(self, a: int, b: int) -> int:
        return self._adjacency.get(a, Counter()).get(b, 0)

    def neighbors(self, node: int) -> "Dict[int, int]":
        return dict(self._adjacency.get(node, Counter()))

    def degree(self, node: int) -> int:
        """Total edge weight incident to ``node``."""
        return sum(self._adjacency.get(node, Counter()).values())

    def cut_weight(self, side_a: "Set[int]") -> int:
        """Total weight of edges with exactly one endpoint in ``side_a``."""
        cut = 0
        for node in side_a:
            for other, weight in self._adjacency.get(node, Counter()).items():
                if other not in side_a:
                    cut += weight
        return cut

    def edges(self) -> "Iterable[Tuple[int, int, int]]":
        """Each undirected edge once, as ``(a, b, weight)`` with a < b."""
        for a, counter in self._adjacency.items():
            for b, weight in counter.items():
                if a < b:
                    yield a, b, weight


def build_transition_graph(references: "Iterable[int]") -> TransitionGraph:
    """Build the transition graph of a reference stream (line addresses)."""
    graph = TransitionGraph()
    previous = None
    for line in references:
        if previous is not None:
            graph.add_transition(previous, line)
        previous = line
    return graph
