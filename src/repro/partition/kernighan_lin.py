"""Kernighan-Lin graph bipartitioning [Kernighan & Lin 1970].

The classic offline heuristic the paper cites ([13]) when framing
working-set splitting as graph bisection.  It serves as the quality
baseline for the online affinity algorithm: on splittable working sets
the affinity algorithm should approach the KL cut; on random ones both
are equally helpless.

Standard formulation: start from a balanced partition, repeatedly build
a pass of tentative swaps by greedily pairing the highest-gain
not-yet-locked vertices, then commit the prefix of the pass with the
best cumulative gain; stop when a pass yields no improvement.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.common.rng import make_rng
from repro.partition.graph import TransitionGraph


def _d_value(graph: TransitionGraph, node: int, own: "Set[int]") -> int:
    """External minus internal cost of ``node`` w.r.t. its side."""
    external = 0
    internal = 0
    for other, weight in graph.neighbors(node).items():
        if other in own:
            internal += weight
        else:
            external += weight
    return external - internal


def kernighan_lin_bipartition(
    graph: TransitionGraph,
    max_passes: int = 10,
    seed: "int | None" = 0,
) -> "Tuple[Set[int], Set[int]]":
    """Balanced 2-way partition of ``graph`` minimising the cut.

    Returns ``(side_a, side_b)`` with sizes differing by at most one.
    Deterministic for a given ``seed`` (used for the initial split).
    """
    nodes = sorted(graph.nodes)
    if not nodes:
        return set(), set()
    rng = make_rng(seed)
    order = list(nodes)
    rng.shuffle(order)
    half = len(order) // 2
    side_a = set(order[:half])
    side_b = set(order[half:])

    for _ in range(max_passes):
        gain = _one_pass(graph, side_a, side_b)
        if gain <= 0:
            break
    return side_a, side_b


def _one_pass(
    graph: TransitionGraph, side_a: "Set[int]", side_b: "Set[int]"
) -> int:
    """One KL pass; mutates the sides in place, returns the gain kept."""
    d = {}
    for node in side_a:
        d[node] = _d_value(graph, node, side_a)
    for node in side_b:
        d[node] = _d_value(graph, node, side_b)
    unlocked_a = set(side_a)
    unlocked_b = set(side_b)
    swaps: "list[Tuple[int, int, int]]" = []  # (a, b, gain)
    while unlocked_a and unlocked_b:
        best = None
        # Consider the top few highest-d candidates on each side; exact
        # KL examines all pairs, which is O(n^2) per step — the capped
        # candidate set keeps passes tractable on trace-sized graphs
        # while preserving the greedy character.
        candidates_a = sorted(unlocked_a, key=lambda n: -d[n])[:16]
        candidates_b = sorted(unlocked_b, key=lambda n: -d[n])[:16]
        for a in candidates_a:
            neighbors_a = graph.neighbors(a)
            for b in candidates_b:
                gain = d[a] + d[b] - 2 * neighbors_a.get(b, 0)
                if best is None or gain > best[2]:
                    best = (a, b, gain)
        assert best is not None
        a, b, gain = best
        swaps.append(best)
        unlocked_a.discard(a)
        unlocked_b.discard(b)
        # Update d-values as if a and b were swapped.
        for node, weight in graph.neighbors(a).items():
            if node in unlocked_a:
                d[node] += 2 * weight
            elif node in unlocked_b:
                d[node] -= 2 * weight
        for node, weight in graph.neighbors(b).items():
            if node in unlocked_b:
                d[node] += 2 * weight
            elif node in unlocked_a:
                d[node] -= 2 * weight

    # Commit the best prefix.
    best_k = 0
    best_total = 0
    total = 0
    for k, (_a, _b, gain) in enumerate(swaps, start=1):
        total += gain
        if total > best_total:
            best_total = total
            best_k = k
    for a, b, _gain in swaps[:best_k]:
        side_a.discard(a)
        side_b.discard(b)
        side_a.add(b)
        side_b.add(a)
    return best_total
