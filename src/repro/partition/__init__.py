"""Offline working-set partitioning baselines (paper section 3.1).

The paper frames working-set splitting as graph bipartitioning: nodes
are cache lines, an edge A→B weighted by how often B is referenced
right after A, and the objective is a balanced split minimising the cut
(= the transition frequency).  That problem is NP-hard; the affinity
algorithm is an online heuristic for it.  This package provides the
offline comparators:

* :mod:`repro.partition.graph` -- build the transition graph from a
  reference stream,
* :mod:`repro.partition.kernighan_lin` -- the classic Kernighan-Lin
  bipartitioning heuristic [13],
* :mod:`repro.partition.static` -- trivial baselines (random, modulo,
  address-halving),
* :mod:`repro.partition.metrics` -- cut size, balance, and measured
  transition frequency of a partition against a stream.
"""

from repro.partition.graph import TransitionGraph, build_transition_graph
from repro.partition.kernighan_lin import kernighan_lin_bipartition
from repro.partition.metrics import (
    PartitionQuality,
    evaluate_partition,
    replay_transition_frequency,
)
from repro.partition.static import (
    address_halving_split,
    modulo_split,
    random_split,
)

__all__ = [
    "PartitionQuality",
    "TransitionGraph",
    "address_halving_split",
    "build_transition_graph",
    "evaluate_partition",
    "kernighan_lin_bipartition",
    "modulo_split",
    "random_split",
    "replay_transition_frequency",
]
