"""Trivial static partitioning baselines.

These give the floor the affinity algorithm must beat:

* :func:`random_split` — each line assigned by coin flip: on *any*
  working set the expected transition frequency is 1/2 (the paper's
  unsplittable bound, section 3.4);
* :func:`modulo_split` — line address parity, the hardware-trivial
  interleaving every banked cache uses;
* :func:`address_halving_split` — below-median vs above-median
  addresses; wins when the program's layout happens to match its phase
  structure.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.common.rng import make_rng


def random_split(
    lines: "Iterable[int]", seed: "int | None" = 0
) -> "Tuple[Set[int], Set[int]]":
    """Balanced uniform-random bipartition."""
    ordered = sorted(set(lines))
    rng = make_rng(seed)
    rng.shuffle(ordered)
    half = len(ordered) // 2
    return set(ordered[:half]), set(ordered[half:])


def modulo_split(lines: "Iterable[int]") -> "Tuple[Set[int], Set[int]]":
    """Bipartition by line-address parity (bank interleaving)."""
    even = set()
    odd = set()
    for line in set(lines):
        (even if line % 2 == 0 else odd).add(line)
    return even, odd


def address_halving_split(lines: "Iterable[int]") -> "Tuple[Set[int], Set[int]]":
    """Bipartition at the median line address."""
    ordered = sorted(set(lines))
    half = len(ordered) // 2
    return set(ordered[:half]), set(ordered[half:])
