"""The job model: pure, picklable units of experiment work.

A :class:`Job` names a module-level **job function** by import path
(``"repro.experiments.table2:table2_job"``) plus a flat mapping of
JSON-serialisable parameters.  Keeping the function as a string (rather
than a callable) makes jobs picklable under any ``multiprocessing``
start method and gives them a deterministic content hash: two processes
constructing the same (fn, params) pair agree on the hash, which is
what lets the on-disk cache resume interrupted runs.

Job functions take the params as keyword arguments and return a
JSON-serialisable ``dict`` payload.  A payload may carry the reserved
key ``"references"`` (trace references simulated) which the scheduler
surfaces as refs/sec in progress events.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

#: payload key job functions may set to report work volume (refs simulated)
REFERENCES_KEY = "references"


class JobError(RuntimeError):
    """A job function raised, timed out, or its worker died."""


def _first_nonfinite(value: object, path: str = "$") -> "tuple[str, float] | None":
    """Locate the first NaN/Infinity in a JSON-ish value, depth-first."""
    if isinstance(value, float) and not math.isfinite(value):
        return path, value
    if isinstance(value, dict):
        for key, item in value.items():
            found = _first_nonfinite(item, f"{path}.{key}")
            if found is not None:
                return found
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            found = _first_nonfinite(item, f"{path}[{i}]")
            if found is not None:
                return found
    return None


def canonical_json(value: object) -> str:
    """Canonical JSON: sorted keys, no whitespace, no NaN surprises.

    NaN/Infinity are rejected outright (with the offending path named)
    rather than serialised as the non-standard ``NaN``/``Infinity``
    tokens: those tokens are not JSON, so different clients would
    encode them differently and two "identical" submissions could hash
    apart — job identity must be portable across every producer.
    """
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        found = _first_nonfinite(value)
        if found is not None:
            path, bad = found
            raise ValueError(
                f"non-finite float {bad!r} at {path}: NaN/Infinity are "
                "not portable JSON and are rejected in job params and "
                "payloads"
            ) from exc
        raise


@dataclass(frozen=True)
class Job:
    """One schedulable unit: a job function plus its parameters.

    ``params`` is stored as a sorted tuple of items so jobs are
    hashable and their content hash is independent of keyword order.
    ``label`` is display-only and deliberately excluded from the hash.
    """

    fn: str  #: ``"package.module:function"``
    params: "tuple[tuple[str, object], ...]" = ()
    label: str = field(default="", compare=False)

    @classmethod
    def create(cls, fn: str, label: str = "", **params: object) -> "Job":
        if ":" not in fn:
            raise ValueError(
                f"job fn must be 'module:function', got {fn!r}"
            )
        # Validate eagerly so a NaN/Infinity (or unserialisable) param
        # fails at submission with a clear message, not later inside
        # ``.hash`` deep in the scheduler or a service worker.
        canonical_json(dict(params))
        return cls(fn=fn, params=tuple(sorted(params.items())), label=label)

    @property
    def kwargs(self) -> "dict[str, object]":
        return dict(self.params)

    @property
    def name(self) -> str:
        return self.label or self.fn.rsplit(":", 1)[-1]

    @property
    def hash(self) -> str:
        """Deterministic content hash of (fn, params).

        Stable across processes and interpreter runs (built on SHA-256
        over canonical JSON).  Code changes are deliberately *not*
        folded in here — the cache layer pairs this hash with the
        package's code fingerprint, so job identity survives edits
        while cached results do not.
        """
        body = canonical_json({"fn": self.fn, "params": self.kwargs})
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


def resolve_job(job: Job) -> "Callable[..., Mapping[str, object]]":
    """Import and return the job's function (worker-process safe)."""
    module_name, _, attr = job.fn.partition(":")
    try:
        module = importlib.import_module(module_name)
        fn = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise JobError(f"cannot resolve job fn {job.fn!r}: {exc}") from exc
    if not callable(fn):
        raise JobError(f"job fn {job.fn!r} is not callable")
    return fn


def execute_job(job: Job) -> "tuple[dict[str, object], float]":
    """Run one job in the current process; return (payload, seconds)."""
    fn = resolve_job(job)
    start = time.perf_counter()
    payload = fn(**job.kwargs)
    duration = time.perf_counter() - start
    if not isinstance(payload, dict):
        raise JobError(
            f"job {job.name!r} returned {type(payload).__name__}, "
            "expected a JSON-serialisable dict"
        )
    return payload, duration
