"""Sweep checkpoint: append-only journal of completed jobs.

The result cache already makes re-runs cheap, but it is a *shared*
store: it can be disabled (``--no-cache``), on a full disk it degrades
to compute-through, and a code edit invalidates it wholesale.  A
:class:`SweepCheckpoint` is the narrow, per-sweep complement — one
JSONL file journaling every completed job of one sweep, flushed and
fsynced per record, so a driver or broker killed mid-sweep (SIGKILL,
OOM, power) restarts and loses **only the jobs that were in flight**.

File shape (one JSON object per line)::

    {"kind": "header", "code_version": "...", "created": ...}
    {"kind": "done", "job_hash": "...", "payload": {...}, "duration": ...}

Recovery rules, all exercised by the chaos suite:

* a torn final line (the kill landed mid-write) is ignored — every
  complete record before it is kept;
* a header from a different code version marks the whole journal
  stale: it is discarded and rewritten, exactly like the result
  cache's generation scheme;
* a missing or unwritable journal never fails the sweep — the
  checkpoint degrades to a no-op with a warning, like the cache's
  compute-through mode.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import IO

from repro.runtime.cache import code_fingerprint
from repro.runtime.health import health_counter
from repro.runtime.job import Job, canonical_json


class SweepCheckpoint:
    """One sweep's completed-job journal (thread-safe appends)."""

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        code_version: "str | None" = None,
    ) -> None:
        self.path = Path(path)
        self.code_version = code_version or code_fingerprint()
        self._completed: "dict[str, dict[str, object]]" = {}
        self._handle: "IO[str] | None" = None
        self._lock = threading.Lock()
        self._degraded = False
        self._load()

    # -- recovery --------------------------------------------------------

    def _load(self) -> None:
        """Replay the journal, tolerating a torn tail and discarding a
        stale (different code version) or unparseable journal."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        except OSError as exc:
            self._degrade(f"unreadable checkpoint {self.path}: {exc}")
            return
        completed: "dict[str, dict[str, object]]" = {}
        stale = not raw
        good_until = 0  # byte offset of the last intact record's end
        offset = 0
        first = True
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # No terminator: the append was cut mid-record (or cut
                # exactly at the record's last byte, indistinguishable
                # from a torn line) — drop the tail.
                health_counter("fault.checkpoint.torn_record").inc()
                break
            end = newline + 1
            line = raw[offset:end]
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                # Torn write from a mid-append kill.  Only complete
                # records before this point survive; the tail is cut
                # off below so future appends extend a clean journal.
                health_counter("fault.checkpoint.torn_record").inc()
                break
            if not isinstance(record, dict):
                break
            if first:
                first = False
                if (
                    record.get("kind") != "header"
                    or record.get("code_version") != self.code_version
                ):
                    stale = True
                    break
            elif record.get("kind") == "done":
                job_hash = record.get("job_hash")
                payload = record.get("payload")
                if isinstance(job_hash, str) and isinstance(payload, dict):
                    completed[job_hash] = payload
            good_until = end
            offset = end
        if stale:
            # A different code version (or an empty file): the whole
            # journal is stale — discard it like a stale cache
            # generation; the next append rewrites the header.
            health_counter("fault.checkpoint.stale_discarded").inc()
            try:
                self.path.unlink()
            except OSError as exc:
                self._degrade(f"cannot discard stale checkpoint: {exc}")
            return
        if good_until < len(raw):
            try:
                with self.path.open("r+b") as handle:
                    handle.truncate(good_until)
            except OSError as exc:
                self._degrade(f"cannot trim torn checkpoint tail: {exc}")
                return
        self._completed = completed

    def _degrade(self, message: str) -> None:
        if not self._degraded:
            self._degraded = True
            print(f"[checkpoint] {message}; continuing without", file=sys.stderr)
        health_counter("fault.checkpoint.write_failed").inc()

    # -- read side -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._completed)

    def get(self, job: Job) -> "dict[str, object] | None":
        """The journaled payload for ``job``, or ``None``."""
        with self._lock:
            return self._completed.get(job.hash)

    # -- write side ------------------------------------------------------

    def record(
        self,
        job: Job,
        payload: "dict[str, object]",
        duration: "float | None" = None,
    ) -> None:
        """Journal one completed job (flushed + fsynced: a kill after
        this call never loses the record)."""
        with self._lock:
            self._completed[job.hash] = payload
            try:
                handle = self._open()
                handle.write(
                    canonical_json(
                        {
                            "kind": "done",
                            "job_hash": job.hash,
                            "payload": payload,
                            "duration": duration,
                        }
                    )
                    + "\n"
                )
                handle.flush()
                os.fsync(handle.fileno())
            except (OSError, ValueError) as exc:
                self._degrade(f"append failed: {exc}")

    def _open(self) -> "IO[str]":
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = self.path.open("a", encoding="utf-8")
            if fresh:
                self._handle.write(
                    canonical_json(
                        {
                            "kind": "header",
                            "code_version": self.code_version,
                            "created": time.time(),
                        }
                    )
                    + "\n"
                )
                self._handle.flush()
        return self._handle

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
