"""``python -m repro.runtime`` — run experiments, inspect the cache.

Subcommands::

    python -m repro.runtime run --jobs 4 --scale 0.5 --only table2
    python -m repro.runtime status
    python -m repro.runtime clear-cache [--stale-only | --older-than DAYS]

``run`` is the same driver as ``python -m repro.experiments.run_all``
(every flag is forwarded); it lives here too so the runtime package is
operable on its own.
"""

from __future__ import annotations

import argparse
import sys

from repro.runtime.cache import ResultCache


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(value)} B"


def _cmd_status(args: argparse.Namespace) -> int:
    cache = ResultCache(root=args.cache_dir)
    status = cache.status()
    print(f"cache root:    {status.root}")
    print(f"code version:  {status.code_version}")
    print(
        f"current:       {status.current_entries} artifacts, "
        f"{_format_bytes(status.current_bytes)}"
    )
    print(
        f"stale:         {status.stale_entries} artifacts, "
        f"{_format_bytes(status.stale_bytes)} (older code versions)"
    )
    if status.by_function:
        print("by job function:")
        for fn, count in sorted(status.by_function.items()):
            print(f"  {fn:50s} {count}")
    return 0


def _cmd_clear_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(root=args.cache_dir)
    if args.older_than is not None:
        removed = cache.prune(older_than_days=args.older_than)
        print(
            f"removed {removed} artifacts older than "
            f"{args.older_than:g} days from {cache.root}"
        )
        return 0
    removed = cache.clear(stale_only=args.stale_only)
    what = "stale artifacts" if args.stale_only else "artifacts"
    print(f"removed {removed} {what} from {cache.root}")
    return 0


def _cmd_run(args: argparse.Namespace, passthrough: "list[str]") -> int:
    # Imported lazily: the experiments layer builds on the runtime, not
    # the other way round.
    from repro.experiments.run_all import main as run_all_main

    return run_all_main(passthrough)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="run experiments through the runtime "
        "(flags forwarded to repro.experiments.run_all)",
        add_help=False,
    )
    run.set_defaults(handler=None)

    status = sub.add_parser("status", help="summarise the result cache")
    status.add_argument("--cache-dir", default=None, help="cache root override")
    status.set_defaults(handler=_cmd_status)

    clear = sub.add_parser("clear-cache", help="delete cached results")
    clear.add_argument("--cache-dir", default=None, help="cache root override")
    clear.add_argument(
        "--stale-only",
        action="store_true",
        help="only remove artifacts from older code versions",
    )
    clear.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="retention mode: only remove artifacts (any code version) "
        "older than DAYS days, plus stale .tmp- staging files — the "
        "flag a long-running service's cron uses to bound .repro-cache",
    )
    clear.set_defaults(handler=_cmd_clear_cache)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run":
        return _cmd_run(argparse.Namespace(), argv[1:])
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
