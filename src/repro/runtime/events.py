"""Structured per-job progress events.

The scheduler emits one :class:`JobEvent` per state change — queued,
started, cache-hit, finished, failed, retried, interrupted — carrying
the job label/hash, attempt number, duration, references simulated and
the derived refs/sec.  Sinks fan the stream out: human-readable lines
on stderr, machine-readable JSONL run logs, or in-memory capture for
tests.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Iterable

#: the event kinds the scheduler emits, in lifecycle order
EVENT_KINDS = (
    "queued",
    "started",
    "cache-hit",
    "finished",
    "retried",
    "failed",
    "interrupted",
)


@dataclass(frozen=True)
class JobEvent:
    """One state change of one job."""

    event: str
    label: str
    job_hash: str
    timestamp: float = field(default_factory=time.time)
    attempt: int = 1
    duration: "float | None" = None  #: seconds, on finished/failed
    references: "int | None" = None  #: trace references simulated
    error: "str | None" = None

    def __post_init__(self) -> None:
        if self.event not in EVENT_KINDS:
            raise ValueError(
                f"unknown event {self.event!r}; known: {EVENT_KINDS}"
            )

    @property
    def refs_per_sec(self) -> "float | None":
        if not self.references or not self.duration:
            return None
        return self.references / self.duration


class StderrSink:
    """Human-readable one-line-per-event progress on a stream."""

    def __init__(self, stream: "IO[str] | None" = None) -> None:
        self._stream = stream

    @property
    def stream(self) -> "IO[str]":
        # Resolved lazily so pytest's capsys replacement is honoured.
        return self._stream if self._stream is not None else sys.stderr

    def emit(self, event: JobEvent) -> None:
        if event.event == "queued":
            return  # one line per queued job is noise at fan-out scale
        parts = [f"[runtime] {event.event:<11s} {event.label}"]
        if event.duration is not None:
            parts.append(f"{event.duration:.2f}s")
        if event.references is not None:
            parts.append(f"{event.references:,} refs")
        rate = event.refs_per_sec
        if rate is not None:
            parts.append(f"{rate:,.0f} refs/s")
        if event.attempt > 1:
            parts.append(f"attempt {event.attempt}")
        if event.error:
            parts.append(f"error: {event.error}")
        print("  ".join(parts), file=self.stream)
        self.stream.flush()


class JsonlSink:
    """Append every event as one JSON object per line (the run log)."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, event: JobEvent) -> None:
        with self.path.open("a", encoding="utf-8") as handle:
            record = asdict(event)
            record["refs_per_sec"] = event.refs_per_sec
            handle.write(json.dumps(record, sort_keys=True) + "\n")


class MemorySink:
    """Collect events in a list (tests, summaries)."""

    def __init__(self) -> None:
        self.events: "list[JobEvent]" = []

    def emit(self, event: JobEvent) -> None:
        self.events.append(event)


class EventBus:
    """Fan one event stream out to several sinks; never let a sink
    failure kill the run (a full disk should not abort a simulation)."""

    def __init__(self, sinks: "Iterable[object]" = ()) -> None:
        self.sinks = list(sinks)

    def add(self, sink: object) -> None:
        self.sinks.append(sink)

    def emit(self, event: JobEvent) -> None:
        for sink in self.sinks:
            try:
                sink.emit(event)
            except Exception as exc:  # noqa: BLE001 - diagnostics only
                print(
                    f"[runtime] event sink {type(sink).__name__} failed: {exc}",
                    file=sys.stderr,
                )
