"""Structured per-job progress events.

The scheduler emits one :class:`JobEvent` per state change — queued,
started, cache-hit, finished, failed, retried, interrupted — carrying
the job label/hash, attempt number, duration, references simulated and
the derived refs/sec.  Sinks fan the stream out: human-readable lines
on stderr, machine-readable JSONL run logs, or in-memory capture for
tests.

The sink protocol is ``emit(event)`` plus an optional ``close()``.
Sinks that buffer (the JSONL run log) flush every event as it is
written and are explicitly closed when the run ends — including a run
ending in Ctrl-C — so an interrupted run log is never truncated mid
record.  A closed sink re-opens lazily if emitted to again.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Iterable

#: the event kinds the scheduler emits, in lifecycle order
EVENT_KINDS = (
    "queued",
    "started",
    "cache-hit",
    "finished",
    "retried",
    "failed",
    "interrupted",
)


@dataclass(frozen=True)
class JobEvent:
    """One state change of one job."""

    event: str
    label: str
    job_hash: str
    timestamp: float = field(default_factory=time.time)
    attempt: int = 1
    duration: "float | None" = None  #: seconds, on finished/failed
    references: "int | None" = None  #: trace references simulated
    error: "str | None" = None
    #: cross-process trace correlation (see repro.obs.trace_context):
    #: the sweep's trace id, this job's span, and the span it parents to
    trace_id: "str | None" = None
    span_id: "str | None" = None
    parent_span_id: "str | None" = None

    def __post_init__(self) -> None:
        if self.event not in EVENT_KINDS:
            raise ValueError(
                f"unknown event {self.event!r}; known: {EVENT_KINDS}"
            )

    @property
    def refs_per_sec(self) -> "float | None":
        if not self.references or not self.duration:
            return None
        return self.references / self.duration


def event_record(event: JobEvent) -> "dict[str, object]":
    """One event's JSONL wire shape (run logs, the service's streams)."""
    record = asdict(event)
    record["refs_per_sec"] = event.refs_per_sec
    return record


class StderrSink:
    """Human-readable one-line-per-event progress on a stream."""

    def __init__(self, stream: "IO[str] | None" = None) -> None:
        self._stream = stream

    @property
    def stream(self) -> "IO[str]":
        # Resolved lazily so pytest's capsys replacement is honoured.
        return self._stream if self._stream is not None else sys.stderr

    def emit(self, event: JobEvent) -> None:
        if event.event == "queued":
            return  # one line per queued job is noise at fan-out scale
        parts = [f"[runtime] {event.event:<11s} {event.label}"]
        if event.duration is not None:
            parts.append(f"{event.duration:.2f}s")
        if event.references is not None:
            parts.append(f"{event.references:,} refs")
        rate = event.refs_per_sec
        if rate is not None:
            parts.append(f"{rate:,.0f} refs/s")
        if event.attempt > 1:
            parts.append(f"attempt {event.attempt}")
        if event.error:
            parts.append(f"error: {event.error}")
        print("  ".join(parts), file=self.stream)
        self.stream.flush()

    def close(self) -> None:
        try:
            self.stream.flush()
        except (OSError, ValueError):
            pass  # stream already gone (interpreter teardown)


class JsonlSink:
    """Append every event as one JSON object per line (the run log).

    The file handle is held open across events (one open per run, not
    per event) and flushed after every line, so a Ctrl-C'd run keeps
    every event that was emitted.  ``close()`` releases the handle; a
    later ``emit`` re-opens in append mode.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: "IO[str] | None" = None

    def emit(self, event: JobEvent) -> None:
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(event_record(event), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class MemorySink:
    """Collect events in a list (tests, summaries)."""

    def __init__(self) -> None:
        self.events: "list[JobEvent]" = []
        self.closed = False

    def emit(self, event: JobEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


class EventBus:
    """Fan one event stream out to several sinks; never let a sink
    failure kill the run (a full disk should not abort a simulation).

    Emission is serialised under a lock so one bus can be shared by
    concurrent ``ExperimentRuntime.map`` calls (the service front end
    submits from several threads): sink lines never interleave and a
    JSONL run log stays one valid record per line.
    """

    def __init__(self, sinks: "Iterable[object]" = ()) -> None:
        self.sinks = list(sinks)
        self._lock = threading.Lock()

    def add(self, sink: object) -> None:
        with self._lock:
            self.sinks.append(sink)

    def emit(self, event: JobEvent) -> None:
        with self._lock:
            for sink in self.sinks:
                try:
                    sink.emit(event)
                except Exception as exc:  # noqa: BLE001 - diagnostics only
                    print(
                        f"[runtime] event sink {type(sink).__name__} "
                        f"failed: {exc}",
                        file=sys.stderr,
                    )

    def close(self) -> None:
        """Close every sink that supports it (same isolation as emit)."""
        with self._lock:
            for sink in self.sinks:
                close = getattr(sink, "close", None)
                if close is None:
                    continue
                try:
                    close()
                except Exception as exc:  # noqa: BLE001 - diagnostics only
                    print(
                        f"[runtime] event sink {type(sink).__name__} "
                        f"failed to close: {exc}",
                        file=sys.stderr,
                    )
