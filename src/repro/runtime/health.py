"""Process-global fault/recovery counters on the obs registry.

Every hardening seam in the stack — corrupt-artifact quarantine, cache
write degradation, crash-retry backoff, watchdog kill escalation,
client retry budgets, sidecar rebuilds, checkpoint resumes — counts
what it survived here, so "the run finished" and "the run finished
*after recovering from three torn artifacts*" are distinguishable.
The service exposes the snapshot under ``GET /status`` → ``health``;
tests assert on it; the chaos suite's runlog artifact includes it.

One registry per process (worker processes keep their own; their
counts describe their own recoveries).  Counter names are stable API:
``fault.*`` counts faults observed, ``recovery.*`` counts successful
recoveries.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, MetricsRegistry

#: the process-global health registry
HEALTH = MetricsRegistry()


def health_counter(name: str) -> Counter:
    """The named fault/recovery counter (created on first use)."""
    return HEALTH.counter(name)


def health_snapshot() -> "dict[str, int]":
    """Flat ``{counter name: value}`` view of every health counter."""
    return {
        name: instrument["value"]
        for name, instrument in HEALTH.to_dict().items()
        if instrument.get("type") == "counter"
    }


def reset_health() -> None:
    """Zero every counter (test isolation only)."""
    HEALTH.clear()
