"""repro.runtime — the experiment-execution engine.

Every table/figure driver and ablation sweep decomposes into **jobs**:
pure, picklable (experiment, workload, config, scale, seed) tuples with
a deterministic content hash (:mod:`repro.runtime.job`).  The
:class:`~repro.runtime.scheduler.ExperimentRuntime` fans jobs out over
a ``multiprocessing`` pool (``jobs=1`` runs in-process for debugging),
with per-job timeouts, bounded retry on worker crash, and graceful
Ctrl-C draining.  Finished payloads land in an on-disk
:class:`~repro.runtime.cache.ResultCache` keyed by job hash + code
fingerprint, so re-running an experiment set skips completed jobs and
an interrupted sweep resumes where it stopped.  Structured per-job
events (queued / started / finished / cache-hit, duration, references,
refs/sec) stream to stderr and an optional JSONL run log
(:mod:`repro.runtime.events`).

Command line: ``python -m repro.runtime {run,status,clear-cache}``.
"""

from repro.runtime.cache import ResultCache, code_fingerprint
from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.events import EventBus, JobEvent, JsonlSink, StderrSink
from repro.runtime.health import health_counter, health_snapshot
from repro.runtime.job import Job, JobError, execute_job, resolve_job
from repro.runtime.scheduler import (
    ExperimentRuntime,
    JobOutcome,
    RunStats,
    RuntimeConfig,
    failed_outcomes,
    payloads,
)

__all__ = [
    "EventBus",
    "ExperimentRuntime",
    "Job",
    "JobError",
    "JobEvent",
    "JobOutcome",
    "JsonlSink",
    "ResultCache",
    "RunStats",
    "RuntimeConfig",
    "StderrSink",
    "SweepCheckpoint",
    "code_fingerprint",
    "execute_job",
    "failed_outcomes",
    "health_counter",
    "health_snapshot",
    "payloads",
    "resolve_job",
]
