"""On-disk result cache: ``.repro-cache/<code-version>/<job-hash>.json``.

Artifacts are keyed by the job's content hash *and* a fingerprint of
the ``repro`` package's source, so editing any simulator code
invalidates every cached result while re-running an unchanged
experiment set is pure cache hits.  Writes are atomic
(temp-file + rename), which is what makes Ctrl-C during a sweep safe:
an interrupted run leaves only complete artifacts behind and the next
invocation resumes from them.

Integrity and degradation (the properties the chaos suite enforces):

* every artifact embeds a SHA-256 **checksum** of its payload; a read
  that is unparseable, unreadable, or checksum-mismatched is
  **quarantined** (moved to ``<root>/quarantine/``) and reported as a
  miss — corruption becomes a recompute plus a
  :mod:`~repro.runtime.health` counter, never a crash or a silently
  wrong result;
* a write that fails (full disk, read-only cache dir) downgrades the
  cache to **compute-through**: the run keeps its results and keeps
  going, it just stops persisting — again counted, never fatal.

The cache root defaults to ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in
the working directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Iterator

from repro import faults
from repro.runtime.health import health_counter
from repro.runtime.job import Job, canonical_json

#: environment variable overriding the default cache root
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"
#: where corrupt artifacts are moved for post-mortem inspection
QUARANTINE_DIR = "quarantine"


def payload_checksum(payload: "dict[str, object]") -> str:
    """Content checksum of one payload (over its canonical JSON)."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:32]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``*.py`` source file in the ``repro`` package.

    Cached per process — workers inherit or recompute the same value,
    so parent and children always agree on which cache generation is
    current.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x01")
    return digest.hexdigest()[:16]


def default_cache_root() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


@dataclass(frozen=True)
class CacheStatus:
    """Summary of one cache root (the ``status`` CLI's data)."""

    root: Path
    code_version: str
    current_entries: int
    current_bytes: int
    stale_entries: int  #: artifacts from other code versions
    stale_bytes: int
    by_function: "dict[str, int]"  #: current entries per job fn


class ResultCache:
    """Content-addressed JSON artifact store for job payloads."""

    def __init__(
        self,
        root: "str | os.PathLike[str] | None" = None,
        code_version: "str | None" = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.code_version = code_version or code_fingerprint()
        #: set after the first failed write: the cache has degraded to
        #: compute-through (results are correct, just not persisted)
        self.degraded = False

    # -- paths ----------------------------------------------------------

    @property
    def generation_dir(self) -> Path:
        return self.root / self.code_version

    def path_for(self, job: Job) -> Path:
        return self.generation_dir / f"{job.hash}.json"

    # -- read/write -----------------------------------------------------

    def get(self, job: Job) -> "dict[str, object] | None":
        """The cached payload for ``job``, or ``None`` on a miss.

        Corruption never propagates: an artifact that is unreadable,
        truncated, unparseable, structurally wrong, or whose payload
        fails its checksum is quarantined (see :meth:`_quarantine`) and
        reported as a plain miss — the caller recomputes, a
        ``fault.cache.*`` health counter ticks, and the bad bytes are
        kept out of the hot path but preserved for inspection.
        """
        path = self.path_for(job)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            health_counter("fault.cache.read_failed").inc()
            self._warn(f"unreadable artifact {path.name}: {exc}")
            return None
        try:
            artifact = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._quarantine(path, f"undecodable artifact: {exc}")
            return None
        payload = (
            artifact.get("payload") if isinstance(artifact, dict) else None
        )
        if not isinstance(payload, dict):
            self._quarantine(path, "artifact has no payload object")
            return None
        checksum = artifact.get("checksum")
        if checksum != payload_checksum(payload):
            self._quarantine(
                path,
                f"payload checksum mismatch (recorded {checksum!r})",
            )
            return None
        return payload

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move one corrupt artifact aside and count the fault.

        The move is best effort (a read-only cache cannot relocate the
        file, which is fine — the artifact already reads as a miss);
        quarantined files keep their generation in the name and a
        ``.corrupt`` suffix so no cache scan ever mistakes them for
        live artifacts.
        """
        health_counter("fault.cache.corrupt_artifact").inc()
        target = (
            self.root
            / QUARANTINE_DIR
            / f"{path.parent.name}-{path.name}.corrupt"
        )
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            where = f"quarantined to {target}"
        except OSError:
            where = "left in place (quarantine move failed)"
        self._warn(f"corrupt artifact {path.name}: {reason}; {where}")

    @staticmethod
    def _warn(message: str) -> None:
        print(f"[cache] {message}", file=sys.stderr)

    def put(
        self,
        job: Job,
        payload: "dict[str, object]",
        duration: "float | None" = None,
    ) -> "Path | None":
        """Atomically publish one finished job's payload.

        Safe under concurrent multi-process writers: each writer stages
        into its own uniquely named ``.tmp-`` file (fsynced, so a
        crashed host cannot publish a torn artifact) and ``os.replace``
        makes the artifact visible in one atomic step — readers see
        either nothing or a complete file, and the last writer of the
        same hash wins with byte-identical content.

        A failed write (``ENOSPC``, read-only cache dir, permissions)
        returns ``None`` instead of raising: losing the *artifact*
        must never lose the *result*, so the cache degrades to
        compute-through and the run continues.  The first failure
        warns and sets :attr:`degraded`; every failure ticks
        ``fault.cache.write_failed``.
        """
        try:
            return self._put(job, payload, duration)
        except OSError as exc:
            health_counter("fault.cache.write_failed").inc()
            if not self.degraded:
                self.degraded = True
                self._warn(
                    f"write failed ({exc}); degrading to compute-through "
                    "(results stay correct but are not persisted)"
                )
            return None

    def _put(
        self,
        job: Job,
        payload: "dict[str, object]",
        duration: "float | None",
    ) -> Path:
        faults.fire("cache.put")
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = {
            "fn": job.fn,
            "label": job.label,
            "params": job.kwargs,
            "job_hash": job.hash,
            "code_version": self.code_version,
            "created": time.time(),
            "duration": duration,
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        body = faults.mutate(
            "cache.put.bytes", canonical_json(artifact).encode("utf-8")
        )
        handle = tempfile.NamedTemporaryFile(
            "wb",
            dir=str(path.parent),
            prefix=".tmp-",
            suffix=".json",
            delete=False,
        )
        try:
            with handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, job: Job) -> bool:
        return self.path_for(job).is_file()

    # -- maintenance ----------------------------------------------------

    def _artifacts(self) -> "Iterator[Path]":
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if not path.name.startswith(".tmp-"):
                yield path

    def status(self) -> CacheStatus:
        current_entries = current_bytes = stale_entries = stale_bytes = 0
        by_function: "dict[str, int]" = {}
        for path in self._artifacts():
            size = path.stat().st_size
            if path.parent.name == self.code_version:
                current_entries += 1
                current_bytes += size
                try:
                    with path.open("r", encoding="utf-8") as handle:
                        fn = json.load(handle).get("fn", "?")
                except (OSError, json.JSONDecodeError):
                    fn = "?"
                by_function[fn] = by_function.get(fn, 0) + 1
            else:
                stale_entries += 1
                stale_bytes += size
        return CacheStatus(
            root=self.root,
            code_version=self.code_version,
            current_entries=current_entries,
            current_bytes=current_bytes,
            stale_entries=stale_entries,
            stale_bytes=stale_bytes,
            by_function=by_function,
        )

    def clear(self, stale_only: bool = False) -> int:
        """Delete artifacts; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for generation in sorted(self.root.iterdir()):
            if not generation.is_dir():
                continue
            if stale_only and generation.name == self.code_version:
                continue
            removed += sum(1 for _ in generation.glob("*.json"))
            shutil.rmtree(generation)
        return removed

    def prune(self, older_than_days: float) -> int:
        """Retention for long-running services: delete artifacts whose
        mtime is older than ``older_than_days`` days (any generation),
        plus staging leftovers (``.tmp-*`` from crashed writers) older
        than an hour; empty generation directories are removed.

        Age is judged by file mtime — the moment the artifact was
        published — so a live writer racing the pruner never loses a
        fresh result.  Returns the number of artifacts removed
        (staging leftovers are not counted).
        """
        if older_than_days < 0:
            raise ValueError(
                f"older_than_days must be >= 0, got {older_than_days}"
            )
        removed = 0
        if not self.root.is_dir():
            return removed
        now = time.time()
        cutoff = now - older_than_days * 86400.0
        for generation in sorted(self.root.iterdir()):
            if not generation.is_dir():
                continue
            if generation.name == QUARANTINE_DIR:
                # Quarantined corruption is kept for inspection, not
                # forever: same age horizon, never counted as artifacts.
                for path in generation.glob("*.corrupt"):
                    try:
                        if path.stat().st_mtime < cutoff:
                            _unlink_quietly(path)
                    except OSError:
                        continue
                continue
            for path in generation.glob("*.json"):
                try:
                    mtime = path.stat().st_mtime
                except OSError:
                    continue  # concurrently pruned or published
                if path.name.startswith(".tmp-"):
                    if mtime < now - 3600.0:
                        _unlink_quietly(path)
                    continue
                if mtime < cutoff:
                    if _unlink_quietly(path):
                        removed += 1
            try:
                next(generation.iterdir())
            except StopIteration:
                try:
                    generation.rmdir()
                except OSError:
                    pass  # a writer re-populated it; leave it
            except OSError:
                pass
        return removed


def _unlink_quietly(path: Path) -> bool:
    try:
        path.unlink()
        return True
    except OSError:
        return False
