"""The scheduler: fan jobs out over processes, cache, retry, resume.

:class:`ExperimentRuntime` is the one entry point.  ``runtime.map(jobs)``
returns one :class:`JobOutcome` per job, **in input order** — callers
rebuild tables from payloads without caring which worker (or which past
run, via the cache) produced them, so parallel output is byte-identical
to serial output.

Execution model:

* ``jobs=1`` runs everything in-process (debuggable with pdb, no
  pickling round-trip);
* ``jobs>1`` starts one daemonised ``multiprocessing`` process per job,
  at most ``jobs`` in flight, results returned over per-job pipes.
  One-process-per-job (instead of a long-lived pool) is what makes
  per-job timeouts enforceable — an overdue job is terminated without
  poisoning other workers — and makes a crashed worker (OOM kill,
  segfaulting native code) an isolated, retryable event.
* Ctrl-C drains gracefully: running workers are terminated, completed
  jobs keep their cache artifacts, and unfinished jobs are reported as
  ``interrupted`` — re-running the same job set resumes from the cache.

Long-running front ends (``repro.service``) submit through the same
entry point: ``map``/``run_one`` accept a ``cancel`` callable polled
between poll rounds, so a drain request stops launching work and
interrupts what is running without losing finished artifacts, and one
runtime instance accepts concurrent ``map`` calls from several threads
(aggregate stats are lock-guarded; each call manages its own workers).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import random
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro import faults
from repro.obs import trace_context
from repro.runtime.cache import ResultCache
from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.events import EventBus, JobEvent, StderrSink
from repro.runtime.health import health_counter
from repro.runtime.job import REFERENCES_KEY, Job, JobError, execute_job

#: outcome states
OK, CACHED, FAILED, INTERRUPTED = "ok", "cached", "failed", "interrupted"


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs for one runtime instance."""

    jobs: int = 1  #: worker processes; 1 = in-process serial
    timeout: "float | None" = None  #: per-job wall-clock limit, seconds
    retries: int = 1  #: extra attempts after a worker *crash*
    use_cache: bool = True
    start_method: str = "fork" if os.name == "posix" else "spawn"
    poll_interval: float = 0.05  #: seconds between liveness/timeout checks
    profile_dir: "str | None" = None  #: dump per-job cProfile stats here
    retry_backoff: float = 0.1  #: base delay before a crash retry, seconds
    retry_backoff_cap: float = 5.0  #: backoff ceiling, seconds
    kill_grace: float = 5.0  #: SIGTERM→SIGKILL escalation window, seconds

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retry_backoff < 0 or self.retry_backoff_cap < 0:
            raise ValueError("retry backoff values must be >= 0")
        if self.kill_grace < 0:
            raise ValueError(f"kill_grace must be >= 0, got {self.kill_grace}")

    def retry_delay(self, job_hash: str, attempt: int) -> float:
        """Backoff before relaunching a crashed job's next attempt.

        Exponential in the attempt number, capped, with deterministic
        jitter derived from the job hash — retries of *different* jobs
        spread out (no thundering herd after a correlated crash) while
        the same job retries identically across runs.
        """
        if self.retry_backoff <= 0:
            return 0.0
        base = min(
            self.retry_backoff_cap, self.retry_backoff * (2 ** (attempt - 1))
        )
        jitter = random.Random(f"{job_hash}/{attempt}").uniform(0.5, 1.0)
        return base * jitter


@dataclass(frozen=True)
class JobOutcome:
    """Terminal state of one submitted job."""

    job: Job
    status: str  #: ok | cached | failed | interrupted
    payload: "dict[str, object] | None" = None
    duration: "float | None" = None
    error: "str | None" = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in (OK, CACHED)


@dataclass
class RunStats:
    """Aggregate counters over every ``map`` call on one runtime."""

    submitted: int = 0
    executed: int = 0
    cache_hits: int = 0
    failed: int = 0
    interrupted: int = 0
    crash_retries: int = 0
    references: int = 0
    wall_time: float = 0.0

    def absorb(self, outcome: JobOutcome) -> None:
        if outcome.status == CACHED:
            self.cache_hits += 1
        elif outcome.status == OK:
            self.executed += 1
        elif outcome.status == FAILED:
            self.failed += 1
        elif outcome.status == INTERRUPTED:
            self.interrupted += 1
        if outcome.payload is not None:
            refs = outcome.payload.get(REFERENCES_KEY)
            if isinstance(refs, int):
                self.references += refs


def failed_outcomes(outcomes: "Sequence[JobOutcome]") -> "list[JobOutcome]":
    return [o for o in outcomes if not o.ok]


def payloads(outcomes: "Sequence[JobOutcome]") -> "list[dict[str, object]]":
    """Unwrap payloads, raising :class:`JobError` if anything failed."""
    bad = failed_outcomes(outcomes)
    if bad:
        summary = "; ".join(
            f"{o.job.name}: {o.status}"
            + (f" ({o.error})" if o.error else "")
            for o in bad[:5]
        )
        raise JobError(f"{len(bad)} job(s) did not complete: {summary}")
    return [o.payload for o in outcomes]  # type: ignore[misc]


def _execute(job: Job, profile_dir: "str | None"):
    """Run one job, optionally under cProfile.

    With ``profile_dir`` set, the job function runs inside a profiler
    and the stats land in ``<profile_dir>/<label>-<hash12>.prof``
    (loadable with ``python -m pstats`` or snakeviz).  The dump happens
    even when the job raises — a slow *failing* job is exactly the one
    worth profiling.
    """
    faults.fire("runtime.job.start")
    if profile_dir is None:
        return execute_job(job)
    import cProfile
    import re
    from pathlib import Path

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return execute_job(job)
    finally:
        profiler.disable()
        safe = re.sub(r"[^A-Za-z0-9._-]+", "-", job.name) or "job"
        path = Path(profile_dir) / f"{safe}-{job.hash[:12]}.prof"
        path.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(path))


def _worker_main(
    job: Job,
    conn,
    profile_dir: "str | None" = None,
    trace: "trace_context.TraceContext | None" = None,
) -> None:
    """Worker-process entry: run the job, ship the result, exit."""
    try:
        faults.fire("runtime.worker.start")
        if trace is not None:
            # Adopt the job's span as this process's context (env too,
            # so anything the worker spawns inherits the sweep trace).
            trace_context.activate(trace, env=True)
        payload, duration = _execute(job, profile_dir)
        conn.send(("ok", payload, duration))
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    index: int
    attempt: int
    process: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    started: float = field(default_factory=time.monotonic)


class ExperimentRuntime:
    """Schedule jobs over the cache and (optionally) worker processes."""

    def __init__(
        self,
        config: "RuntimeConfig | None" = None,
        cache: "ResultCache | None" = None,
        bus: "EventBus | None" = None,
        checkpoint: "SweepCheckpoint | None" = None,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.cache = cache if cache is not None else ResultCache()
        self.bus = bus if bus is not None else EventBus([StderrSink()])
        self.checkpoint = checkpoint
        self.stats = RunStats()
        self._stats_lock = threading.Lock()
        self._trace_root: "trace_context.TraceContext | None" = None

    # -- public API -----------------------------------------------------

    def map(
        self,
        jobs: "Sequence[Job]",
        cancel: "Callable[[], bool] | None" = None,
    ) -> "list[JobOutcome]":
        """Run every job; outcomes align with the input order.

        ``cancel`` is polled between jobs (serial mode) or poll rounds
        (parallel mode); once it returns true, no further work is
        launched, running workers are terminated, and every unfinished
        job is reported ``interrupted`` — exactly the Ctrl-C drain, but
        triggered programmatically (a service draining on SIGTERM sets
        a ``threading.Event`` and passes its ``is_set``).
        """
        jobs = list(jobs)
        with self._stats_lock:
            self.stats.submitted += len(jobs)
        start = time.monotonic()
        for job in jobs:
            self._emit("queued", job)
        try:
            # jobs=1 is strictly in-process (debuggable, no pickling);
            # jobs>1 always isolates in workers — even a single job —
            # so crash containment and timeouts hold uniformly.
            if self.config.jobs <= 1:
                outcomes = self._run_serial(jobs, cancel)
            else:
                outcomes = self._run_parallel(jobs, cancel)
        finally:
            with self._stats_lock:
                self.stats.wall_time += time.monotonic() - start
        with self._stats_lock:
            for outcome in outcomes:
                self.stats.absorb(outcome)
        return outcomes

    def run_one(
        self, job: Job, cancel: "Callable[[], bool] | None" = None
    ) -> JobOutcome:
        return self.map([job], cancel=cancel)[0]

    def close(self) -> None:
        """Flush and close every event sink (idempotent; sinks re-open
        lazily if the runtime is used again) and the checkpoint; any
        shared-memory records this process still owns are released
        (lazily — the sweep module is never imported just to close)."""
        self.bus.close()
        if self.checkpoint is not None:
            self.checkpoint.close()
        sweep = sys.modules.get("repro.kernels.sweep")
        if sweep is not None:
            sweep.release_owned()

    # -- shared helpers -------------------------------------------------

    def _root(self) -> "trace_context.TraceContext":
        """The sweep's root span: adopted from whoever activated a
        context first (the service broker, an enclosing sweep via the
        environment), minted here otherwise.  Captured once so serial
        job activations never re-parent later events."""
        if self._trace_root is None:
            self._trace_root = trace_context.ensure_current()
        return self._trace_root

    def _job_trace(self, job: Job) -> "trace_context.TraceContext":
        return trace_context.job_context(self._root(), job.hash)

    def _emit(self, kind: str, job: Job, **extra: object) -> None:
        root = self._root()
        self.bus.emit(
            JobEvent(
                event=kind,
                label=job.name,
                job_hash=job.hash,
                trace_id=root.trace_id,
                span_id=trace_context.span_for_job(root.trace_id, job.hash),
                parent_span_id=root.span_id,
                **extra,
            )
        )

    def _cached_outcome(self, job: Job) -> "JobOutcome | None":
        # The sweep checkpoint is consulted first: it works even with
        # the cache disabled, which is what bounds a killed driver's
        # re-run to only the jobs that were in flight.
        if self.checkpoint is not None:
            payload = self.checkpoint.get(job)
            if payload is not None:
                health_counter("recovery.checkpoint.hits").inc()
                self._emit(
                    "cache-hit", job, references=_references_of(payload)
                )
                return JobOutcome(job=job, status=CACHED, payload=payload)
        if not self.config.use_cache:
            return None
        payload = self.cache.get(job)
        if payload is None:
            return None
        self._emit(
            "cache-hit", job, references=_references_of(payload)
        )
        return JobOutcome(job=job, status=CACHED, payload=payload)

    def _finish(
        self, job: Job, payload: "dict[str, object]", duration: float, attempt: int
    ) -> JobOutcome:
        if self.config.use_cache:
            self.cache.put(job, payload, duration=duration)
        if self.checkpoint is not None:
            self.checkpoint.record(job, payload, duration=duration)
        self._emit(
            "finished",
            job,
            duration=duration,
            references=_references_of(payload),
            attempt=attempt,
        )
        return JobOutcome(
            job=job,
            status=OK,
            payload=payload,
            duration=duration,
            attempts=attempt,
        )

    def _fail(
        self, job: Job, error: str, attempt: int, duration: "float | None" = None
    ) -> JobOutcome:
        self._emit(
            "failed", job, error=error, attempt=attempt, duration=duration
        )
        return JobOutcome(
            job=job,
            status=FAILED,
            error=error,
            attempts=attempt,
            duration=duration,
        )

    # -- serial mode ----------------------------------------------------

    def _run_serial(
        self,
        jobs: "Sequence[Job]",
        cancel: "Callable[[], bool] | None" = None,
    ) -> "list[JobOutcome]":
        outcomes: "list[JobOutcome]" = []
        interrupted_at: "int | None" = None
        for i, job in enumerate(jobs):
            if cancel is not None and cancel():
                interrupted_at = i
                break
            cached = self._cached_outcome(job)
            if cached is not None:
                outcomes.append(cached)
                continue
            self._emit("started", job)
            # The job's span is this thread's context while it runs, so
            # phase spans recorded inside kernels parent to this job.
            prev_trace = trace_context.activate(self._job_trace(job))
            try:
                try:
                    payload, duration = _execute(job, self.config.profile_dir)
                finally:
                    trace_context.restore(prev_trace)
            except KeyboardInterrupt:
                interrupted_at = i
                break
            except Exception as exc:  # noqa: BLE001 - job isolation
                outcomes.append(
                    self._fail(job, f"{type(exc).__name__}: {exc}", attempt=1)
                )
                continue
            outcomes.append(self._finish(job, payload, duration, attempt=1))
        if interrupted_at is not None:
            for job in jobs[interrupted_at:]:
                self._emit("interrupted", job)
                outcomes.append(JobOutcome(job=job, status=INTERRUPTED))
            self.bus.close()  # interrupted events must reach disk
        return outcomes

    # -- parallel mode --------------------------------------------------

    def _run_parallel(
        self,
        jobs: "Sequence[Job]",
        cancel: "Callable[[], bool] | None" = None,
    ) -> "list[JobOutcome]":
        context = multiprocessing.get_context(self.config.start_method)
        outcomes: "list[JobOutcome | None]" = [None] * len(jobs)
        # (index, attempt, not_before): retried jobs carry a backoff
        # deadline; fresh jobs are launchable immediately.
        pending: "deque[tuple[int, int, float]]" = deque()
        for i, job in enumerate(jobs):
            cached = self._cached_outcome(job)
            if cached is not None:
                outcomes[i] = cached
            else:
                pending.append((i, 1, 0.0))
        running: "list[_Running]" = []
        try:
            while pending or running:
                if cancel is not None and cancel():
                    self._drain_interrupted(jobs, outcomes, pending, running)
                    break
                self._launch_ready(context, jobs, pending, running)
                self._collect(jobs, outcomes, pending, running)
        except KeyboardInterrupt:
            self._drain_interrupted(jobs, outcomes, pending, running)
        return [
            outcome
            if outcome is not None
            else JobOutcome(job=job, status=INTERRUPTED)
            for job, outcome in zip(jobs, outcomes)
        ]

    def _launch_ready(
        self,
        context,
        jobs: "Sequence[Job]",
        pending: "deque[tuple[int, int, float]]",
        running: "list[_Running]",
    ) -> None:
        """Fill free worker slots with pending jobs whose backoff (if
        any) has expired; jobs still backing off rotate to the tail so
        they never block launchable work behind them."""
        now = time.monotonic()
        launched = True
        while launched and pending and len(running) < self.config.jobs:
            launched = False
            for _ in range(len(pending)):
                index, attempt, not_before = pending.popleft()
                if not_before <= now:
                    running.append(
                        self._launch(context, jobs[index], index, attempt)
                    )
                    launched = True
                    break
                pending.append((index, attempt, not_before))

    def _drain_interrupted(
        self,
        jobs: "Sequence[Job]",
        outcomes: "list[JobOutcome | None]",
        pending: "deque[tuple[int, int, float]]",
        running: "list[_Running]",
    ) -> None:
        """Terminate live workers and mark everything unfinished
        ``interrupted`` (shared by Ctrl-C and the ``cancel`` hook)."""
        self._terminate_all(running)
        for slot in running:
            self._emit("interrupted", jobs[slot.index])
            outcomes[slot.index] = JobOutcome(
                job=jobs[slot.index],
                status=INTERRUPTED,
                attempts=slot.attempt,
            )
        for index, attempt, _not_before in pending:
            self._emit("interrupted", jobs[index])
            outcomes[index] = JobOutcome(
                job=jobs[index], status=INTERRUPTED, attempts=attempt
            )
        running.clear()
        pending.clear()
        # The run is over: make sure the interrupted events (and
        # everything before them) are on disk, not in a buffer.
        self.bus.close()

    def _launch(self, context, job: Job, index: int, attempt: int) -> _Running:
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(job, sender, self.config.profile_dir, self._job_trace(job)),
            daemon=True,
        )
        process.start()
        sender.close()  # parent keeps only the read end
        if faults.armed("runtime.worker.kill"):
            # Scripted external SIGKILL (the OOM-killer stand-in): the
            # parent counts launches, so "kill the Nth worker launch"
            # fires exactly once and the crash-retry path recovers.
            process.kill()
        self._emit("started", job, attempt=attempt)
        return _Running(
            index=index, attempt=attempt, process=process, conn=receiver
        )

    def _collect(
        self,
        jobs: "Sequence[Job]",
        outcomes: "list[JobOutcome | None]",
        pending: "deque[tuple[int, int, float]]",
        running: "list[_Running]",
    ) -> None:
        """One poll round: reap results, crashes, and timeouts."""
        if running:
            ready = multiprocessing.connection.wait(
                [slot.conn for slot in running],
                timeout=self.config.poll_interval,
            )
        else:
            # Everything pending is backing off: idle one poll tick.
            time.sleep(self.config.poll_interval)
            ready = []
        ready_set = set(ready)
        now = time.monotonic()
        still_running: "list[_Running]" = []
        for slot in running:
            job = jobs[slot.index]
            if slot.conn in ready_set:
                outcome = self._reap(job, slot, pending)
                if outcome is not None:
                    outcomes[slot.index] = outcome
            elif (
                self.config.timeout is not None
                and now - slot.started > self.config.timeout
            ):
                # The hung-worker watchdog: _kill escalates SIGTERM →
                # SIGKILL if the worker ignores the polite signal.
                health_counter("fault.worker.timeout").inc()
                self._kill(slot)
                outcomes[slot.index] = self._fail(
                    job,
                    f"timeout after {self.config.timeout:.1f}s",
                    attempt=slot.attempt,
                    duration=now - slot.started,
                )
            else:
                still_running.append(slot)
        running[:] = still_running

    def _reap(
        self,
        job: Job,
        slot: _Running,
        pending: "deque[tuple[int, int, float]]",
    ) -> "JobOutcome | None":
        """A worker's pipe is readable: result, error, or crash (EOF).

        Returns ``None`` when the job was requeued (crash retry).
        """
        try:
            message = slot.conn.recv()
        except (EOFError, OSError):
            message = None
        self._kill(slot)  # reap the process either way
        if message is None:
            exit_code = slot.process.exitcode
            health_counter("fault.worker.crash").inc()
            if slot.attempt <= self.config.retries:
                with self._stats_lock:
                    self.stats.crash_retries += 1
                health_counter("recovery.worker.crash_retried").inc()
                self._emit(
                    "retried",
                    job,
                    attempt=slot.attempt,
                    error=f"worker died (exit code {exit_code})",
                )
                not_before = time.monotonic() + self.config.retry_delay(
                    job.hash, slot.attempt
                )
                pending.append((slot.index, slot.attempt + 1, not_before))
                return None
            return self._fail(
                job,
                f"worker died (exit code {exit_code}), retries exhausted",
                attempt=slot.attempt,
            )
        if message[0] == "ok":
            _, payload, duration = message
            return self._finish(job, payload, duration, attempt=slot.attempt)
        return self._fail(job, message[1], attempt=slot.attempt)

    def _kill(self, slot: _Running) -> None:
        """Reap one worker, escalating politely: close the pipe,
        SIGTERM, wait ``kill_grace``, then SIGKILL a worker that
        ignored the termination (stuck in native code, masked
        signals) — a hung worker can slow a sweep down, never wedge
        it."""
        slot.conn.close()
        process = slot.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.config.kill_grace)
            if process.is_alive():
                health_counter("fault.worker.kill_escalated").inc()
                process.kill()
                process.join(timeout=5.0)
        else:
            process.join(timeout=5.0)

    def _terminate_all(self, running: "Sequence[_Running]") -> None:
        for slot in running:
            self._kill(slot)


def _references_of(payload: "dict[str, object]") -> "int | None":
    refs = payload.get(REFERENCES_KEY)
    return refs if isinstance(refs, int) else None


def runtime_from_args(
    jobs: int = 1,
    timeout: "float | None" = None,
    retries: int = 1,
    cache_dir: "str | None" = None,
    no_cache: bool = False,
    runlog: "str | None" = None,
    quiet: bool = False,
    profile_dir: "str | None" = None,
    checkpoint: "str | None" = None,
) -> ExperimentRuntime:
    """Build a runtime from CLI-ish options (shared by both CLIs)."""
    from repro.runtime.events import JsonlSink

    config = RuntimeConfig(
        jobs=jobs, timeout=timeout, retries=retries, profile_dir=profile_dir
    )
    if no_cache:
        config = replace(config, use_cache=False)
    sinks: "list[object]" = [] if quiet else [StderrSink()]
    if runlog:
        sinks.append(JsonlSink(runlog))
    return ExperimentRuntime(
        config=config,
        cache=ResultCache(root=cache_dir) if cache_dir else ResultCache(),
        bus=EventBus(sinks),
        checkpoint=SweepCheckpoint(checkpoint) if checkpoint else None,
    )
