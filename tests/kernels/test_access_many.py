"""``access_many`` / ``process_many`` vs their per-item seed loops."""

from hypothesis import given, settings, strategies as st

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.set_assoc import SetAssociativeCache
from repro.caches.skewed import SkewedAssociativeCache
from repro.core.affinity_store import AffinityCache, UnboundedAffinityStore
from repro.core.mechanism import SplitMechanism
from tests.kernels.helpers import cache_state, mechanism_state, store_state

lines_strategy = st.lists(st.integers(0, 500), max_size=200)
flags = st.booleans()


def _pair(factory, lines, write, allocate):
    seed = factory()
    hits = sum(
        seed.access(line, write=write, allocate=allocate) for line in lines
    )
    batched = factory()
    batched_hits = batched.access_many(lines, write=write, allocate=allocate)
    assert batched_hits == hits
    assert cache_state(batched) == cache_state(seed)


class TestAccessMany:
    @given(lines=lines_strategy, write=flags, allocate=flags)
    @settings(max_examples=50, deadline=None)
    def test_set_associative(self, lines, write, allocate):
        _pair(lambda: SetAssociativeCache(16, 2), lines, write, allocate)

    @given(lines=lines_strategy, write=flags, allocate=flags)
    @settings(max_examples=50, deadline=None)
    def test_skewed(self, lines, write, allocate):
        _pair(lambda: SkewedAssociativeCache(16, 4), lines, write, allocate)

    @given(lines=lines_strategy, write=flags, allocate=flags)
    @settings(max_examples=50, deadline=None)
    def test_fully_associative(self, lines, write, allocate):
        _pair(lambda: FullyAssociativeCache(32), lines, write, allocate)

    def test_empty_batch_leaves_state_untouched(self):
        for cache in (
            SetAssociativeCache(16, 2),
            SkewedAssociativeCache(16, 4),
            FullyAssociativeCache(32),
        ):
            cache.access(7)
            before = cache_state(cache)
            assert cache.access_many([]) == 0
            # An empty batch must not reset last_eviction/stats the way
            # a real access would.
            assert cache_state(cache) == before


class TestProcessMany:
    @given(lines=lines_strategy)
    @settings(max_examples=50, deadline=None)
    def test_unbounded_store(self, lines):
        seed = SplitMechanism(8, UnboundedAffinityStore(), affinity_bits=6)
        expected = [seed.process(line) for line in lines]
        batched = SplitMechanism(8, UnboundedAffinityStore(), affinity_bits=6)
        assert batched.process_many(lines) == expected
        assert mechanism_state(batched) == mechanism_state(seed)
        assert store_state(batched.store) == store_state(seed.store)

    @given(lines=lines_strategy)
    @settings(max_examples=50, deadline=None)
    def test_affinity_cache_store(self, lines):
        seed = SplitMechanism(8, AffinityCache(64, 4), affinity_bits=6)
        expected = [seed.process(line) for line in lines]
        batched = SplitMechanism(8, AffinityCache(64, 4), affinity_bits=6)
        assert batched.process_many(lines) == expected
        assert mechanism_state(batched) == mechanism_state(seed)
        assert store_state(batched.store) == store_state(seed.store)

    @given(lines=lines_strategy)
    @settings(max_examples=20, deadline=None)
    def test_lru_window_falls_back(self, lines):
        seed = SplitMechanism(
            8, UnboundedAffinityStore(), affinity_bits=6, lru_window=True
        )
        expected = [seed.process(line) for line in lines]
        batched = SplitMechanism(
            8, UnboundedAffinityStore(), affinity_bits=6, lru_window=True
        )
        assert batched.process_many(lines) == expected
        assert mechanism_state(batched) == mechanism_state(seed)

    @given(lines=lines_strategy)
    @settings(max_examples=20, deadline=None)
    def test_literal_figure2_register(self, lines):
        seed = SplitMechanism(
            8,
            UnboundedAffinityStore(),
            affinity_bits=6,
            track_true_window_affinity=False,
        )
        expected = [seed.process(line) for line in lines]
        batched = SplitMechanism(
            8,
            UnboundedAffinityStore(),
            affinity_bits=6,
            track_true_window_affinity=False,
        )
        assert batched.process_many(lines) == expected
        assert mechanism_state(batched) == mechanism_state(seed)
