"""L1-filter records: build, persistence, cache reuse, trace memoisation."""

import numpy as np
import pytest

from repro.caches.hierarchy import CoreCacheConfig
from repro.kernels.l1filter import (
    FETCH_MISS,
    LOAD_MISS,
    STORE_L1_HIT,
    STORE_L1_MISS,
    L1FilterRecord,
    build_l1_filter,
    ensure_l1_filter,
)
from tests.kernels.helpers import make_trace


def _record():
    _accesses, arrays = make_trace(
        [(e % 40, k, 2) for e, k in zip(range(200), [0, 1, 2] * 67)]
    )
    return build_l1_filter(*arrays), arrays


class TestRecord:
    def test_derived_counts_match_l1_pair(self):
        record, arrays = _record()
        # Replaying derived counters must agree with simulating the L1s.
        config = CoreCacheConfig()
        il1 = config.make_l1(config.il1_bytes)
        dl1 = config.make_l1(config.dl1_bytes)
        from repro.traces.trace import AccessKind

        for address, kind in zip(arrays[0].tolist(), arrays[1].tolist()):
            line = address // config.line_size
            if kind == int(AccessKind.FETCH):
                il1.access(line)
            elif kind == int(AccessKind.LOAD):
                dl1.access(line)
            else:
                dl1.access(line, write=True, allocate=False)
        assert record.il1_misses == il1.stats.misses
        assert record.dl1_misses == dl1.stats.misses
        assert record.accesses == len(arrays[0])
        kinds = record.kinds.tolist()
        assert set(kinds) <= {
            FETCH_MISS,
            LOAD_MISS,
            STORE_L1_HIT,
            STORE_L1_MISS,
        }
        # indices are strictly increasing positions into the raw trace
        indices = record.indices.tolist()
        assert indices == sorted(indices)
        assert all(0 <= i < record.accesses for i in indices)

    def test_save_load_round_trip(self, tmp_path):
        record, _arrays = _record()
        path = tmp_path / "rec.npz"
        record.save(path)
        loaded = L1FilterRecord.load(path)
        assert loaded.line_size == record.line_size
        assert loaded.accesses == record.accesses
        assert loaded.max_instruction == record.max_instruction
        assert np.array_equal(loaded.indices, record.indices)
        assert np.array_equal(loaded.lines, record.lines)
        assert np.array_equal(loaded.kinds, record.kinds)

    def test_require_match_rejects_other_geometry(self):
        record, _arrays = _record()
        other = CoreCacheConfig(l1_ways=0)
        assert not record.matches(other)
        with pytest.raises(ValueError):
            record.require_match(other)
        record.require_match(CoreCacheConfig())


class TestEnsureL1Filter:
    def test_sidecar_reuse(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        record, cached = ensure_l1_filter("mst", scale=0.05)
        assert cached is False
        again, cached_again = ensure_l1_filter("mst", scale=0.05)
        assert cached_again is True
        assert np.array_equal(again.lines, record.lines)
        assert np.array_equal(again.kinds, record.kinds)
        # different scale = different job hash = its own record
        _other, other_cached = ensure_l1_filter("mst", scale=0.04)
        assert other_cached is False

    def test_corrupt_sidecar_rebuilds(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ensure_l1_filter("mst", scale=0.05)
        sidecars = list(tmp_path.rglob("*.l1f.npz"))
        assert len(sidecars) == 1
        sidecars[0].write_bytes(b"not an npz")
        record, cached = ensure_l1_filter("mst", scale=0.05)
        assert cached is False
        assert record.accesses > 0


class TestOldenTraceMemo:
    def test_memoised_arrays_match_stream(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments.workloads import olden_trace_path, workload

        spec = workload("mst", scale=0.05)
        path = olden_trace_path("mst", 0.05, None)
        assert not path.exists()
        addresses, kinds, instructions = spec.arrays()
        assert path.exists()  # first call wrote the memo
        # a fresh spec reloads from the npz and must agree with the
        # generator stream access for access
        reloaded = workload("mst", scale=0.05).arrays()
        assert np.array_equal(reloaded[0], addresses)
        assert np.array_equal(reloaded[1], kinds)
        assert np.array_equal(reloaded[2], instructions)
        stream = list(spec.accesses())
        assert addresses.tolist() == [a.address for a in stream]
        assert kinds.tolist() == [int(a.kind) for a in stream]
        assert instructions.tolist() == [a.instruction for a in stream]

    def test_corrupt_memo_regenerates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments.workloads import olden_trace_path, workload

        first = workload("mst", scale=0.05).arrays()
        path = olden_trace_path("mst", 0.05, None)
        path.write_bytes(b"garbage")
        second = workload("mst", scale=0.05).arrays()
        assert np.array_equal(first[0], second[0])
