"""Population-batch evaluation: one record load, many variants.

Covers the :mod:`repro.kernels.sweep` contract end to end — the
shared-memory segment lifecycle (publish / attach / release, manifest
owner lists, ``/dev/shm`` hygiene), the record resolution order
(inherited → shared → sidecar), the ``shared_record_loads == 1`` happy
path in both serial and multi-worker mode, and row identity against the
per-job :func:`~repro.experiments.variants.run_sweep` path.  Also pins
the bounded in-process caches feeding the sweep: the ``ensure_l1_filter``
open-record LRU and the per-record precompute memo.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.kernels import sweep
from repro.kernels.l1filter import (
    build_l1_filter,
    drop_open_records,
    ensure_l1_filter,
)
from repro.kernels.sweep import (
    PopulationResult,
    attach_record,
    drop_shared_records,
    evaluate_population,
    population_job,
    publish_record,
    record_key,
    release_record,
)
from repro.obs.metrics import process_counter
from repro.runtime import EventBus, ExperimentRuntime, ResultCache, RuntimeConfig

SCALE = 0.05

#: payload keys that must agree between the per-job and population paths
STAT_KEYS = (
    "workload",
    "variant",
    "l1_misses",
    "l2_accesses",
    "l2_misses",
    "migrations",
    "instructions",
    "references",
)


@pytest.fixture(autouse=True)
def _pristine(tmp_path, monkeypatch):
    """Private cache root and empty record/segment state per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    drop_open_records()
    drop_shared_records()
    yield
    sweep.release_owned()
    drop_shared_records()
    drop_open_records()


def _runtime(root, jobs=1, **config_kwargs):
    return ExperimentRuntime(
        config=RuntimeConfig(jobs=jobs, **config_kwargs),
        cache=ResultCache(root=root),
        bus=EventBus([]),
    )


def _stats(row):
    return {key: row[key] for key in STAT_KEYS}


def _tiny_record(l2_span=600, n=400):
    rng = np.random.default_rng(7)
    lines = rng.integers(0, l2_span, size=n, dtype=np.int64)
    addresses = lines * 64
    kinds = rng.integers(0, 3, size=n).astype(np.int8)
    instructions = np.cumsum(rng.integers(0, 4, size=n, dtype=np.int64))
    return build_l1_filter(addresses, kinds, instructions)


class TestSerialPopulation:
    def test_rows_match_the_per_job_sweep(self, tmp_path):
        from repro.experiments.variants import VARIANT_NAMES, run_sweep

        cache = ResultCache(root=tmp_path)
        result = evaluate_population("mst", scale=SCALE, cache=cache)
        assert isinstance(result, PopulationResult)
        assert [row["variant"] for row in result.rows] == list(VARIANT_NAMES)
        # the coordinator built the record once; every in-process job
        # found that same object
        assert result.shared_record_loads == 1
        assert result.record_sources == {"inherited": len(VARIANT_NAMES)}
        assert all(row["record_loads"] == 0 for row in result.rows)
        assert result.wall_seconds > 0

        # bit-identical ChipStats vs the per-job path on the same trace
        per_job = run_sweep("mst", scale=SCALE)
        assert [_stats(row) for row in result.rows] == [
            _stats(row) for row in per_job
        ]

    def test_row_for_lookup(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        result = evaluate_population("mst", scale=SCALE, cache=cache)
        assert result.row_for("migration")["variant"] == "migration"
        with pytest.raises(KeyError):
            result.row_for("warp-drive")


class TestParallelPopulation:
    def test_workers_share_one_record_load(self, tmp_path):
        runtime = _runtime(tmp_path, jobs=2)
        try:
            result = evaluate_population("mst", scale=SCALE, runtime=runtime)
        finally:
            runtime.close()
        assert result.shared_record_loads == 1
        # every worker resolved the record without touching the npz
        assert "sidecar" not in result.record_sources
        assert all(row["record_loads"] == 0 for row in result.rows)

        # the segment and its manifest are gone once the sweep returns
        key = record_key(runtime.cache, "mst", SCALE, None)
        assert not (Path("/dev/shm") / f"rl1f_{key}").exists()
        assert not (tmp_path / sweep.SHM_DIR / f"{key}.json").exists()

        # identical rows to the serial per-job path
        from repro.experiments.variants import run_sweep

        per_job = run_sweep("mst", scale=SCALE)
        assert [_stats(row) for row in result.rows] == [
            _stats(row) for row in per_job
        ]


class TestSegmentLifecycle:
    def test_publish_attach_release(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        record = _tiny_record()
        key = record_key(cache, "mst", SCALE, None)
        segment = Path("/dev/shm") / f"rl1f_{key}"
        manifest_path = tmp_path / sweep.SHM_DIR / f"{key}.json"

        assert publish_record(cache, key, record)
        assert segment.exists()
        manifest = json.loads(manifest_path.read_text())
        assert os.getpid() in manifest["owners"]
        assert manifest["segment"] == f"rl1f_{key}"
        assert manifest["meta"]["records"] == record.records

        # publishing again from the same process is an idempotent no-op
        published = process_counter("sweep.shm.published").value
        assert publish_record(cache, key, record)
        assert process_counter("sweep.shm.published").value == published

        attached = attach_record(cache, key)
        assert attached is not None
        np.testing.assert_array_equal(attached.indices, record.indices)
        np.testing.assert_array_equal(attached.lines, record.lines)
        np.testing.assert_array_equal(attached.kinds, record.kinds)
        assert attached.accesses == record.accesses
        assert attached.max_instruction == record.max_instruction
        # zero-copy: the arrays are views over the segment, not copies
        assert not attached.lines.flags.owndata

        release_record(cache, key)
        assert not segment.exists()
        assert not manifest_path.exists()

    def test_attach_without_manifest_returns_none(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert attach_record(cache, "no-such-key") is None

    def test_dead_owner_does_not_pin_a_manifest(self, tmp_path):
        # A manifest whose every owner pid is dead reads as "no live
        # segment": attach falls back, publish takes the key over.
        cache = ResultCache(root=tmp_path)
        record = _tiny_record()
        key = record_key(cache, "mst", SCALE, None)
        manifest_path = tmp_path / sweep.SHM_DIR / f"{key}.json"
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
        manifest_path.write_text(
            json.dumps(
                {
                    "segment": f"rl1f_{key}",
                    "owners": [2**30],  # no such pid
                    "meta": {"records": record.records},
                }
            )
        )
        assert attach_record(cache, key) is None
        assert publish_record(cache, key, record)
        owners = json.loads(manifest_path.read_text())["owners"]
        assert owners == [os.getpid()]
        release_record(cache, key)


class TestRecordKey:
    def test_deterministic_and_sensitive(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = record_key(cache, "mst", 0.05, None)
        assert key == record_key(cache, "mst", 0.05, None)
        assert key != record_key(cache, "mst", 0.1, None)
        assert key != record_key(cache, "mst", 0.05, 7)
        assert key != record_key(cache, "em3d", 0.05, None)
        # a code edit mints a new generation: old segments unreachable
        other = ResultCache(root=tmp_path, code_version="0123456789abcdef")
        assert key != record_key(other, "mst", 0.05, None)


class TestSidecarFallback:
    def test_share_disabled_reads_the_sidecar(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        ensure_l1_filter("mst", scale=SCALE, cache=cache)  # build sidecar
        drop_open_records()
        row = population_job("mst", "baseline", scale=SCALE, share=False)
        assert row["record_source"] == "sidecar"
        assert row["record_loads"] == 1
        assert row["l1_filter_cached"] is False

    def test_fallback_counter_ticks_when_segment_is_missing(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        ensure_l1_filter("mst", scale=SCALE, cache=cache)
        drop_open_records()
        fallbacks = process_counter("sweep.shm.fallbacks").value
        row = population_job("mst", "baseline", scale=SCALE, share=True)
        assert row["record_source"] == "sidecar"
        assert process_counter("sweep.shm.fallbacks").value == fallbacks + 1


class TestBoundedCaches:
    def test_open_record_lru_evicts_and_recounts(self, tmp_path, monkeypatch):
        import repro.kernels.l1filter as l1filter

        monkeypatch.setattr(l1filter, "_RECORD_CACHE_CAP", 1)
        cache = ResultCache(root=tmp_path)
        ensure_l1_filter("mst", scale=0.02, cache=cache)
        ensure_l1_filter("mst", scale=0.03, cache=cache)
        drop_open_records()

        evictions = process_counter("l1filter.record_cache.evictions")
        hits = process_counter("l1filter.record_cache.hits")
        before_evictions = evictions.value
        ensure_l1_filter("mst", scale=0.02, cache=cache)  # load, remember
        ensure_l1_filter("mst", scale=0.03, cache=cache)  # load, evict 0.02
        assert evictions.value == before_evictions + 1
        before_hits = hits.value
        record_a, cached = ensure_l1_filter("mst", scale=0.03, cache=cache)
        record_b, _ = ensure_l1_filter("mst", scale=0.03, cache=cache)
        assert cached and record_a is record_b
        assert hits.value == before_hits + 2

    def test_precompute_memo_is_bounded(self, monkeypatch):
        import repro.kernels.specialize as specialize
        from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
        from repro.kernels.specialize import replay_hierarchy_specialized

        monkeypatch.setattr(specialize, "_PRECOMP_CAP", 1)
        record = _tiny_record()
        evictions = process_counter("kernels.precompute.evictions")
        before = evictions.value
        for l2_bytes in (32 * 1024, 64 * 1024):
            hierarchy = SingleCoreHierarchy(
                CoreCacheConfig(l2_bytes=l2_bytes)
            )
            replay_hierarchy_specialized(hierarchy, record)
        assert evictions.value > before
        memo = record.__dict__[specialize._PRECOMP_ATTR]
        assert len(memo) <= 1
