"""Property tests: ``restore(snapshot(s))`` is exact at any cut point.

Hypothesis drives random traces and random mid-trace cut points; a
snapshot captured there and restored onto a fresh chip must be
indistinguishable from the original on the full post-L1 deep state
(``helpers.chip_state`` minus the L1 objects, which a snapshot
deliberately excludes — filtered replay never touches them), and
continuing the replay on the restored chip must land bit-identical to
an uncut replay.  Both regimes are covered: fast-eligible chips cut
via :func:`~repro.kernels.specialize.replay_chip_slice`, and
probe-attached chips (generic loop) cut via a prefix of the arrays
path.  ``.npz`` round-trips must preserve the content digest.
"""

from hypothesis import given, settings, strategies as st

from repro.core.controller import ControllerConfig
from repro.kernels.l1filter import build_l1_filter
from repro.kernels.specialize import replay_chip_slice, replay_chip_specialized
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.multicore.state import (
    ChipSnapshot,
    chip_digest,
    restore_chip,
    snapshot_chip,
)
from tests.kernels.helpers import chip_state, make_trace, without_l1

steps_strategy = st.lists(
    st.tuples(st.integers(0, 600), st.integers(0, 2), st.integers(0, 4)),
    max_size=300,
)

CONFIGS = {
    "four_core": lambda: ChipConfig(),
    "migration_off": lambda: ChipConfig(migration_enabled=False),
    "stack": lambda: ChipConfig(controller=ControllerConfig.stack_experiment()),
}


@given(
    steps=steps_strategy,
    cut_fraction=st.floats(0.0, 1.0),
    config_name=st.sampled_from(sorted(CONFIGS)),
)
@settings(max_examples=40, deadline=None)
def test_fast_cut_roundtrip_and_continuation(steps, cut_fraction, config_name):
    _accesses, arrays = make_trace(steps)
    record = build_l1_filter(*arrays)
    config = CONFIGS[config_name]()
    cut = int(cut_fraction * record.records)

    chip = MultiCoreChip(config)
    acc_mark = (
        int(record.indices[cut]) if cut < record.records else record.accesses
    )
    replay_chip_slice(chip, record, 0, cut, n_accesses=acc_mark)
    snap = snapshot_chip(chip)

    restored = MultiCoreChip(config)
    restore_chip(restored, snap)
    assert chip_digest(restored) == chip_digest(chip)
    assert without_l1(chip_state(restored)) == without_l1(chip_state(chip))

    # Continue from the restored chip; must equal the uncut replay.
    replay_chip_slice(
        restored,
        record,
        cut,
        record.records,
        n_accesses=record.accesses - acc_mark,
        max_instruction=record.max_instruction,
    )
    full = MultiCoreChip(config)
    replay_chip_specialized(full, record)
    assert chip_digest(restored) == chip_digest(full)
    assert without_l1(chip_state(restored)) == without_l1(chip_state(full))


@given(steps=steps_strategy, cut_fraction=st.floats(0.0, 1.0))
@settings(max_examples=20, deadline=None)
def test_generic_regime_roundtrip(steps, cut_fraction):
    # A probe forces the generic per-record loop; snapshots must be
    # exact for state produced by either regime.
    from repro.obs import SimProbe

    _accesses, arrays = make_trace(steps)
    cut = int(cut_fraction * len(arrays[0]))
    prefix = tuple(a[:cut] for a in arrays)
    chip = MultiCoreChip(ChipConfig(), probe=SimProbe(name="snap"))
    chip.run_arrays(*prefix)
    snap = snapshot_chip(chip)
    restored = MultiCoreChip(ChipConfig())
    restore_chip(restored, snap)
    assert chip_digest(restored) == chip_digest(chip)
    assert without_l1(chip_state(restored)) == without_l1(chip_state(chip))


@given(steps=steps_strategy, cut_fraction=st.floats(0.0, 1.0))
@settings(max_examples=10, deadline=None)
def test_npz_roundtrip_preserves_digest(steps, cut_fraction, tmp_path_factory):
    _accesses, arrays = make_trace(steps)
    record = build_l1_filter(*arrays)
    cut = int(cut_fraction * record.records)
    chip = MultiCoreChip(ChipConfig())
    acc_mark = (
        int(record.indices[cut]) if cut < record.records else record.accesses
    )
    replay_chip_slice(chip, record, 0, cut, n_accesses=acc_mark)
    snap = snapshot_chip(chip)
    path = tmp_path_factory.mktemp("snaps") / "cut.npz"
    snap.save(path)
    loaded = ChipSnapshot.load(path)
    assert loaded.digest() == snap.digest()
    restored = MultiCoreChip(ChipConfig())
    restore_chip(restored, loaded)
    assert chip_digest(restored) == chip_digest(chip)
