"""Array helpers: vectorised skew hashing and trace conversion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.skewed import skew_hash
from repro.kernels.arrays import (
    as_trace_arrays,
    skew_slot_matrix,
    trace_to_arrays,
)
from tests.kernels.helpers import make_trace


class TestSkewSlotMatrix:
    @given(
        lines=st.lists(st.integers(0, 2**48), max_size=64),
        sets_bits=st.integers(0, 12),
        ways=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_skew_hash(self, lines, sets_bits, ways):
        num_sets = 1 << sets_bits
        index_bits = num_sets.bit_length() - 1
        matrix = skew_slot_matrix(lines, num_sets, ways)
        assert matrix.shape == (len(lines), ways)
        for i, line in enumerate(lines):
            for way in range(ways):
                expected = way * num_sets + skew_hash(line, way, index_bits)
                assert matrix[i, way] == expected

    def test_paper_geometry(self):
        # The section 4.2 L2: 2048 sets x 4 ways.
        lines = list(range(0, 100_000, 997))
        matrix = skew_slot_matrix(lines, 2048, 4)
        for i, line in enumerate(lines):
            for way in range(4):
                assert matrix[i, way] == way * 2048 + skew_hash(line, way, 11)


class TestTraceArrays:
    def test_round_trip(self):
        accesses, arrays = make_trace([(3, 0, 2), (5, 1, 0), (3, 2, 3)])
        addresses, kinds, instructions = trace_to_arrays(accesses)
        assert addresses.tolist() == arrays[0].tolist()
        assert kinds.tolist() == arrays[1].tolist()
        assert instructions.tolist() == arrays[2].tolist()

    def test_as_trace_arrays_validates_lengths(self):
        with pytest.raises(ValueError):
            as_trace_arrays([1, 2, 3], [0, 1], [0, 1, 2])

    def test_as_trace_arrays_coerces_dtypes(self):
        addresses, kinds, instructions = as_trace_arrays(
            [64, 128], [0, 2], [0, 3]
        )
        assert addresses.dtype == np.int64
        assert kinds.dtype == np.int8
        assert instructions.dtype == np.int64
