"""Differential tests: the batched fast paths vs the seed per-access
path, compared on full deep state (see ``helpers.py``).

Hypothesis drives random mixed FETCH/LOAD/STORE traces through three
executions of every model — ``run`` (seed), ``run_arrays`` (batched)
and ``run_filtered`` (L1-filter replay, which dispatches to the
generated specialized kernel) — and requires indistinguishable final
state; the fast-eligible chip cases additionally pin the retired
inline kernel (``run_legacy_inline``) to the same digests.  The filtered path is compared without the L1 cache
objects: the record *replaces* the model's L1 pair by contract, so
the replaying model's il1/dl1 stay untouched while its ``ChipStats``
(including the L1 miss counters) must still match exactly.  The fixed
cases pin the configurations the fast path must
*bypass* correctly (prefetchers, probes) or handle structurally
(2-way controller, migration disabled, fully-associative L1s).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.core.controller import ControllerConfig
from repro.kernels.l1filter import build_l1_filter
from repro.multicore.chip import ChipConfig, MultiCoreChip
from tests.kernels.helpers import (
    chip_state,
    hierarchy_state,
    make_trace,
    without_l1,
)

#: (element, kind index, instruction step) triples; elements span more
#: lines than the small L1s hold so misses, evictions and write-backs
#: all occur.
steps_strategy = st.lists(
    st.tuples(
        st.integers(0, 600), st.integers(0, 2), st.integers(0, 4)
    ),
    max_size=300,
)


def run_three_ways(make_model, accesses, arrays, config=None):
    """Seed loop, batched arrays, and filtered replay; return digests."""
    seed = make_model()
    for access in accesses:
        seed.access(access)
    batched = make_model()
    batched.run_arrays(*arrays)
    filtered = make_model()
    filtered.run_filtered(build_l1_filter(*arrays, config=config))
    return seed, batched, filtered


def run_legacy_inline(make_model, arrays):
    """The pre-specialization inline chip kernel over the same record.

    ``run_filtered`` now dispatches to the generated specialized kernel
    (:mod:`repro.kernels.specialize`); the inline twin stays behind as
    an independent reference implementation, and this keeps it pinned
    to the seed path so a divergence in *either* kernel turns the
    differential red.
    """
    from repro.kernels.batch import _replay_chip_fast

    record = build_l1_filter(*arrays)
    chip = make_model()
    _replay_chip_fast(
        chip,
        record.lines.tolist(),
        record.kinds.tolist(),
        record.accesses,
        record.max_instruction,
    )
    return chip


class TestChipDifferential:
    @given(steps=steps_strategy)
    @settings(max_examples=30, deadline=None)
    def test_four_core_chip(self, steps):
        accesses, arrays = make_trace(steps)
        seed, batched, filtered = run_three_ways(
            lambda: MultiCoreChip(ChipConfig()), accesses, arrays
        )
        assert chip_state(batched) == chip_state(seed)
        assert without_l1(chip_state(filtered)) == without_l1(chip_state(seed))
        legacy = run_legacy_inline(lambda: MultiCoreChip(ChipConfig()), arrays)
        assert without_l1(chip_state(legacy)) == without_l1(chip_state(seed))

    @given(steps=steps_strategy)
    @settings(max_examples=15, deadline=None)
    def test_two_way_controller(self, steps):
        accesses, arrays = make_trace(steps)
        config = ChipConfig(
            num_cores=2,
            controller=ControllerConfig(
                num_subsets=2,
                filter_bits=18,
                affinity_cache_entries=1024,
                l2_filtering=True,
            ),
        )
        seed, batched, filtered = run_three_ways(
            lambda: MultiCoreChip(config), accesses, arrays
        )
        assert chip_state(batched) == chip_state(seed)
        assert without_l1(chip_state(filtered)) == without_l1(chip_state(seed))
        legacy = run_legacy_inline(lambda: MultiCoreChip(config), arrays)
        assert without_l1(chip_state(legacy)) == without_l1(chip_state(seed))

    @given(steps=steps_strategy)
    @settings(max_examples=15, deadline=None)
    def test_migration_disabled(self, steps):
        accesses, arrays = make_trace(steps)
        config = ChipConfig(migration_enabled=False)
        seed, batched, filtered = run_three_ways(
            lambda: MultiCoreChip(config), accesses, arrays
        )
        assert chip_state(batched) == chip_state(seed)
        assert without_l1(chip_state(filtered)) == without_l1(chip_state(seed))
        legacy = run_legacy_inline(lambda: MultiCoreChip(config), arrays)
        assert without_l1(chip_state(legacy)) == without_l1(chip_state(seed))

    @given(steps=steps_strategy)
    @settings(max_examples=15, deadline=None)
    def test_stack_experiment_controller(self, steps):
        # Unbounded store, full sampling, no L2 filtering (section 4.1).
        accesses, arrays = make_trace(steps)
        config = ChipConfig(controller=ControllerConfig.stack_experiment())
        seed, batched, filtered = run_three_ways(
            lambda: MultiCoreChip(config), accesses, arrays
        )
        assert chip_state(batched) == chip_state(seed)
        assert without_l1(chip_state(filtered)) == without_l1(chip_state(seed))
        legacy = run_legacy_inline(lambda: MultiCoreChip(config), arrays)
        assert without_l1(chip_state(legacy)) == without_l1(chip_state(seed))

    @given(steps=steps_strategy)
    @settings(max_examples=10, deadline=None)
    def test_with_prefetcher(self, steps):
        # A prefetcher mutates the L2s outside the fast path's model, so
        # the batched entry points must fall back to the generic replay
        # — and still match, including the prefetcher's own counters.
        from repro.caches.prefetch import NextLinePrefetcher

        accesses, arrays = make_trace(steps)
        make_model = lambda: MultiCoreChip(
            ChipConfig(), prefetcher_factory=NextLinePrefetcher
        )
        seed, batched, filtered = run_three_ways(make_model, accesses, arrays)
        assert chip_state(batched) == chip_state(seed)
        assert without_l1(chip_state(filtered)) == without_l1(chip_state(seed))
        digests = [
            [vars(p.stats) for p in model.prefetchers]
            for model in (seed, batched, filtered)
        ]
        assert digests[1] == digests[0]
        assert digests[2] == digests[0]

    @given(steps=steps_strategy)
    @settings(max_examples=10, deadline=None)
    def test_with_probe(self, steps):
        # Probe event streams must fire at the same access numbers and
        # in the same order on every path.
        from repro.obs import SimProbe

        accesses, arrays = make_trace(steps)
        reports = []
        for mode in ("seed", "arrays", "filtered"):
            probe = SimProbe(name="diff", sample_interval=7)
            chip = MultiCoreChip(ChipConfig(), probe=probe)
            if mode == "seed":
                for access in accesses:
                    chip.access(access)
            elif mode == "arrays":
                chip.run_arrays(*arrays)
            else:
                chip.run_filtered(build_l1_filter(*arrays))
            reports.append(
                json.dumps(
                    probe.report().to_dict(), sort_keys=True, default=str
                )
            )
        assert reports[1] == reports[0]
        assert reports[2] == reports[0]


class TestHierarchyDifferential:
    @given(steps=steps_strategy)
    @settings(max_examples=30, deadline=None)
    def test_single_core(self, steps):
        accesses, arrays = make_trace(steps)
        seed, batched, filtered = run_three_ways(
            SingleCoreHierarchy, accesses, arrays
        )
        assert hierarchy_state(batched) == hierarchy_state(seed)
        assert without_l1(hierarchy_state(filtered)) == without_l1(
            hierarchy_state(seed)
        )

    @given(steps=steps_strategy)
    @settings(max_examples=15, deadline=None)
    def test_fully_associative_l1(self, steps):
        # l1_ways=0 selects fully-associative L1s.
        accesses, arrays = make_trace(steps)
        config = CoreCacheConfig(l1_ways=0)
        seed, batched, filtered = run_three_ways(
            lambda: SingleCoreHierarchy(config),
            accesses,
            arrays,
            config=config,
        )
        assert hierarchy_state(batched) == hierarchy_state(seed)
        assert without_l1(hierarchy_state(filtered)) == without_l1(
            hierarchy_state(seed)
        )

    @given(steps=steps_strategy)
    @settings(max_examples=10, deadline=None)
    def test_with_probe(self, steps):
        from repro.obs import SimProbe

        accesses, arrays = make_trace(steps)
        reports = []
        for mode in ("seed", "arrays", "filtered"):
            probe = SimProbe(name="diff", sample_interval=5)
            hierarchy = SingleCoreHierarchy(probe=probe)
            if mode == "seed":
                for access in accesses:
                    hierarchy.access(access)
            elif mode == "arrays":
                hierarchy.run_arrays(*arrays)
            else:
                hierarchy.run_filtered(build_l1_filter(*arrays))
            reports.append(
                json.dumps(
                    probe.report().to_dict(), sort_keys=True, default=str
                )
            )
        assert reports[1] == reports[0]
        assert reports[2] == reports[0]


def test_olden_workload_differential():
    """One real Olden trace (not just synthetic streams) end to end."""
    from repro.experiments.workloads import workload

    spec = workload("mst", scale=0.05)
    arrays = spec.arrays()
    seed = MultiCoreChip(ChipConfig())
    for access in spec.accesses():
        seed.access(access)
    batched = MultiCoreChip(ChipConfig())
    batched.run_arrays(*arrays)
    filtered = MultiCoreChip(ChipConfig())
    filtered.run_filtered(build_l1_filter(*arrays))
    assert chip_state(batched) == chip_state(seed)
    assert without_l1(chip_state(filtered)) == without_l1(chip_state(seed))
