"""Vectorized tag path vs its scalar reference twins.

The population sweep only counts because the numpy tag machinery —
:func:`~repro.kernels.arrays.set_index_array`,
:func:`~repro.kernels.arrays.tag_array`,
:func:`~repro.kernels.arrays.skew_slot_matrix`,
:meth:`~repro.core.affinity_store.AffinityCache.slot_rows`, the chunked
:meth:`~repro.caches.set_assoc.SetAssociativeCache.access_many`, and the
specialized replay kernels built on top of them — is bit-identical to
the scalar per-access loops it replaces.  The scalar code stays in the
tree as the specification; this suite drives both sides over random
geometries (skewed and set-associative, 1/2/4-way, shared and
separately-shaped affinity stores) and compares deep-state digests,
plus the ``_CHUNK`` seam lengths 0/1/65535/65536/65537 for the chunked
set-index path.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.caches.set_assoc import SetAssociativeCache, _CHUNK
from repro.caches.skewed import skew_hash
from repro.core.affinity_store import AffinityCache
from repro.core.controller import ControllerConfig, SamplingPolicy
from repro.kernels import batch
from repro.kernels.arrays import set_index_array, skew_slot_matrix, tag_array
from repro.kernels.l1filter import build_l1_filter
from repro.kernels.specialize import (
    replay_chip_specialized,
    replay_hierarchy_specialized,
)
from repro.multicore.chip import ChipConfig, MultiCoreChip
from tests.kernels.helpers import (
    cache_state,
    chip_state,
    hierarchy_state,
    without_l1,
)

# int64 line addresses, including negatives: the numpy twins promise
# Python-exact `&`/`>>` semantics on the full signed range.
lines_strategy = st.lists(
    st.integers(-(2**40), 2**40), min_size=0, max_size=300
)
num_sets_strategy = st.sampled_from([4, 16, 64, 2048])
ways_strategy = st.sampled_from([1, 2, 4])


class TestTagArrays:
    @given(lines=lines_strategy, num_sets=num_sets_strategy)
    @settings(max_examples=40, deadline=None)
    def test_set_index_matches_scalar_mask(self, lines, num_sets):
        got = set_index_array(lines, num_sets)
        assert got.tolist() == [line & (num_sets - 1) for line in lines]

    @given(lines=lines_strategy, num_sets=num_sets_strategy)
    @settings(max_examples=40, deadline=None)
    def test_tag_matches_scalar_shift(self, lines, num_sets):
        index_bits = num_sets.bit_length() - 1
        got = tag_array(lines, num_sets)
        assert got.tolist() == [line >> index_bits for line in lines]

    @given(
        lines=lines_strategy,
        num_sets=num_sets_strategy,
        ways=ways_strategy,
    )
    @settings(max_examples=40, deadline=None)
    def test_slot_matrix_matches_scalar_skew_hash(
        self, lines, num_sets, ways
    ):
        index_bits = num_sets.bit_length() - 1
        matrix = skew_slot_matrix(lines, num_sets, ways)
        assert matrix.shape == (len(lines), ways)
        for i, line in enumerate(lines):
            for way in range(ways):
                assert matrix[i, way] == way * num_sets + skew_hash(
                    line, way, index_bits
                )

    @given(
        lines=st.lists(st.integers(0, 4000), max_size=200),
        entries=st.sampled_from([64, 256, 1024]),
        ways=st.sampled_from([2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_affinity_slot_rows_match_scalar_probes(
        self, lines, entries, ways
    ):
        store = AffinityCache(num_entries=entries, ways=ways)
        rows = store.slot_rows(lines)
        index_bits = store._index_bits
        num_sets = store._num_sets
        for i, line in enumerate(lines):
            expected = [
                way * num_sets + skew_hash(line, way, index_bits)
                for way in range(ways)
            ]
            assert rows[i].tolist() == expected
        # functional twin check: a written line is found in its row
        for i, line in enumerate(lines[:32]):
            store.write(line, i)
            slot = store._find(line)
            assert slot in rows[i].tolist()
            assert store.read(line) == i


def _seam_lines(n):
    """Deterministic mixed line stream of exactly ``n`` entries
    spanning more lines than the cache holds (hits, misses, evictions
    and write-backs on both sides of any chunk seam)."""
    index = np.arange(n, dtype=np.int64)
    return ((index * 2654435761) % 997).tolist()


@pytest.mark.parametrize(
    "n", [0, 1, _CHUNK - 1, _CHUNK, _CHUNK + 1],
    ids=["0", "1", "chunk-1", "chunk", "chunk+1"],
)
@pytest.mark.parametrize("write", [False, True], ids=["read", "write"])
def test_chunked_access_many_seams(n, write):
    """The chunked set-index path is exact at every ``_CHUNK`` seam."""
    lines = _seam_lines(n)
    seed = SetAssociativeCache(64, 2)
    hits = sum(seed.access(line, write=write) for line in lines)
    chunked = SetAssociativeCache(64, 2)
    assert chunked.access_many(lines, write=write) == hits
    assert cache_state(chunked) == cache_state(seed)


# -- specialized replay kernels vs their inline scalar twins ------------

#: small L1s so short random traces still produce a dense miss stream
_L1_SMALL = dict(il1_bytes=2048, dl1_bytes=2048, l1_ways=2)


def _random_trace(seed, n=1500, span=1800, line_size=64):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, span, size=n, dtype=np.int64)
    addresses = lines * line_size + 4
    kinds = rng.integers(0, 3, size=n).astype(np.int8)
    instructions = np.cumsum(rng.integers(0, 4, size=n, dtype=np.int64))
    return addresses, kinds, instructions


chip_geometry = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**32 - 1),
        "l2_ways": st.sampled_from([2, 4]),
        "l2_bytes": st.sampled_from([32 * 1024, 64 * 1024]),
        "subsets": st.sampled_from([2, 4]),
        "store_entries": st.sampled_from([None, 512, 2048]),
        "store_ways": st.sampled_from([2, 4]),
        "l2_filtering": st.booleans(),
        "quarter_sampling": st.booleans(),
    }
)


@given(geometry=chip_geometry)
@settings(max_examples=12, deadline=None)
def test_specialized_chip_matches_inline_twin(geometry):
    caches = CoreCacheConfig(
        l2_bytes=geometry["l2_bytes"],
        l2_ways=geometry["l2_ways"],
        **_L1_SMALL,
    )
    sampling = (
        SamplingPolicy.quarter()
        if geometry["quarter_sampling"]
        else SamplingPolicy.full()
    )
    base = (
        ControllerConfig.four_core()
        if geometry["subsets"] == 4
        else ControllerConfig(num_subsets=2)
    )
    controller = replace(
        base,
        sampling=sampling,
        affinity_cache_entries=geometry["store_entries"],
        affinity_cache_ways=geometry["store_ways"],
        l2_filtering=geometry["l2_filtering"],
    )
    config = ChipConfig(
        num_cores=geometry["subsets"], caches=caches, controller=controller
    )
    record = build_l1_filter(*_random_trace(geometry["seed"]), config=caches)

    specialized = MultiCoreChip(config)
    replay_chip_specialized(specialized, record)
    twin = MultiCoreChip(config)
    batch._replay_chip_fast(
        twin,
        record.lines.tolist(),
        record.kinds.tolist(),
        record.accesses,
        record.max_instruction,
    )
    # filtered replay never touches the chip's own L1 objects
    assert without_l1(chip_state(specialized)) == without_l1(
        chip_state(twin)
    )


@given(
    seed=st.integers(0, 2**32 - 1),
    l2_ways=st.sampled_from([1, 2, 4]),
    l2_bytes=st.sampled_from([32 * 1024, 64 * 1024]),
)
@settings(max_examples=12, deadline=None)
def test_specialized_hierarchy_matches_inline_twin(seed, l2_ways, l2_bytes):
    config = CoreCacheConfig(l2_bytes=l2_bytes, l2_ways=l2_ways, **_L1_SMALL)
    record = build_l1_filter(*_random_trace(seed), config=config)

    specialized = SingleCoreHierarchy(config)
    replay_hierarchy_specialized(specialized, record)
    twin = SingleCoreHierarchy(config)
    batch._replay_hierarchy_fast(
        twin,
        record.lines.tolist(),
        record.kinds.tolist(),
        record.accesses,
        record.max_instruction,
    )
    assert without_l1(hierarchy_state(specialized)) == without_l1(
        hierarchy_state(twin)
    )
