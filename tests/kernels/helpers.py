"""Deep-state digests and trace builders for the kernel differential
tests.

The batched fast paths claim bit-identity with the seed per-access
path, so the assertions here go far beyond ``ChipStats``: two runs are
"equal" only when every cache's contents, timestamps, clocks, stats and
``last_eviction``, the coherence and bus counters, and the full
controller state (filters, mechanisms, R-windows, affinity store) are
indistinguishable.
"""

from dataclasses import asdict

import numpy as np

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.set_assoc import SetAssociativeCache
from repro.caches.skewed import SkewedAssociativeCache
from repro.core.affinity_store import AffinityCache, UnboundedAffinityStore
from repro.traces.trace import Access, AccessKind

KINDS = (AccessKind.FETCH, AccessKind.LOAD, AccessKind.STORE)


def make_trace(steps, line_size=64):
    """Build a trace from ``(element, kind_index, instruction_step)``
    triples; returns (accesses list, (addresses, kinds, instructions))."""
    accesses = []
    instruction = 0
    for element, kind_index, step in steps:
        accesses.append(
            Access(element * line_size + 4, KINDS[kind_index], instruction)
        )
        instruction += step
    addresses = np.array([a.address for a in accesses], dtype=np.int64)
    kinds = np.array([int(a.kind) for a in accesses], dtype=np.int8)
    instructions = np.array([a.instruction for a in accesses], dtype=np.int64)
    return accesses, (addresses, kinds, instructions)


def cache_state(cache):
    state = {
        "stats": asdict(cache.stats),
        "last_eviction": cache.last_eviction,
    }
    if isinstance(cache, SkewedAssociativeCache):
        state["lines"] = list(cache._lines)
        state["dirty"] = list(cache._dirty)
        state["time"] = list(cache._time)
        state["clock"] = cache._clock
    elif isinstance(cache, SetAssociativeCache):
        state["sets"] = [list(s.items()) for s in cache._sets]
    elif isinstance(cache, FullyAssociativeCache):
        state["lines"] = list(cache._lines.items())
    else:  # pragma: no cover - new cache type
        raise TypeError(type(cache).__name__)
    return state


def store_state(store):
    if isinstance(store, UnboundedAffinityStore):
        return {
            "values": dict(store._values),
            "reads": store.reads,
            "writes": store.writes,
            "misses": store.misses,
        }
    assert isinstance(store, AffinityCache)
    return {
        "lines": list(store._lines),
        "values": list(store._values),
        "time": list(store._time),
        "clock": store._clock,
        "reads": store.reads,
        "writes": store.writes,
        "misses": store.misses,
        "evictions": store.evictions,
    }


def mechanism_state(mechanism):
    return {
        "delta": mechanism.delta.value,
        "window_affinity": mechanism.window_affinity.value,
        "references": mechanism.references,
        "fifo": list(mechanism._fifo),
        "lru": list(mechanism._lru.items()),
    }


def filter_state(transition_filter):
    return {
        "value": transition_filter.value,
        "updates": transition_filter.updates,
        "sign_changes": transition_filter.sign_changes,
        "last_sign": transition_filter._last_sign,
    }


def controller_state(controller):
    return {
        "stats": asdict(controller.stats),
        "previous_subset": controller._previous_subset,
        "store": store_state(controller.store),
        "mechanisms": [mechanism_state(m) for m in controller.mechanisms()],
        "filters": [
            filter_state(f)
            for f in [controller.filter_x, *controller.filter_y.values()]
        ],
    }


def chip_state(chip):
    return {
        "stats": chip.stats.to_dict(),
        "il1": cache_state(chip.il1),
        "dl1": cache_state(chip.dl1),
        "l2s": [cache_state(c) for c in chip.l2s.caches],
        "coherence": asdict(chip.l2s.stats),
        "active_core": chip.engine.active_core,
        "migrations": chip.engine.migrations,
        "controller": controller_state(chip.controller),
        "bus": asdict(chip.bus_traffic),
    }


def hierarchy_state(hierarchy):
    return {
        "stats": asdict(hierarchy.stats),
        "il1": cache_state(hierarchy.il1),
        "dl1": cache_state(hierarchy.dl1),
        "l2": cache_state(hierarchy.l2),
    }


def without_l1(state):
    """A model digest minus the L1 cache objects.

    A filtered replay *replaces* the model's L1 pair with the record
    (the L1 caches are never touched — their stats live in the model
    stats, which stay in the digest), so filtered-vs-seed comparisons
    use this view.
    """
    return {k: v for k, v in state.items() if k not in ("il1", "dl1")}
