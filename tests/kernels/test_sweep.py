"""The sweep guarantee: one L1 simulation shared by every variant."""

import pytest

from repro.runtime import EventBus, ExperimentRuntime, ResultCache, RuntimeConfig


@pytest.fixture()
def runtime(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return ExperimentRuntime(
        config=RuntimeConfig(jobs=1),
        cache=ResultCache(root=tmp_path),
        bus=EventBus([]),
    )


def test_three_variant_sweep_simulates_l1_once(runtime, monkeypatch):
    import repro.kernels.l1filter as l1filter
    from repro.experiments.variants import VARIANT_NAMES, run_sweep

    builds = []
    real_build = l1filter.build_l1_filter

    def counting_build(*args, **kwargs):
        builds.append(1)
        return real_build(*args, **kwargs)

    monkeypatch.setattr(l1filter, "build_l1_filter", counting_build)
    rows = run_sweep("mst", scale=0.05, runtime=runtime)
    assert [row["variant"] for row in rows] == list(VARIANT_NAMES)
    # the L1 stage ran exactly once: one l1filter job + three replays
    assert len(builds) == 1
    assert runtime.stats.executed == 1 + len(VARIANT_NAMES)
    assert runtime.stats.cache_hits == 0
    # every variant saw the cached record, not a fresh simulation
    assert all(row["l1_filter_cached"] for row in rows)
    # migration variant equals baseline or better machinery: same L1
    # miss stream means identical l2_accesses everywhere
    assert len({row["l2_accesses"] for row in rows}) == 1


def test_warm_sweep_is_all_cache_hits(runtime, tmp_path):
    from repro.experiments.variants import run_sweep

    run_sweep("mst", scale=0.05, runtime=runtime)
    warm = ExperimentRuntime(
        config=RuntimeConfig(jobs=1),
        cache=ResultCache(root=tmp_path),
        bus=EventBus([]),
    )
    rows = run_sweep("mst", scale=0.05, runtime=warm)
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == 4
    assert all(row["l1_filter_cached"] for row in rows)


def test_serial_sweep_without_runtime(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.experiments.variants import run_sweep, render_sweep

    rows = run_sweep("mst", scale=0.05)
    rendered = render_sweep(rows)
    assert "baseline" in rendered and "no-l2-filter" in rendered
    # first job built the record; the later variants reused it
    assert rows[0]["l1_filter_cached"] is False
    assert all(row["l1_filter_cached"] for row in rows[1:])


def test_unknown_variant_rejected():
    from repro.experiments.variants import make_variant

    with pytest.raises(ValueError):
        make_variant("warp-drive")
