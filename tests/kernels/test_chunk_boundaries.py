"""Audit of the ``_CHUNK`` (= 65536) boundary in the batched kernels.

``run_arrays``/``build_l1_filter`` stream the trace in 64K-access
chunks; an off-by-one at the chunk seam would corrupt exactly the
traces whose length lands on the boundary.  This file pins lengths 0,
1, ``_CHUNK - 1``, ``_CHUNK`` and ``_CHUNK + 1`` through both the fast
regime (no probe — ``run_arrays`` takes the inline kernel,
``run_filtered`` dispatches to the specialized generated kernel) and
the generic regime (probe attached, which makes the fast path
ineligible), and requires identical deep state between the two.  The
tiny lengths are additionally compared against the seed per-access
loop; the 64K lengths are not (a quarter-million per-access steps per
case would dominate the suite for no extra seam coverage).
"""

import numpy as np
import pytest

from repro.caches.hierarchy import SingleCoreHierarchy
from repro.kernels.batch import _CHUNK
from repro.kernels.l1filter import build_l1_filter
from repro.multicore.chip import ChipConfig, MultiCoreChip
from tests.kernels.helpers import chip_state, hierarchy_state, without_l1

TINY = (0, 1)
SEAM = (_CHUNK - 1, _CHUNK, _CHUNK + 1)


def boundary_arrays(n, line_size=64):
    """A deterministic mixed trace of exactly ``n`` references.

    Spans ~1500 distinct lines (more than the small L1s hold, so
    misses, evictions and write-backs all occur on both sides of any
    chunk seam) with all three access kinds and a varying instruction
    step.
    """
    index = np.arange(n, dtype=np.int64)
    lines = (index * 2654435761) % 1501
    addresses = lines * line_size + 4
    kinds = (index % 3).astype(np.int8)
    instructions = np.cumsum((index * 7) % 5)
    return addresses, kinds, instructions


def _accesses(arrays):
    from repro.traces.trace import Access, AccessKind

    addresses, kinds, instructions = arrays
    return [
        Access(int(a), AccessKind(int(k)), int(i))
        for a, k, i in zip(addresses, kinds, instructions)
    ]


def _probe():
    from repro.obs import SimProbe

    return SimProbe(name="boundary", sample_interval=10_000)


@pytest.mark.parametrize("n", TINY + SEAM)
def test_chip_fast_vs_generic(n):
    arrays = boundary_arrays(n)
    fast = MultiCoreChip(ChipConfig())
    fast.run_arrays(*arrays)
    generic = MultiCoreChip(ChipConfig(), probe=_probe())
    generic.run_arrays(*arrays)
    assert chip_state(fast) == chip_state(generic)


@pytest.mark.parametrize("n", TINY + SEAM)
def test_chip_filtered_fast_vs_generic(n):
    arrays = boundary_arrays(n)
    record = build_l1_filter(*arrays)
    fast = MultiCoreChip(ChipConfig())
    fast.run_filtered(record)
    generic = MultiCoreChip(ChipConfig(), probe=_probe())
    generic.run_filtered(record)
    assert without_l1(chip_state(fast)) == without_l1(chip_state(generic))
    # The filtered replays must also agree with the arrays path on
    # everything but the untouched L1 objects.
    arrays_chip = MultiCoreChip(ChipConfig())
    arrays_chip.run_arrays(*arrays)
    assert without_l1(chip_state(fast)) == without_l1(chip_state(arrays_chip))


@pytest.mark.parametrize("n", TINY + SEAM)
def test_hierarchy_fast_vs_generic(n):
    arrays = boundary_arrays(n)
    record = build_l1_filter(*arrays)
    fast = SingleCoreHierarchy()
    fast.run_arrays(*arrays)
    generic = SingleCoreHierarchy(probe=_probe())
    generic.run_arrays(*arrays)
    assert hierarchy_state(fast) == hierarchy_state(generic)
    filtered = SingleCoreHierarchy()
    filtered.run_filtered(record)
    assert without_l1(hierarchy_state(filtered)) == without_l1(
        hierarchy_state(fast)
    )


@pytest.mark.parametrize("n", TINY)
def test_tiny_lengths_match_seed_loop(n):
    arrays = boundary_arrays(n)
    seed = MultiCoreChip(ChipConfig())
    for access in _accesses(arrays):
        seed.access(access)
    batched = MultiCoreChip(ChipConfig())
    batched.run_arrays(*arrays)
    assert chip_state(batched) == chip_state(seed)
    filtered = MultiCoreChip(ChipConfig())
    filtered.run_filtered(build_l1_filter(*arrays))
    assert without_l1(chip_state(filtered)) == without_l1(chip_state(seed))


@pytest.mark.parametrize("n", SEAM)
def test_l1_record_seam_consistency(n):
    """The L1 filter stage chunks over the same seam; splitting the
    trace at the chunk boundary and replaying the halves through one
    chip must equal the unsplit replay (both the record contents and
    the final chip state)."""
    arrays = boundary_arrays(n)
    record = build_l1_filter(*arrays)
    whole = MultiCoreChip(ChipConfig())
    whole.run_filtered(record)

    split = MultiCoreChip(ChipConfig())
    cut = _CHUNK - 1
    first = tuple(a[:cut] for a in arrays)
    second = tuple(a[cut:] for a in arrays)
    split.run_arrays(*first)
    split.run_arrays(*second)
    # Instruction counting restarts per run_arrays call, and the L1s
    # are only touched on the arrays path — compare the L2-and-beyond
    # machine state, which the seam would corrupt first.
    fast_state = without_l1(chip_state(whole))
    split_state = without_l1(chip_state(split))
    for state in (fast_state, split_state):
        state["stats"] = {
            k: v
            for k, v in state["stats"].items()
            if k not in ("instructions", "accesses", "l1_misses")
        }
    assert split_state == fast_state
