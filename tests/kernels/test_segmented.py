"""Segment-parallel replay: planning, capture reuse, stitch identity.

Small real workloads (Olden ``mst``/``em3d`` trimmed hard) run through
:mod:`repro.kernels.segmented` end to end against an isolated on-disk
cache: the stitched stats and final digest must equal an independent
serial replay, the digest chain must verify, ``replay_window`` must
land on the exact mid-trace state, and ``run_table2_segmented`` must
produce rows byte-identical to the serial ``run_table2`` driver.
"""

import pytest

from repro.kernels.l1filter import ensure_l1_filter
from repro.kernels.segmented import (
    access_marks,
    ensure_segment_snapshots,
    plan_segments,
    replay_window,
    run_segmented,
)
from repro.kernels.specialize import replay_chip_slice, replay_chip_specialized
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.multicore.state import chip_digest
from repro.runtime.cache import ResultCache

WORKLOAD = "mst"
SCALE = 0.05


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return ResultCache(tmp_path_factory.mktemp("seg-cache"))


@pytest.fixture(scope="module")
def record(cache):
    rec, _cached = ensure_l1_filter(WORKLOAD, scale=SCALE, cache=cache)
    return rec


def test_plan_segments_partitions_exactly():
    for n in (0, 1, 7, 100):
        for k in (1, 2, 3, 8):
            bounds = plan_segments(n, k)
            assert bounds[0] == 0 and bounds[-1] == n
            assert len(bounds) == k + 1
            assert bounds == sorted(bounds)
    with pytest.raises(ValueError):
        plan_segments(10, 0)


def test_access_marks_partition_the_trace(record):
    bounds = plan_segments(record.records, 3)
    marks = access_marks(record, bounds)
    assert marks[0] == 0
    assert marks[-1] == record.accesses
    assert marks == sorted(marks)
    assert sum(b - a for a, b in zip(marks, marks[1:])) == record.accesses


def test_capture_is_reused(cache):
    manifest1, directory1 = ensure_segment_snapshots(
        WORKLOAD, scale=SCALE, segments=3, cache=cache
    )
    mtimes = {p.name: p.stat().st_mtime_ns for p in directory1.iterdir()}
    manifest2, directory2 = ensure_segment_snapshots(
        WORKLOAD, scale=SCALE, segments=3, cache=cache
    )
    assert directory2 == directory1
    assert manifest2 == manifest1
    assert {
        p.name: p.stat().st_mtime_ns for p in directory2.iterdir()
    } == mtimes  # nothing recaptured


@pytest.mark.parametrize("segments", (1, 2, 3))
def test_stitch_matches_serial(cache, record, segments):
    stitched = run_segmented(
        WORKLOAD, scale=SCALE, segments=segments, cache=cache
    )
    assert stitched.digest_chain_ok
    assert stitched.stats_identical
    assert stitched.segments == segments
    assert stitched.records == record.records
    serial = MultiCoreChip(ChipConfig())
    replay_chip_specialized(serial, record)
    assert stitched.final_digest == chip_digest(serial)
    assert stitched.stats.to_dict() == serial.stats.to_dict()


def test_uneven_boundaries_still_stitch(cache, record):
    # A segment count that does not divide the record count exercises
    # the remainder-absorbing boundaries.
    segments = 7 if record.records % 7 else 6
    stitched = run_segmented(
        WORKLOAD, scale=SCALE, segments=segments, cache=cache
    )
    assert stitched.digest_chain_ok and stitched.stats_identical


def test_replay_window_warm_up_and_discard(cache, record):
    bounds = plan_segments(record.records, 3)
    marks = access_marks(record, bounds)
    # A window that starts strictly inside segment 1 forces warm-up
    # from boundary b_1, not from the window start.
    start = bounds[1] + max(1, (bounds[2] - bounds[1]) // 3)
    end = min(record.records, start + max(1, record.records // 4))
    chip = replay_window(
        WORKLOAD, start, end, scale=SCALE, segments=3, cache=cache
    )
    expected = MultiCoreChip(ChipConfig())
    acc_mark = (
        int(record.indices[end]) if end < record.records else record.accesses
    )
    replay_chip_slice(expected, record, 0, end, n_accesses=acc_mark)
    assert chip_digest(chip) == chip_digest(expected)


def test_table2_segmented_rows_identical(cache):
    from repro.experiments.table2 import run_table2, run_table2_segmented

    names = (WORKLOAD,)
    serial = run_table2(names, scale=SCALE)
    segmented = run_table2_segmented(names, scale=SCALE, segments=2)
    assert segmented == serial
