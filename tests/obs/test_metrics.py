"""Metrics primitives: counters, gauges, histograms, series, merging."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_dict() == {"type": "counter", "value": 5}

    def test_gauge_keeps_last_value(self):
        g = Gauge()
        g.set(1.5)
        g.set(0.25)
        assert g.to_dict() == {"type": "gauge", "value": 0.25}


class TestHistogram:
    def test_counts_and_edges(self):
        h = Histogram()
        for v in (1, 2, 3, 100, 1000):
            h.record(v)
        assert h.count == 5
        assert h.min == 1
        assert h.max == 1000
        assert h.mean == pytest.approx(1106 / 5)

    def test_percentile_relative_error_is_bounded(self):
        # HDR layout: a bucket floor is within 1/sub_buckets of the value.
        h = Histogram(sub_buckets=16)
        for v in range(1, 10_000):
            h.record(v)
        for p in (50, 95, 99):
            exact = p / 100 * 9_999
            approx = h.percentile(p)
            assert approx <= exact
            assert approx >= exact * (1 - 1 / 16) - 1

    def test_values_below_one_land_in_bucket_zero(self):
        h = Histogram()
        h.record(0)
        h.record(-5)
        assert h.buckets == {0: 2}
        assert h.percentile(50) == 0.0

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_to_dict_is_json_serialisable(self):
        h = Histogram()
        for v in (7, 70, 700):
            h.record(v)
        json.dumps(h.to_dict())

    def test_single_sample_quantiles_are_exact(self):
        # One queue-wait sample is common (a one-job sweep); every
        # quantile of it must be that sample, not a bucket floor.
        h = Histogram()
        h.record(1234)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == 1234.0

    def test_p0_and_p100_are_exact_extremes(self):
        h = Histogram()
        for v in (17, 500, 9001):
            h.record(v)
        assert h.percentile(0) == 17.0
        assert h.percentile(100) == 9001.0

    def test_empty_extreme_quantiles_are_zero(self):
        assert Histogram().percentile(0) == 0.0
        assert Histogram().percentile(100) == 0.0


class TestHistogramMerge:
    def test_merge_equals_concatenated_recording(self):
        a, b, combined = Histogram(), Histogram(), Histogram()
        for v in (1, 5, 42):
            a.record(v)
            combined.record(v)
        for v in (7, 9001):
            b.record(v)
            combined.record(v)
        a.merge(b)
        assert a.to_dict() == combined.to_dict()

    def test_merge_returns_self_and_accepts_empty(self):
        a = Histogram()
        a.record(3)
        before = a.to_dict()
        assert a.merge(Histogram()) is a
        assert a.to_dict() == before

    def test_merge_into_empty(self):
        a, b = Histogram(), Histogram()
        b.record(8)
        a.merge(b)
        assert a.count == 1
        assert a.min == 8 and a.max == 8

    def test_merge_layout_mismatch_raises(self):
        with pytest.raises(ValueError, match="sub_buckets"):
            Histogram(sub_buckets=16).merge(Histogram(sub_buckets=32))

    @given(
        shards=st.lists(
            st.lists(st.integers(min_value=0, max_value=10**9), max_size=30),
            min_size=1,
            max_size=5,
        )
    )
    def test_merge_of_shards_equals_histogram_of_concatenation(self, shards):
        # The sweep summary merges per-worker histograms; the result
        # must be indistinguishable from one histogram that saw every
        # sample — for any sharding.
        merged = Histogram()
        combined = Histogram()
        for shard in shards:
            h = Histogram()
            for v in shard:
                h.record(v)
                combined.record(v)
            merged.merge(h)
        assert merged.to_dict() == combined.to_dict()
        for p in (0, 50, 95, 100):
            assert merged.percentile(p) == combined.percentile(p)


class TestTimeSeries:
    def test_appends_below_cap(self):
        s = TimeSeries(max_samples=8)
        for t in range(5):
            s.append(t, float(t))
        assert s.samples == [(t, float(t)) for t in range(5)]
        assert s.stride == 1

    def test_decimates_and_doubles_stride_on_overflow(self):
        s = TimeSeries(max_samples=8)
        for t in range(64):
            s.append(t, float(t))
        # Memory stays bounded, the sketch stays evenly spaced.
        assert len(s.samples) < 8
        assert s.stride > 1
        times = [t for t, _ in s.samples]
        assert times == sorted(times)
        gaps = {b - a for a, b in zip(times, times[1:])}
        # Roughly even spacing survives decimation (no dense/sparse mix).
        assert max(gaps) <= 2 * min(gaps)

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            TimeSeries(max_samples=2)


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")

    def test_name_kind_collision_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            r.gauge("x")

    def test_to_dict_sorted_and_serialisable(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.gauge("a").set(2.0)
        r.histogram("c").record(3)
        r.series("d").append(1, 1.0)
        exported = r.to_dict()
        assert list(exported) == ["a", "b", "c", "d"]
        json.dumps(exported)

    def test_merge_sums_counters_and_recomputes_percentiles(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("migrations").inc(2)
        r2.counter("migrations").inc(3)
        for v in range(1, 50):
            r1.histogram("gap").record(v)
        for v in range(1000, 1100):
            r2.histogram("gap").record(v)
        merged = MetricsRegistry.merge_dicts([r1.to_dict(), r2.to_dict()])
        assert merged["migrations"]["value"] == 5
        gap = merged["gap"]
        assert gap["count"] == 149
        assert gap["min"] == 1
        assert gap["max"] == 1099
        # p95 must reflect the merged distribution, not either input's.
        assert gap["p95"] > r1.to_dict()["gap"]["p95"]

    def test_merge_concatenates_series_and_keeps_last_gauge(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.series("s").append(1, 1.0)
        r2.series("s").append(2, 2.0)
        r1.gauge("g").set(1.0)
        r2.gauge("g").set(9.0)
        merged = MetricsRegistry.merge_dicts([r1.to_dict(), r2.to_dict()])
        assert merged["s"]["samples"] == [[1, 1.0], [2, 2.0]]
        assert merged["g"]["value"] == 9.0

    def test_merge_type_mismatch_raises(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("x")
        r2.gauge("x")
        with pytest.raises(ValueError, match="merge"):
            MetricsRegistry.merge_dicts([r1.to_dict(), r2.to_dict()])

    def test_merge_does_not_mutate_inputs(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        exported = r.to_dict()
        MetricsRegistry.merge_dicts([exported, exported])
        assert exported["x"]["value"] == 1
