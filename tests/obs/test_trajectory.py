"""The perf-trajectory gate: metric gating rules, the pure comparison
core, and the CLI against a real (temporary) git history — including
the must-fail path on a synthetic regression."""

import json
import subprocess

import pytest

from repro.obs.trajectory import (
    build_report,
    compare_metrics,
    find_baselines,
    flatten_numeric,
    is_gated,
    main,
    render_markdown,
    workload_context,
)


class TestGatingRules:
    def test_throughput_paths_are_gated(self):
        assert is_gated("filtered_speedup")
        assert is_gated("speedup.l2_only")
        assert is_gated("refs_per_sec.filtered")

    def test_specialized_and_segmented_keys_are_gated(self):
        # The BENCH_throughput.json keys added with the specialized /
        # segment-parallel replay paths must ride the existing gate.
        assert is_gated("specialized_speedup")
        assert is_gated("segmented_speedup")
        assert is_gated("refs_per_sec.specialized")
        assert is_gated("refs_per_sec.segmented")
        assert is_gated("refs_per_sec.per_access")
        # ...while their cost-accounting side-cars stay ungated noise.
        assert not is_gated("specialized_cold_sec")
        assert not is_gated("snapshot_capture_sec")
        assert not is_gated("segments")

    def test_noise_and_context_paths_are_not(self):
        assert not is_gated("elapsed_s")
        assert not is_gated("overhead_pct")
        assert not is_gated("jobs")
        # `refs_per_sec` gates only as the *top* segment.
        assert not is_gated("debug.refs_per_sec")

    def test_flatten_skips_bools_and_strings(self):
        flat = flatten_numeric(
            {"a": {"b": 2, "flag": True}, "workload": "mst", "c": 1.5}
        )
        assert flat == {"a.b": 2.0, "c": 1.5}

    def test_workload_context(self):
        assert workload_context({"workload": "mst, scale=0.5"}) == "mst, scale=0.5"
        assert workload_context({"no": 1}) == ""
        assert workload_context([1]) == ""


class TestCompareMetrics:
    HISTORY = [
        ("c2", {"workload": "w", "refs_per_sec": {"x": 100.0}, "elapsed_s": 7}),
        ("c1", {"workload": "w", "refs_per_sec": {"x": 90.0}}),
    ]

    def test_regression_beyond_threshold_fails_gate(self):
        (entry,) = compare_metrics(
            {"refs_per_sec.x": 79.0}, "w", "BENCH_t.json", self.HISTORY
        )
        assert entry.baseline == 100.0
        assert entry.baseline_commit == "c2"
        assert entry.delta_pct == pytest.approx(-0.21)
        assert entry.regressed

    def test_drop_within_threshold_passes(self):
        (entry,) = compare_metrics(
            {"refs_per_sec.x": 95.0}, "w", "BENCH_t.json", self.HISTORY
        )
        assert not entry.regressed

    def test_ungated_metric_never_regresses(self):
        (entry,) = compare_metrics(
            {"elapsed_s": 700.0}, "w", "BENCH_t.json", self.HISTORY
        )
        assert entry.baseline == 7
        assert not entry.regressed

    def test_context_mismatch_means_no_baseline(self):
        # Same file re-measured at another scale: history exists but
        # must never be compared against.
        (entry,) = compare_metrics(
            {"refs_per_sec.x": 1.0}, "other-scale", "BENCH_t.json", self.HISTORY
        )
        assert entry.baseline is None
        assert not entry.regressed
        assert len(entry.history) == 2  # still reported for the table

    def test_baseline_skips_foreign_context_commits(self):
        history = [
            ("c3", {"workload": "other", "refs_per_sec": {"x": 5.0}}),
            *self.HISTORY,
        ]
        (entry,) = compare_metrics(
            {"refs_per_sec.x": 99.0}, "w", "BENCH_t.json", history
        )
        assert entry.baseline == 100.0

    def test_improvement_is_fine(self):
        (entry,) = compare_metrics(
            {"refs_per_sec.x": 150.0}, "w", "BENCH_t.json", self.HISTORY
        )
        assert entry.delta_pct == pytest.approx(0.5)
        assert not entry.regressed


# -- CLI against a real throwaway git repo --------------------------------


def _run_git(*args, cwd):
    subprocess.run(
        ["git", *args],
        cwd=str(cwd),
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture
def bench_repo(tmp_path):
    """A git repo with one committed BENCH baseline at 100 refs/s."""
    _run_git("init", "-q", cwd=tmp_path)
    baseline = {
        "workload": "mst, scale=0.5",
        "refs_per_sec": {"filtered": 100.0},
        "filtered_speedup": 5.0,
        "elapsed_s": 60,
    }
    bench = tmp_path / "BENCH_throughput.json"
    bench.write_text(json.dumps(baseline), encoding="utf-8")
    _run_git("add", ".", cwd=tmp_path)
    _run_git("commit", "-q", "-m", "baseline", cwd=tmp_path)
    return tmp_path


class TestCli:
    def test_unchanged_tree_passes_check(self, bench_repo, capsys):
        assert main([str(bench_repo), "--check"]) == 0
        assert "**OK**" in capsys.readouterr().out

    def test_synthetic_regression_fails_check(self, bench_repo, capsys):
        degraded = {
            "workload": "mst, scale=0.5",
            "refs_per_sec": {"filtered": 79.0},  # -21% vs committed 100
            "filtered_speedup": 5.0,
            "elapsed_s": 60,
        }
        (bench_repo / "BENCH_throughput.json").write_text(
            json.dumps(degraded), encoding="utf-8"
        )
        assert main([str(bench_repo), "--check"]) == 1
        out = capsys.readouterr().out
        assert "**REGRESSED**" in out
        assert "refs_per_sec.filtered" in out

    def test_without_check_regression_only_reports(self, bench_repo):
        (bench_repo / "BENCH_throughput.json").write_text(
            json.dumps({"workload": "mst, scale=0.5", "refs_per_sec": {"filtered": 1.0}}),
            encoding="utf-8",
        )
        assert main([str(bench_repo)]) == 0

    def test_threshold_is_configurable(self, bench_repo):
        degraded = {
            "workload": "mst, scale=0.5",
            "refs_per_sec": {"filtered": 95.0},  # -5%
        }
        (bench_repo / "BENCH_throughput.json").write_text(
            json.dumps(degraded), encoding="utf-8"
        )
        assert main([str(bench_repo), "--check"]) == 0
        assert main([str(bench_repo), "--check", "--threshold", "0.02"]) == 1

    def test_measured_overlay_matches_by_basename(self, bench_repo, tmp_path):
        fresh = tmp_path / "fresh" / "BENCH_throughput.json"
        fresh.parent.mkdir()
        fresh.write_text(
            json.dumps(
                {"workload": "mst, scale=0.5", "refs_per_sec": {"filtered": 70.0}}
            ),
            encoding="utf-8",
        )
        assert (
            main([str(bench_repo), "--check", "--measured", str(fresh)]) == 1
        )

    def test_measured_at_other_scale_never_gates(self, bench_repo, tmp_path):
        # CI measures at a smaller scale than the committed baseline:
        # contexts differ, so even a huge drop is report-only.
        fresh = tmp_path / "BENCH_throughput.json"
        fresh.write_text(
            json.dumps(
                {"workload": "mst, scale=0.2", "refs_per_sec": {"filtered": 1.0}}
            ),
            encoding="utf-8",
        )
        assert (
            main([str(bench_repo), "--check", "--measured", str(fresh)]) == 0
        )

    def test_writes_markdown_and_json_reports(self, bench_repo, tmp_path):
        md = tmp_path / "trajectory.md"
        js = tmp_path / "trajectory.json"
        assert (
            main(
                [
                    str(bench_repo),
                    "--markdown",
                    str(md),
                    "--json",
                    str(js),
                ]
            )
            == 0
        )
        assert "Performance trajectory" in md.read_text(encoding="utf-8")
        report = json.loads(js.read_text(encoding="utf-8"))
        assert report["ok"] is True
        assert report["gated_metrics"] == 2
        assert report["compared_metrics"] == 3

    def test_no_baselines_is_a_pass(self, tmp_path, capsys):
        assert main([str(tmp_path), "--check"]) == 0
        assert "no BENCH_" in capsys.readouterr().err


class TestReportAssembly:
    def test_find_baselines_checks_benchmarks_subdir(self, tmp_path):
        (tmp_path / "BENCH_a.json").write_text("{}", encoding="utf-8")
        sub = tmp_path / "benchmarks"
        sub.mkdir()
        (sub / "BENCH_b.json").write_text("{}", encoding="utf-8")
        names = [p.name for p in find_baselines(tmp_path)]
        assert names == ["BENCH_a.json", "BENCH_b.json"]
        # Pointing straight at benchmarks/ must not double-count.
        assert [p.name for p in find_baselines(sub)] == ["BENCH_b.json"]

    def test_markdown_marks_gate_columns(self, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(
            json.dumps({"workload": "w", "refs_per_sec": {"x": 1.0}, "n": 2}),
            encoding="utf-8",
        )
        report = build_report([bench])  # no git history here
        text = render_markdown(report)
        assert "no baseline" in text
        assert "info" in text
