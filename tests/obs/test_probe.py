"""The SimProbe attached to real simulator components."""

import pytest

from repro.caches.hierarchy import SingleCoreHierarchy
from repro.core.controller import MigrationController
from repro.multicore.chip import ChipConfig, MultiCoreChip
from repro.obs import events as ev
from repro.obs.probe import SimProbe
from repro.traces.synthetic import HalfRandom, behavior_trace


def _trace(count, num_lines=20_000, burst=5_000, seed=11):
    """A working set (~1.3 MB) larger than one 512-KB L2 but smaller
    than four — the configuration migration is designed to exploit."""
    return behavior_trace(HalfRandom(num_lines, burst=burst, seed=seed), count)


@pytest.fixture(scope="module")
def chip_probe():
    probe = SimProbe(name="test", sample_interval=500)
    chip = MultiCoreChip(ChipConfig(), probe=probe)
    chip.run(_trace(100_000))
    return chip, probe


class TestChipInstrumentation:
    def test_clock_tracks_references(self, chip_probe):
        chip, probe = chip_probe
        assert probe.now == chip.stats.accesses == 100_000

    def test_migration_events_match_chip_stats(self, chip_probe):
        chip, probe = chip_probe
        commits = probe.log.of_kind(ev.MIGRATION_COMMIT)
        assert chip.stats.migrations > 0
        assert len(commits) == chip.stats.migrations
        assert probe.registry.counter("migrations").value == chip.stats.migrations
        for event in commits:
            assert event.args["from_core"] != event.args["to_core"]
            assert event.args["penalty_cycles"] > 0

    def test_at_least_three_distinct_event_kinds(self, chip_probe):
        # The acceptance bar for any instrumented run worth tracing.
        _, probe = chip_probe
        assert len(probe.log.kinds()) >= 3

    def test_filter_flips_and_rollovers_recorded(self, chip_probe):
        _, probe = chip_probe
        kinds = probe.log.kinds()
        assert kinds.get(ev.FILTER_FLIP, 0) > 0
        assert kinds.get(ev.WINDOW_ROLLOVER, 0) > 0
        flip = probe.log.of_kind(ev.FILTER_FLIP)[0]
        assert flip.args["sign"] in (-1, 0, 1)
        assert flip.args["filter"]

    def test_series_sampled_on_interval(self, chip_probe):
        _, probe = chip_probe
        samples = probe.registry.series("chip.active_core").samples
        assert samples
        stride = probe.registry.series("chip.active_core").stride
        assert all(t % 500 == 0 for t, _ in samples) or stride > 1

    def test_report_snapshot(self, chip_probe):
        chip, probe = chip_probe
        report = probe.report(workload="synthetic", run="chip")
        assert report.meta["references"] == 100_000
        assert report.meta["num_cores"] == chip.config.num_cores
        assert report.meta["run"] == "chip"
        assert report.meta["chip_stats"]["migrations"] == chip.stats.migrations
        assert report.metrics["migrations"]["value"] == chip.stats.migrations
        assert len(report.events) == len(probe.log.events)


class TestUninstrumentedPaths:
    def test_chip_runs_identically_without_probe(self):
        plain = MultiCoreChip(ChipConfig())
        plain.run(_trace(20_000))
        probed = MultiCoreChip(ChipConfig(), probe=SimProbe())
        probed.run(_trace(20_000))
        assert plain.stats.to_dict() == probed.stats.to_dict()

    def test_hierarchy_accepts_probe(self):
        probe = SimProbe(sample_interval=100)
        hierarchy = SingleCoreHierarchy(probe=probe)
        for access in _trace(5_000):
            hierarchy.access(access)
        assert probe.now == 5_000
        assert probe.registry.series("baseline.l2_miss_rate").samples

    def test_controller_standalone_advances_clock(self):
        probe = SimProbe()
        controller = MigrationController()
        controller.attach_probe(probe)
        for access in _trace(30_000):
            controller.observe(access.address // 64)
        assert probe.now > 0
        assert probe.registry.counter("window.rollovers").value > 0


class TestStormDetection:
    def test_clustered_evictions_fire_one_storm(self):
        probe = SimProbe(storm_window=100, storm_threshold=4)
        probe.on_access(10)
        for i in range(4):
            probe.on_l2_eviction(core=0, line=i, dirty=False)
        storms = probe.log.of_kind(ev.L2_EVICTION_STORM)
        assert len(storms) == 1  # burst collapses to one event
        assert storms[0].args["evictions"] == 4
        assert probe.registry.counter("l2.evictions").value == 4

    def test_spread_out_evictions_do_not_fire(self):
        probe = SimProbe(storm_window=10, storm_threshold=3)
        for t in (0, 100, 200, 300):
            probe.on_access(t)
            probe.on_l2_eviction(core=0, line=1, dirty=True)
        assert not probe.log.of_kind(ev.L2_EVICTION_STORM)

    def test_rejects_bad_sample_interval(self):
        with pytest.raises(ValueError):
            SimProbe(sample_interval=0)
