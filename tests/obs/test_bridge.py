"""The scheduler -> obs bridge: event conversion, sink, trace merging."""

import json

from repro.obs.bridge import (
    ObsRunlogSink,
    bridge_job_events,
    merge_obs_dir,
    runtime_trace_events,
    sim_event_from_job_event,
)
from repro.obs.export import load_events_jsonl, save_report
from repro.obs.probe import ObsReport
from repro.runtime.events import JobEvent


def _job_event(event, label="table2/mst", ts=100.0, **kwargs):
    return JobEvent(
        event=event, label=label, job_hash="abc123", timestamp=ts, **kwargs
    )


class TestConversion:
    def test_kind_prefix_and_microsecond_clock(self):
        event = _job_event("finished", ts=101.5, duration=1.25, references=10)
        sim = sim_event_from_job_event(event, t0=100.0, seq=3)
        assert sim.kind == "runtime.finished"
        assert sim.t == 1_500_000
        assert sim.seq == 3
        assert sim.args["label"] == "table2/mst"
        assert sim.args["duration"] == 1.25
        assert sim.args["references"] == 10

    def test_clock_never_goes_negative(self):
        sim = sim_event_from_job_event(_job_event("queued", ts=99.0), t0=100.0)
        assert sim.t == 0

    def test_bridge_preserves_order_via_seq(self):
        events = [
            _job_event("queued", ts=100.0),
            _job_event("started", ts=100.0),  # same timestamp!
            _job_event("finished", ts=100.2),
        ]
        bridged = bridge_job_events(events)
        assert [e.seq for e in bridged] == [1, 2, 3]
        assert [e.kind for e in bridged] == [
            "runtime.queued",
            "runtime.started",
            "runtime.finished",
        ]


class TestRunlogSink:
    def test_emits_are_durable_and_ordered(self, tmp_path):
        path = tmp_path / "runtime.jsonl"
        sink = ObsRunlogSink(path)
        sink.emit(_job_event("queued"))
        sink.emit(_job_event("started"))
        # Durable before close: every emit is flushed.
        assert len(path.read_text().splitlines()) == 2
        sink.close()
        sink.emit(_job_event("finished"))  # lazy re-open
        events = load_events_jsonl(path)
        assert [e.kind for e in events] == [
            "runtime.queued",
            "runtime.started",
            "runtime.finished",
        ]
        assert [e.seq for e in events] == [1, 2, 3]
        sink.close()


class TestRuntimeTraceEvents:
    def test_started_finished_becomes_span_per_job(self):
        bridged = bridge_job_events(
            [
                _job_event("started", label="a", ts=100.0),
                _job_event("started", label="b", ts=100.1),
                _job_event("finished", label="a", ts=100.4),
                _job_event("failed", label="b", ts=100.5, error="boom"),
            ]
        )
        events = runtime_trace_events(bridged)
        spans = [e for e in events if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"finished", "failed"}
        # One thread row per job label; spans live on their job's row.
        tids = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["name"] == "thread_name"
        }
        by_name = {s["name"]: s for s in spans}
        assert by_name["finished"]["tid"] == tids["a"]
        assert by_name["failed"]["tid"] == tids["b"]

    def test_non_span_events_become_instants(self):
        bridged = bridge_job_events([_job_event("queued"), _job_event("cache-hit")])
        events = runtime_trace_events(bridged)
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["queued", "cache-hit"]


class TestMergeObsDir:
    def test_merges_runlog_and_job_traces(self, tmp_path):
        sink = ObsRunlogSink(tmp_path / "runtime.jsonl")
        sink.emit(_job_event("started", ts=100.0))
        sink.emit(_job_event("finished", ts=100.1))
        sink.close()
        save_report(
            ObsReport(meta={"workload": "mst", "references": 10}),
            tmp_path,
            "table2-mst",
        )
        document = merge_obs_dir(tmp_path)
        cats = {e.get("cat") for e in document["traceEvents"]} - {None}
        assert "runtime" in cats
        pids = {e["pid"] for e in document["traceEvents"]}
        assert len(pids) == 2  # scheduler + one job process

    def test_previous_merge_output_is_not_an_input(self, tmp_path):
        save_report(ObsReport(meta={"references": 1}), tmp_path, "job")
        first = merge_obs_dir(tmp_path)
        (tmp_path / "trace.json").write_text(json.dumps(first))
        again = merge_obs_dir(tmp_path)
        assert len(again["traceEvents"]) == len(first["traceEvents"])

    def test_torn_trace_file_is_skipped(self, tmp_path):
        save_report(ObsReport(meta={"references": 1}), tmp_path, "good")
        (tmp_path / "torn.trace.json").write_text('{"traceEvents": [')
        document = merge_obs_dir(tmp_path)
        assert document["traceEvents"]
