"""SimEvent round-trips and the bounded EventLog."""

import pytest

from repro.obs import events as ev
from repro.obs.events import EventLog, SimEvent


class TestSimEvent:
    def test_round_trips_through_dict(self):
        event = SimEvent(
            kind=ev.MIGRATION_COMMIT, t=42, seq=7, args={"to_core": 3}
        )
        assert SimEvent.from_dict(event.to_dict()) == event

    def test_from_dict_tolerates_missing_optionals(self):
        event = SimEvent.from_dict({"kind": "filter.flip", "t": 1})
        assert event.seq == 0
        assert event.args == {}


class TestEventLog:
    def test_emit_assigns_increasing_seq(self):
        log = EventLog()
        log.emit(ev.FILTER_FLIP, 10, filter="F_X")
        log.emit(ev.FILTER_FLIP, 10, filter="F_Y")
        seqs = [e.seq for e in log.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 2

    def test_cap_counts_drops_instead_of_growing(self):
        log = EventLog(max_events=3)
        for t in range(10):
            log.emit(ev.WINDOW_ROLLOVER, t)
        assert len(log) == 3
        assert log.dropped == 7

    def test_kinds_census_and_filter(self):
        log = EventLog()
        log.emit(ev.MIGRATION_START, 1, from_core=0, to_core=1)
        log.emit(ev.MIGRATION_COMMIT, 1, from_core=0, to_core=1)
        log.emit(ev.MIGRATION_START, 5, from_core=1, to_core=2)
        assert log.kinds() == {
            ev.MIGRATION_START: 2,
            ev.MIGRATION_COMMIT: 1,
        }
        assert [e.t for e in log.of_kind(ev.MIGRATION_START)] == [1, 5]

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)
