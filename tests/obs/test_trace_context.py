"""Trace-context propagation: deterministic span derivation, the
root/env mirror that carries a sweep's identity into worker processes,
thread-local activation, and the phase-span buffer."""

import json
import os
import threading

import pytest

from repro.obs import trace_context as tc


class TestDerivation:
    def test_mint_root_seeded_is_deterministic(self):
        a = tc.mint_root(seed="sweep-42")
        b = tc.mint_root(seed="sweep-42")
        assert a == b
        assert a.trace_id != tc.mint_root(seed="sweep-43").trace_id

    def test_mint_root_unseeded_is_unique(self):
        assert tc.mint_root().trace_id != tc.mint_root().trace_id

    def test_span_for_job_agrees_across_callers(self):
        # The whole cross-process correlation story rests on this:
        # broker, scheduler, and worker each derive the same span id
        # from (trace_id, job_hash) without talking to each other.
        root = tc.mint_root(seed="s")
        assert tc.span_for_job(root.trace_id, "abc") == tc.span_for_job(
            root.trace_id, "abc"
        )
        assert tc.span_for_job(root.trace_id, "abc") != tc.span_for_job(
            root.trace_id, "abd"
        )

    def test_job_context_parents_to_root(self):
        root = tc.mint_root(seed="s")
        job = tc.job_context(root, "deadbeef")
        assert job.trace_id == root.trace_id
        assert job.parent_span_id == root.span_id
        assert job.span_id == tc.span_for_job(root.trace_id, "deadbeef")

    def test_to_dict_round_trip(self):
        ctx = tc.job_context(tc.mint_root(seed="s"), "h")
        assert tc.TraceContext.from_dict(ctx.to_dict()) == ctx


class TestRootPropagation:
    def test_set_root_mirrors_env(self):
        root = tc.mint_root(seed="s")
        tc.set_root(root)
        raw = os.environ[tc.TRACE_ENV]
        assert tc.TraceContext.from_dict(json.loads(raw)) == root

    def test_env_inherited_root(self):
        # Simulate a freshly spawned worker: no module global, but the
        # parent's env var is present.
        root = tc.mint_root(seed="s")
        tc.set_root(root)
        raw = os.environ[tc.TRACE_ENV]
        tc.reset()
        os.environ[tc.TRACE_ENV] = raw
        assert tc.current() == root

    def test_corrupt_env_is_ignored(self):
        os.environ[tc.TRACE_ENV] = "{not json"
        assert tc.current() is None

    def test_ensure_current_mints_once(self):
        first = tc.ensure_current()
        assert tc.ensure_current() == first
        assert tc.current() == first


class TestActivation:
    def test_activate_restore(self):
        root = tc.mint_root(seed="s")
        tc.set_root(root)
        job = tc.job_context(root, "h")
        prev = tc.activate(job)
        assert tc.current() == job
        tc.restore(prev)
        assert tc.current() == root

    def test_using_context_manager(self):
        job = tc.job_context(tc.mint_root(seed="s"), "h")
        with tc.using(job):
            assert tc.current() == job
        assert tc.current() is None

    def test_activation_is_thread_local(self):
        job = tc.job_context(tc.mint_root(seed="s"), "h")
        seen = {}

        def other():
            seen["ctx"] = tc.current()

        with tc.using(job):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen["ctx"] is None  # no root installed, no bleed-through

    def test_activate_env_installs_root(self):
        job = tc.job_context(tc.mint_root(seed="s"), "h")
        tc.activate(job, env=True)
        assert os.environ.get(tc.TRACE_ENV)
        # A grandchild process would inherit the *job* context as root.
        assert tc.TraceContext.from_dict(
            json.loads(os.environ[tc.TRACE_ENV])
        ) == job


class TestPhases:
    def test_phase_parents_to_active_context(self):
        job = tc.job_context(tc.mint_root(seed="s"), "h")
        with tc.using(job):
            with tc.phase("l1filter.build", nodes=7):
                pass
        (record,) = tc.drain_phases()
        assert record["name"] == "l1filter.build"
        assert record["trace_id"] == job.trace_id
        assert record["parent_span_id"] == job.span_id
        assert record["span_id"] != job.span_id
        assert record["dur_us"] >= 1
        assert record["args"] == {"nodes": 7}

    def test_phases_without_context_still_record(self):
        with tc.phase("orphan"):
            pass
        (record,) = tc.drain_phases()
        assert record["name"] == "orphan"

    def test_phase_ids_unique_per_invocation(self):
        job = tc.job_context(tc.mint_root(seed="s"), "h")
        with tc.using(job):
            with tc.phase("p"):
                pass
            with tc.phase("p"):
                pass
        first, second = tc.drain_phases()
        assert first["span_id"] != second["span_id"]

    def test_buffer_cap_counts_drops(self, monkeypatch):
        monkeypatch.setattr(tc, "MAX_PHASES", 3)
        for _ in range(5):
            with tc.phase("p"):
                pass
        assert len(tc.drain_phases()) == 3
        assert tc.phases_dropped() == 2

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "phases.jsonl"
        with tc.using(tc.job_context(tc.mint_root(seed="s"), "h")):
            with tc.phase("a"):
                pass
            with tc.phase("b"):
                pass
        assert tc.write_phases(path) == 2
        assert tc.drain_phases() == []  # drained by the write
        records = tc.load_phases(path)
        assert [r["name"] for r in records] == ["a", "b"]

    def test_write_appends_across_drains(self, tmp_path):
        path = tmp_path / "phases.jsonl"
        with tc.phase("a"):
            pass
        tc.write_phases(path)
        with tc.phase("b"):
            pass
        tc.write_phases(path)
        assert [r["name"] for r in tc.load_phases(path)] == ["a", "b"]

    def test_load_skips_torn_lines(self, tmp_path):
        path = tmp_path / "phases.jsonl"
        good = {"name": "ok", "span_id": "s", "start_us": 1, "dur_us": 1}
        path.write_text(
            json.dumps(good) + "\n" + '{"name": "torn', encoding="utf-8"
        )
        records = tc.load_phases(path)
        assert [r["name"] for r in records] == ["ok"]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert tc.load_phases(tmp_path / "nope.jsonl") == []


def test_reset_forgets_everything():
    tc.set_root(tc.mint_root(seed="s"))
    with tc.phase("p"):
        pass
    tc.reset()
    assert tc.current() is None
    assert tc.drain_phases() == []
    assert os.environ.get(tc.TRACE_ENV) is None
