"""Exporters: span reconstruction, Chrome traces, artifacts, summaries."""

import json

from repro.obs import events as ev
from repro.obs.events import SimEvent
from repro.obs.export import (
    chrome_trace,
    execution_spans,
    load_events_jsonl,
    merge_trace_documents,
    safe_stem,
    save_report,
    summarize_reports,
    write_events_jsonl,
)
from repro.obs.probe import ObsReport


def _commit(t, frm, to, seq=0):
    return SimEvent(
        kind=ev.MIGRATION_COMMIT,
        t=t,
        seq=seq,
        args={"from_core": frm, "to_core": to},
    )


def _report(events=(), meta=None, metrics=None):
    return ObsReport(
        meta={"workload": "w", "references": 100, "num_cores": 4, **(meta or {})},
        metrics=metrics or {},
        events=list(events),
    )


class TestExecutionSpans:
    def test_no_migrations_is_one_span(self):
        assert execution_spans([], total_refs=50) == [(0, 0, 50)]

    def test_spans_partition_the_run(self):
        events = [_commit(10, 0, 2), _commit(30, 2, 1)]
        spans = execution_spans(events, total_refs=50)
        assert spans == [(0, 0, 10), (2, 10, 30), (1, 30, 50)]
        # Partition: contiguous, covers [0, total_refs].
        assert spans[0][1] == 0 and spans[-1][2] == 50
        assert all(a[2] == b[1] for a, b in zip(spans, spans[1:]))

    def test_non_commit_events_are_ignored(self):
        events = [
            SimEvent(kind=ev.FILTER_FLIP, t=5),
            _commit(10, 0, 3),
        ]
        assert execution_spans(events, total_refs=20) == [(0, 0, 10), (3, 10, 20)]


class TestChromeTrace:
    def test_document_loads_and_names_cores(self):
        document = chrome_trace(_report([_commit(10, 0, 1)]))
        document = json.loads(json.dumps(document))  # JSON-clean
        events = document["traceEvents"]
        thread_names = [
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        ]
        assert [f"core {i}" for i in range(4)] == thread_names[:4]
        spans = [e for e in events if e["ph"] == "X"]
        assert {(s["tid"], s["ts"], s["dur"]) for s in spans} == {
            (0, 0, 10),
            (1, 10, 90),
        }

    def test_instants_and_counters_exported(self):
        report = _report(
            [SimEvent(kind=ev.FILTER_FLIP, t=7, args={"filter": "F_X"})],
            metrics={
                "bus.bytes_per_ref": {
                    "type": "series",
                    "samples": [[10, 1.5], [20, 2.5]],
                },
                "migrations": {"type": "counter", "value": 3},
            },
        )
        events = chrome_trace(report)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == ev.FILTER_FLIP
        counters = [e for e in events if e["ph"] == "C"]
        assert [(c["ts"], c["args"]["value"]) for c in counters] == [
            (10, 1.5),
            (20, 2.5),
        ]

    def test_label_includes_run_meta(self):
        document = chrome_trace(_report(meta={"run": "chip"}))
        process = document["traceEvents"][0]
        assert process["args"]["name"] == "w/chip"

    def test_merge_remaps_pids_disjointly(self):
        d1 = chrome_trace(_report(), pid=1)
        d2 = chrome_trace(_report(), pid=1)
        merged = merge_trace_documents([d1, d2])
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert len(pids) == 2

    def test_merge_orders_metadata_first_then_sorted_ts(self):
        # Two run logs whose events interleave non-monotonically once
        # concatenated: the merged document must put every metadata
        # event first and every timed event in ts order, or strict
        # Perfetto importers reject it.
        d1 = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "args": {}},
                {"name": "late", "ph": "X", "pid": 1, "ts": 900, "dur": 5},
                {"name": "early", "ph": "X", "pid": 1, "ts": 10, "dur": 5},
            ]
        }
        d2 = {
            "traceEvents": [
                {"name": "mid", "ph": "i", "s": "t", "pid": 1, "ts": 400},
                {"name": "process_name", "ph": "M", "pid": 1, "args": {}},
            ]
        }
        merged = merge_trace_documents([d1, d2])["traceEvents"]
        phs = [e["ph"] for e in merged]
        assert phs == sorted(phs, key=lambda p: p != "M")  # M block first
        timed = [e["ts"] for e in merged if e["ph"] != "M"]
        assert timed == sorted(timed)
        assert [e["name"] for e in merged if e["ph"] != "M"] == [
            "early",
            "mid",
            "late",
        ]

    def test_merge_clamps_negative_ts_and_keeps_stable_order(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "ts": -50, "dur": 1},
                {"name": "b", "ph": "X", "pid": 1, "ts": -10, "dur": 1},
                {"name": "c", "ph": "i", "s": "t", "pid": 1, "ts": 0},
            ]
        }
        merged = merge_trace_documents([doc])["traceEvents"]
        assert all(e["ts"] >= 0 for e in merged)
        # All three collapse to ts=0; the stable sort keeps input order.
        assert [e["name"] for e in merged] == ["a", "b", "c"]


class TestArtifacts:
    def test_events_jsonl_round_trip(self, tmp_path):
        events = [
            _commit(5, 0, 1, seq=1),
            SimEvent(kind=ev.WINDOW_ROLLOVER, t=9, seq=2, args={"mechanism": "R_X"}),
        ]
        path = write_events_jsonl(events, tmp_path / "e.jsonl")
        assert load_events_jsonl(path) == events

    def test_save_report_writes_artifact_triple(self, tmp_path):
        paths = save_report(_report([_commit(10, 0, 1)]), tmp_path, "t2/mst")
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "t2-mst.events.jsonl",
            "t2-mst.metrics.json",
            "t2-mst.trace.json",
        ]
        metrics = json.loads(paths["metrics"].read_text())
        assert metrics["meta"]["workload"] == "w"
        assert metrics["event_kinds"] == {ev.MIGRATION_COMMIT: 1}
        trace = json.loads(paths["trace"].read_text())
        assert trace["traceEvents"]

    def test_safe_stem(self):
        assert safe_stem("table2/181.mcf") == "table2-181.mcf"
        assert safe_stem("///") == "obs"


class TestSummaries:
    def test_summarize_renders_counts_and_census(self):
        report = _report(
            [SimEvent(kind=ev.FILTER_FLIP, t=1), _commit(2, 0, 1)],
            meta={"run": "chip"},
            metrics={
                "migrations": {"type": "counter", "value": 1},
                "filter.flips": {"type": "counter", "value": 1},
            },
        )
        text = summarize_reports([report])
        assert "w/chip" in text
        assert ev.FILTER_FLIP in text
        assert ev.MIGRATION_COMMIT in text

    def test_dropped_events_are_visible(self):
        report = _report()
        report.dropped_events = 12
        assert "+12 dropped" in summarize_reports([report])
