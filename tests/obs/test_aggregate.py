"""Sweep aggregation: run-log loading in both wire shapes, job-span
reconstruction across process-local logs, the sweep summary's linkage
check and stage histograms, and the merged scheduler trace."""

import json

from repro.obs import trace_context as tc
from repro.obs.aggregate import (
    SUMMARY_SCHEMA,
    SweepArtifacts,
    build_job_spans,
    build_sweep_trace,
    collect_artifacts,
    load_runlog,
    resolve_inputs,
    scheduler_trace_events,
    sweep_summary,
    write_aggregate,
)
from repro.obs.events import SimEvent
from repro.runtime.events import JobEvent, event_record

ROOT = tc.mint_root(seed="aggregate-tests")


def _job_ctx(job_hash):
    return tc.job_context(ROOT, job_hash)


def _ev(kind, wall_s, seq, job_hash, label="mst", **extra):
    """One bridged scheduler event the way ObsRunlogSink writes it."""
    ctx = _job_ctx(job_hash)
    args = {
        "label": label,
        "job_hash": job_hash,
        "attempt": 1,
        "wall_us": int(wall_s * 1_000_000),
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "parent_span_id": ctx.parent_span_id,
    }
    args.update(extra)
    return SimEvent(kind=f"runtime.{kind}", t=int(wall_s * 1_000_000), seq=seq, args=args)


def _write_jsonl(path, events):
    path.write_text(
        "".join(json.dumps(e.to_dict(), sort_keys=True) + "\n" for e in events),
        encoding="utf-8",
    )
    return path


def _phase(job_hash, name="l1filter.build", start_s=100.5, dur_us=2000):
    ctx = _job_ctx(job_hash)
    return {
        "name": name,
        "trace_id": ctx.trace_id,
        "span_id": tc._derive(ctx.span_id, "phase", name, "1"),
        "parent_span_id": ctx.span_id,
        "start_us": int(start_s * 1_000_000),
        "dur_us": dur_us,
        "pid": 4242,
    }


class TestLoadRunlog:
    def test_obs_wire_shape(self, tmp_path):
        path = _write_jsonl(
            tmp_path / "runtime.jsonl",
            [_ev("queued", 100.0, 1, "aaa"), _ev("finished", 101.0, 2, "aaa")],
        )
        events = load_runlog(path)
        assert [e.kind for e in events] == ["runtime.queued", "runtime.finished"]
        assert events[0].args["wall_us"] == 100_000_000

    def test_raw_jobevent_shape_is_bridged(self, tmp_path):
        ctx = _job_ctx("bbb")
        raw = [
            JobEvent(
                event="queued",
                label="bh",
                job_hash="bbb",
                timestamp=50.0,
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_span_id=ctx.parent_span_id,
            ),
            JobEvent(
                event="finished",
                label="bh",
                job_hash="bbb",
                timestamp=51.0,
                duration=1.0,
                references=1000,
            ),
        ]
        path = tmp_path / "service-runtime.jsonl"
        path.write_text(
            "".join(
                json.dumps(event_record(e), sort_keys=True) + "\n" for e in raw
            ),
            encoding="utf-8",
        )
        events = load_runlog(path)
        assert [e.kind for e in events] == ["runtime.queued", "runtime.finished"]
        assert events[0].args["span_id"] == ctx.span_id
        assert events[0].args["wall_us"] == 50_000_000
        assert events[1].args["references"] == 1000

    def test_torn_and_alien_lines_are_skipped(self, tmp_path):
        path = tmp_path / "runtime.jsonl"
        good = json.dumps(_ev("queued", 1.0, 1, "ccc").to_dict())
        path.write_text(
            good + "\n" + '{"kind": "torn' + "\n" + '"scalar"\n', encoding="utf-8"
        )
        assert len(load_runlog(path)) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_runlog(tmp_path / "nope.jsonl") == []


class TestBuildJobSpans:
    def test_lifecycle_reconstruction(self):
        events = [
            _ev("queued", 100.0, 1, "aaa"),
            _ev("started", 100.5, 2, "aaa"),
            _ev("finished", 102.5, 3, "aaa", references=5000),
        ]
        (span,) = build_job_spans(events)
        data = span.to_dict()
        assert data["status"] == "finished"
        assert data["queue_wait_us"] == 500_000
        assert data["execute_us"] == 2_000_000
        assert data["references"] == 5000
        assert data["span_id"] == tc.span_for_job(ROOT.trace_id, "aaa")
        assert data["parent_span_id"] == ROOT.span_id

    def test_retry_counts_and_attempts(self):
        events = [
            _ev("queued", 10.0, 1, "aaa"),
            _ev("started", 11.0, 2, "aaa"),
            _ev("retried", 12.0, 3, "aaa"),
            _ev("started", 13.0, 4, "aaa", attempt=2),
            _ev("finished", 14.0, 5, "aaa", attempt=2),
        ]
        (span,) = build_job_spans(events)
        assert span.retries == 1
        assert span.attempts == 2
        assert span.status == "finished"
        # First `started` wins: the span covers the whole job including
        # the crashed attempt.
        assert span.started_us == 11_000_000

    def test_cache_hit_is_terminal(self):
        (span,) = build_job_spans([_ev("cache-hit", 5.0, 1, "aaa")])
        assert span.cache_hit
        assert span.status == "cache-hit"
        assert span.ended_us == 5_000_000

    def test_cross_runlog_ordering_uses_wall_clock(self):
        # Two processes wrote independent logs: seq restarts at 1 in
        # each, so ordering must come from the shared wall clock.
        service_log = [_ev("queued", 100.0, 7, "aaa")]
        scheduler_log = [
            _ev("started", 101.0, 1, "aaa"),
            _ev("finished", 103.0, 2, "aaa"),
        ]
        (span,) = build_job_spans(scheduler_log + service_log)
        assert span.to_dict()["queue_wait_us"] == 1_000_000

    def test_one_span_per_job_hash(self):
        events = [
            _ev("queued", 1.0, 1, "aaa"),
            _ev("queued", 1.1, 2, "bbb", label="bh"),
            _ev("finished", 2.0, 3, "aaa"),
            _ev("finished", 2.1, 4, "bbb", label="bh"),
        ]
        spans = build_job_spans(events)
        assert [s.label for s in spans] == ["mst", "bh"]


class TestSweepSummary:
    def _artifacts(self):
        events = [
            _ev("queued", 100.0, 1, "aaa"),
            _ev("started", 100.2, 2, "aaa"),
            _ev("retried", 101.0, 3, "aaa"),
            _ev("finished", 102.0, 4, "aaa", references=500),
            _ev("queued", 100.1, 5, "bbb", label="bh"),
            _ev("cache-hit", 100.3, 6, "bbb", label="bh"),
        ]
        return SweepArtifacts(
            runtime_events=events, phases=[_phase("aaa", start_s=100.5)]
        )

    def test_linkage_counters_and_stages(self):
        summary = sweep_summary(self._artifacts())
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["traces"] == {
            ROOT.trace_id: {"root_span_id": ROOT.span_id}
        }
        jobs = summary["jobs"]
        assert jobs["jobs"] == 2
        assert jobs["finished"] == 1
        assert jobs["cache_hits"] == 1
        assert jobs["crash_retries"] == 1
        assert jobs["fault_recoveries"] == 1  # retried AND finished
        assert summary["unlinked_spans"] == []
        stages = summary["stages"]
        assert stages["queue_wait_us"]["count"] == 1
        assert stages["execute_us"]["count"] == 1
        assert stages["phase.l1filter.build_us"]["count"] == 1

    def test_unknown_parent_is_reported_unlinked(self):
        artifacts = self._artifacts()
        stray = _phase("aaa", name="stray")
        stray["parent_span_id"] = "feedfacefeedface"
        artifacts.phases.append(stray)
        summary = sweep_summary(artifacts)
        assert summary["unlinked_spans"] == [stray["span_id"]]

    def test_service_counters_merged(self):
        artifacts = self._artifacts()
        artifacts.service_metrics.append(
            {
                "service.cache_hits": {"type": "counter", "value": 3},
                "service.tenant.alice": {"type": "counter", "value": 3},
                "service.latency_us": {"type": "histogram", "count": 1},
            }
        )
        summary = sweep_summary(artifacts)
        assert summary["service"] == {"service.cache_hits": 3}


class TestSchedulerTrace:
    def test_root_span_and_wall_alignment(self):
        artifacts = SweepArtifacts(
            runtime_events=[
                _ev("queued", 100.0, 1, "aaa"),
                _ev("started", 100.5, 2, "aaa"),
                _ev("finished", 102.0, 3, "aaa"),
            ]
        )
        events = scheduler_trace_events(artifacts)
        by_name = {e["name"]: e for e in events if e.get("ph") == "X"}
        sweep = by_name["sweep"]
        assert sweep["ts"] == 0
        assert sweep["args"]["span_id"] == ROOT.span_id
        assert by_name["queue-wait"]["ts"] == 0  # earliest wall == t0
        assert by_name["queue-wait"]["dur"] == 500_000
        assert by_name["finished"]["ts"] == 500_000
        assert by_name["finished"]["dur"] == 1_500_000

    def test_phase_lands_on_its_jobs_thread(self):
        artifacts = SweepArtifacts(
            runtime_events=[
                _ev("started", 100.0, 1, "aaa"),
                _ev("finished", 102.0, 2, "aaa"),
            ],
            phases=[_phase("aaa", start_s=100.5)],
        )
        events = scheduler_trace_events(artifacts)
        job_span = next(e for e in events if e["name"] == "finished")
        phase_span = next(e for e in events if e["name"] == "l1filter.build")
        assert phase_span["tid"] == job_span["tid"]
        assert not any(e["name"] == "(phases)" for e in events if e["ph"] == "M")

    def test_orphan_phase_gets_its_own_thread(self):
        stray = _phase("zzz")
        stray["parent_span_id"] = "feedfacefeedface"
        events = scheduler_trace_events(SweepArtifacts(phases=[stray]))
        names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert "(phases)" in names


class TestCollectAndWrite:
    def _populate(self, directory):
        directory.mkdir(parents=True, exist_ok=True)
        _write_jsonl(
            directory / "runtime.jsonl",
            [
                _ev("queued", 100.0, 1, "aaa"),
                _ev("started", 100.2, 2, "aaa"),
                _ev("finished", 101.0, 3, "aaa"),
            ],
        )
        (directory / "phases.jsonl").write_text(
            json.dumps(_phase("aaa"), sort_keys=True) + "\n", encoding="utf-8"
        )
        (directory / "service-metrics.json").write_text(
            json.dumps({"service.executed": {"type": "counter", "value": 1}}),
            encoding="utf-8",
        )

    def test_directory_collection(self, tmp_path):
        self._populate(tmp_path)
        artifacts = collect_artifacts([tmp_path])
        assert len(artifacts.runtime_events) == 3
        assert len(artifacts.phases) == 1
        assert artifacts.service_metrics

    def test_glob_and_file_inputs(self, tmp_path):
        self._populate(tmp_path / "a")
        self._populate(tmp_path / "b")
        artifacts = collect_artifacts([str(tmp_path / "*" / "runtime.jsonl")])
        assert len(artifacts.runtime_events) == 6

    def test_resolve_inputs_expands_globs_only(self, tmp_path):
        (tmp_path / "x.jsonl").touch()
        (tmp_path / "y.jsonl").touch()
        globbed = resolve_inputs([str(tmp_path / "*.jsonl")])
        assert [p.name for p in globbed] == ["x.jsonl", "y.jsonl"]
        plain = resolve_inputs(["no-glob-here.jsonl"])
        assert [str(p) for p in plain] == ["no-glob-here.jsonl"]

    def test_merged_outputs_never_feed_back(self, tmp_path):
        self._populate(tmp_path)
        write_aggregate(tmp_path)
        before = collect_artifacts([tmp_path])
        write_aggregate(tmp_path)  # second merge sees its own outputs
        after = collect_artifacts([tmp_path])
        assert len(after.runtime_events) == len(before.runtime_events)
        assert len(after.reports) == len(before.reports)

    def test_write_aggregate_artifacts(self, tmp_path):
        self._populate(tmp_path)
        paths = write_aggregate(tmp_path)
        trace = json.loads(paths["trace"].read_text(encoding="utf-8"))
        events = trace["traceEvents"]
        metadata_prefix = 0
        for event in events:
            if event["ph"] != "M":
                break
            metadata_prefix += 1
        assert metadata_prefix >= 1
        timed = [e.get("ts", 0) for e in events if e["ph"] != "M"]
        assert timed == sorted(timed)
        assert all(ts >= 0 for ts in timed)
        summary = json.loads(paths["summary"].read_text(encoding="utf-8"))
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["jobs"]["finished"] == 1
        assert summary["unlinked_spans"] == []
