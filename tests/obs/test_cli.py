"""``python -m repro.obs`` subcommands over an artifact directory."""

import json

import pytest

from repro.obs import events as ev
from repro.obs.bridge import ObsRunlogSink
from repro.obs.cli import load_reports, main
from repro.obs.events import SimEvent
from repro.obs.export import save_report
from repro.obs.probe import ObsReport
from repro.runtime.events import JobEvent


@pytest.fixture
def obs_dir(tmp_path):
    report = ObsReport(
        meta={
            "workload": "mst",
            "run": "chip",
            "references": 1000,
            "num_cores": 4,
            "chip_stats": {"accesses": 1000, "migrations": 2, "l2_misses": 30},
        },
        metrics={"migrations": {"type": "counter", "value": 2}},
        events=[
            SimEvent(
                kind=ev.MIGRATION_COMMIT,
                t=500,
                seq=1,
                args={"from_core": 0, "to_core": 1},
            )
        ],
    )
    save_report(report, tmp_path, "table2-mst-chip")
    sink = ObsRunlogSink(tmp_path / "runtime.jsonl")
    sink.emit(
        JobEvent(
            event="started",
            label="table2/mst",
            job_hash="h",
            timestamp=99.0,
        )
    )
    sink.emit(
        JobEvent(
            event="finished",
            label="table2/mst",
            job_hash="h",
            timestamp=100.0,
            duration=1.0,
        )
    )
    sink.close()
    return tmp_path


class TestLoadReports:
    def test_rebuilds_meta_metrics_events(self, obs_dir):
        reports = load_reports(obs_dir)
        assert len(reports) == 1
        report = reports[0]
        assert report.meta["workload"] == "mst"
        assert report.metrics["migrations"]["value"] == 2
        assert report.events[0].kind == ev.MIGRATION_COMMIT

    def test_corrupt_metrics_file_is_skipped(self, obs_dir):
        (obs_dir / "bad.metrics.json").write_text("{")
        assert len(load_reports(obs_dir)) == 1


class TestSummarize:
    def test_prints_rows_census_and_merged_counters(self, obs_dir, capsys):
        assert main(["summarize", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "mst/chip" in out
        assert ev.MIGRATION_COMMIT in out
        assert "chip counters" in out
        assert "scheduler events bridged: 2" in out

    def test_empty_directory_fails(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path)]) == 1
        assert "no obs artifacts" in capsys.readouterr().err

    def test_accepts_globs_and_files(self, obs_dir, capsys):
        # Satellite contract: summarize takes any mix of directories,
        # shell globs, and individual artifact files.
        assert (
            main(
                [
                    "summarize",
                    str(obs_dir / "*.metrics.json"),
                    str(obs_dir / "runtime.jsonl"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mst/chip" in out
        assert "scheduler events bridged: 2" in out

    def test_runlog_only_inputs_summarize_stages(self, obs_dir, capsys):
        assert main(["summarize", str(obs_dir / "runtime.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "scheduler events bridged: 2" in out


class TestExport:
    def test_writes_merged_perfetto_document(self, obs_dir, capsys):
        assert main(["export", str(obs_dir)]) == 0
        document = json.loads((obs_dir / "trace.json").read_text())
        events = document["traceEvents"]
        assert events
        cats = {e.get("cat") for e in events} - {None}
        assert {"execution", "runtime"} <= cats

    def test_output_flag(self, obs_dir, tmp_path):
        out = tmp_path / "nested" / "merged.json"
        assert main(["export", str(obs_dir), "-o", str(out)]) == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_empty_directory_fails(self, tmp_path, capsys):
        assert main(["export", str(tmp_path)]) == 1
        assert "no trace artifacts" in capsys.readouterr().err
