"""Shared test fixtures."""

import os

import pytest

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    _hypothesis_settings = None

if _hypothesis_settings is not None:
    # Seed-pinned profile for CI: differential/property suites replay
    # the exact same example stream on every run, so a red build is a
    # regression, never hypothesis exploring a new corner.  Opt in with
    # HYPOTHESIS_PROFILE=ci; local runs keep the randomized default.
    _hypothesis_settings.register_profile(
        "ci", derandomize=True, print_blob=True
    )
    _profile = os.environ.get("HYPOTHESIS_PROFILE")
    if _profile:
        _hypothesis_settings.load_profile(_profile)


@pytest.fixture(autouse=True)
def _pristine_trace_context():
    """Reset the process trace context (global root, REPRO_TRACE env,
    phase buffer) around every test, so a test that mints a sweep root
    never leaks correlation ids into the next one."""
    from repro.obs import trace_context

    trace_context.reset()
    yield
    trace_context.reset()


@pytest.fixture(autouse=True, scope="session")
def _isolated_cache_root(tmp_path_factory):
    """Point the default result cache at a session-temporary directory.

    Keeps the suite hermetic: experiment jobs (and their L1-filter /
    trace-memo sidecars) never write ``.repro-cache/`` into the working
    tree, while tests within one session still share warm artifacts.
    Tests that need a private root monkeypatch ``REPRO_CACHE_DIR`` on
    top of this.
    """
    root = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
