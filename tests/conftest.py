"""Shared test fixtures."""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_cache_root(tmp_path_factory):
    """Point the default result cache at a session-temporary directory.

    Keeps the suite hermetic: experiment jobs (and their L1-filter /
    trace-memo sidecars) never write ``.repro-cache/`` into the working
    tree, while tests within one session still share warm artifacts.
    Tests that need a private root monkeypatch ``REPRO_CACHE_DIR`` on
    top of this.
    """
    root = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
