"""The dedup acceptance test from the issue: two *simultaneous*
submissions of the same job hash against a live server produce exactly
one execution and two identical payloads.

Two client threads rendezvous on a barrier, then both POST the same
job with ``wait``; the slow job body guarantees the second submission
arrives while the first is still in flight, so it must attach rather
than execute.  The execution count is read from an append-only counter
file written by the job body itself — ground truth, independent of the
service's own accounting (which is asserted separately).
"""

import threading

ECHO = "tests.service.jobs:echo"
SLOW = "tests.service.jobs:slow_echo"


def metric_value(status, name):
    return status["metrics"][name]["value"]


def test_simultaneous_identical_submissions_share_one_execution(
    live_service, tmp_path
):
    service = live_service(workers=2)
    counter = tmp_path / "count"
    params = {"value": 17, "seconds": 0.5, "counter_path": str(counter)}

    barrier = threading.Barrier(2, timeout=10)
    results = [None, None]
    errors = []

    def submit(slot):
        client = service.client(tenant=f"tenant-{slot}")
        barrier.wait()
        try:
            results[slot] = client.submit(SLOW, params=params, wait=True)
        except Exception as exc:  # noqa: BLE001 - surfaced by the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=submit, args=(slot,)) for slot in (0, 1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    assert all(result is not None for result in results)

    # Exactly one execution of the job body...
    assert counter.read_text().count("\n") == 1
    # ...and two identical finished payloads.
    first, second = results
    assert first["state"] == second["state"] == "finished"
    assert first["hash"] == second["hash"]
    assert first["payload"] == second["payload"]
    assert first["payload"]["value"] == 17

    # The service saw both submissions but enqueued only one: the other
    # attached in flight (or, if the race was lost, hit the cache) —
    # either way the pool ran the job once.
    status = service.client().status()
    assert metric_value(status, "service.submissions") == 2
    assert metric_value(status, "service.enqueued") == 1
    assert (
        metric_value(status, "service.dedup_hits")
        + metric_value(status, "service.cache_hits")
        == 1
    )
    assert metric_value(status, "service.executed") == 1
    assert metric_value(status, "service.tenant.tenant-0.submissions") == 1
    assert metric_value(status, "service.tenant.tenant-1.submissions") == 1


def test_burst_of_duplicates_collapses_to_one_record(live_service, tmp_path):
    """N > 2 concurrent duplicates all resolve to one record/payload."""
    service = live_service(workers=2, queue_capacity=4)
    counter = tmp_path / "count"
    params = {"value": 4, "seconds": 0.3, "counter_path": str(counter)}

    fan = 6
    barrier = threading.Barrier(fan, timeout=10)
    results = [None] * fan
    errors = []

    def submit(slot):
        client = service.client()
        barrier.wait()
        try:
            results[slot] = client.submit(SLOW, params=params, wait=True)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=submit, args=(slot,)) for slot in range(fan)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors

    assert counter.read_text().count("\n") == 1
    hashes = {result["hash"] for result in results}
    payloads = {str(result["payload"]) for result in results}
    assert len(hashes) == 1
    assert len(payloads) == 1
    record = service.client().job(hashes.pop())
    assert record["submissions"] == fan
