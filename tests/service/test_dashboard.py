"""The scrape and dashboard surfaces: Prometheus text rendering and
the HTML page, both as pure functions of a status dict and over HTTP
against a live service."""

import urllib.request

from repro.service.dashboard import (
    _metric_name,
    dashboard_html,
    prometheus_text,
)

ECHO = "tests.service.jobs:echo"


def _status(**overrides):
    status = {
        "service": {
            "uptime_s": 12.5,
            "draining": False,
            "workers": 2,
            "queue_capacity": 64,
            "records": {"finished": 3, "running": 1, "total": 4},
        },
        "metrics": {
            "service.submissions": {"type": "counter", "value": 5},
            "service.cache_hits": {"type": "counter", "value": 1},
            "service.dedup_hits": {"type": "counter", "value": 1},
            "service.queue_depth": {"type": "gauge", "value": 2},
            "service.latency_us": {
                "type": "histogram",
                "count": 3,
                "total": 3000,
                "p50": 900,
                "p95": 1400,
                "p99": 1500,
            },
        },
        "runtime": {"finished": 3, "references": 1200, "wall_time": 2.5},
        "health": {
            "fault.worker.crash": 1,
            "recovery.worker.crash_retried": 1,
        },
        "cache": {"current_entries": 7},
        "trace_id": "cafe" * 8,
    }
    status.update(overrides)
    return status


class TestMetricNames:
    def test_sanitises_and_prefixes(self):
        assert _metric_name("service.cache_hits") == "repro_service_cache_hits"
        assert _metric_name("health", "fault.worker.crash") == (
            "repro_health_fault_worker_crash"
        )

    def test_collapses_repeats(self):
        assert "__" not in _metric_name("a..b", "c")


class TestPrometheusText:
    def test_counters_become_total_with_type_lines(self):
        text = prometheus_text(_status())
        assert "# TYPE repro_service_submissions_total counter" in text
        assert "repro_service_submissions_total 5" in text
        assert "repro_runtime_references_total 1200" in text
        assert "repro_health_fault_worker_crash_total 1" in text

    def test_gauges_and_records_by_state(self):
        text = prometheus_text(_status())
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert 'repro_service_records{state="finished"} 3' in text
        assert 'state="total"' not in text  # derived, not exported
        assert "repro_cache_entries 7" in text
        assert "# TYPE repro_runtime_wall_time gauge" in text

    def test_histograms_become_summaries(self):
        text = prometheus_text(_status())
        assert "# TYPE repro_service_latency_us summary" in text
        assert 'repro_service_latency_us{quantile="0.5"} 900' in text
        assert 'repro_service_latency_us{quantile="0.99"} 1500' in text
        assert "repro_service_latency_us_sum 3000" in text
        assert "repro_service_latency_us_count 3" in text

    def test_empty_status_still_renders(self):
        assert prometheus_text({}).endswith("\n")

    def test_non_numeric_values_render_as_zero(self):
        status = _status()
        status["metrics"]["service.submissions"]["value"] = "corrupt"
        assert "repro_service_submissions_total 0" in prometheus_text(status)


class TestDashboardHtml:
    def test_shows_load_admission_and_latency(self):
        page = dashboard_html(_status())
        assert "accepting" in page
        assert "2 / 64" in page  # queue depth / capacity
        assert "40.0%" in page  # (1 cache + 1 dedup) / 5 submissions
        assert "900 us" in page  # latency p50
        assert "cafe" * 8 in page
        assert 'href="/metrics"' in page

    def test_backpressure_states(self):
        draining = _status()
        draining["service"]["draining"] = True
        assert "draining" in dashboard_html(draining)
        full = _status()
        full["metrics"]["service.queue_depth"]["value"] = 64
        assert "REJECTING (queue full)" in dashboard_html(full)

    def test_fault_recoveries_summed_from_health(self):
        page = dashboard_html(_status())
        assert "fault recoveries" in page

    def test_empty_status_renders_page(self):
        page = dashboard_html({})
        assert page.startswith("<!DOCTYPE html>")
        assert "repro.service" in page


# -- over HTTP ------------------------------------------------------------


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read()


def test_metrics_and_dashboard_routes(live_service):
    service = live_service()
    client = service.client(tenant="ci")
    client.submit(ECHO, params={"value": 1}, wait=True)
    client.submit(ECHO, params={"value": 1}, wait=True)  # cache hit

    status, headers, body = _get(service.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    text = body.decode("utf-8")
    assert "repro_service_submissions_total 2" in text
    assert "repro_service_cache_hits_total 1" in text
    assert "# TYPE repro_service_latency_us summary" in text

    status, headers, body = _get(service.url + "/dashboard")
    assert status == 200
    assert headers["Content-Type"].startswith("text/html")
    page = body.decode("utf-8")
    assert "repro.service" in page
    # The sweep's trace id is live on the page for correlation.
    assert client.status()["trace_id"] in page
