"""Graceful shutdown, end to end: SIGTERM against a real server process.

The issue's acceptance path: start ``python -m repro.service serve`` as
a subprocess, submit work, send SIGTERM, and assert the drain — exit
code 0, the "drained cleanly" line, and a run log whose JSONL lines all
reached disk (the sinks were flushed, not truncated).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.service.client import ServiceClient

ECHO = "tests.service.jobs:echo"
SLOW = "tests.service.jobs:slow_echo"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture
def serve_process(tmp_path):
    """Launch ``serve --port 0`` subprocesses; TERM any survivors."""
    procs = []

    def launch(*extra_args):
        env = dict(os.environ)
        # The server process must import both repro (src layout) and
        # the tests.service.jobs job bodies.
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "serve",
                "--port",
                "0",
                "--inline",
                "--quiet",
                "--allow-fn",
                "repro.",
                "--allow-fn",
                "tests.",
                "--cache-dir",
                str(tmp_path / "cache"),
                *extra_args,
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        procs.append(proc)
        ready = proc.stdout.readline().strip()
        assert ready.startswith("repro.service listening on http://"), ready
        url = ready.rsplit(" ", 1)[-1]
        return proc, url

    yield launch
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.stderr.close()


def wait_exit(proc, timeout=30.0):
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        pytest.fail("serve process did not exit after SIGTERM")


def test_sigterm_drains_cleanly_and_flushes_runlog(serve_process, tmp_path):
    runlog = tmp_path / "service.jsonl"
    proc, url = serve_process("--runlog", str(runlog))
    client = ServiceClient(url)

    body = client.submit(ECHO, params={"value": 23}, wait=True)
    assert body["state"] == "finished"
    assert body["payload"]["value"] == 23

    proc.send_signal(signal.SIGTERM)
    assert wait_exit(proc) == 0
    assert "repro.service drained cleanly" in proc.stdout.read()

    # Every line of the run log is complete JSON — flushed, not truncated.
    lines = runlog.read_text().splitlines()
    events = [json.loads(line) for line in lines]
    assert [e["event"] for e in events if e["event"] == "finished"]
    for event in events:
        assert {"event", "label", "job_hash", "timestamp"} <= set(event)


def test_sigterm_mid_job_interrupts_and_exits_zero(serve_process, tmp_path):
    runlog = tmp_path / "service.jsonl"
    counter = tmp_path / "count"
    proc, url = serve_process(
        "--runlog", str(runlog), "--drain-grace", "0.5"
    )
    client = ServiceClient(url)

    # A job long enough to straddle the drain window (inline jobs run
    # to completion — the cancel hook interrupts *between* jobs — so
    # keep it short enough that the drain's bounded second wait covers
    # it; worker-process interruption is covered in tests/runtime).
    submitted = client.submit(
        SLOW, params={"value": 1, "seconds": 4.0, "counter_path": str(counter)}
    )
    deadline = time.monotonic() + 10.0
    while client.job(submitted["hash"])["state"] != "running":
        assert time.monotonic() < deadline
        time.sleep(0.05)
    # ...then SIGTERM: the short grace expires, the cancel hook fires,
    # and the server still exits 0 with valid (possibly empty) JSONL.
    proc.send_signal(signal.SIGTERM)
    assert wait_exit(proc) == 0
    assert "repro.service drained cleanly" in proc.stdout.read()
    if runlog.exists():
        for line in runlog.read_text().splitlines():
            json.loads(line)


def test_draining_server_rejects_new_submissions(serve_process, tmp_path):
    proc, url = serve_process("--drain-grace", "5")
    client = ServiceClient(url)
    submitted = client.submit(SLOW, params={"value": 2, "seconds": 3.0})
    deadline = time.monotonic() + 10.0
    while client.job(submitted["hash"])["state"] != "running":
        assert time.monotonic() < deadline
        time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    # The listener closes immediately on SIGTERM; new connections are
    # refused (or, in the drain race, answered 503) while the running
    # job gets its grace.
    deadline = time.monotonic() + 10.0
    refused = False
    while time.monotonic() < deadline and not refused:
        try:
            urllib.request.urlopen(url + "/healthz", timeout=1).read()
            time.sleep(0.05)
        except (urllib.error.URLError, ConnectionError, OSError):
            refused = True
    assert refused
    assert wait_exit(proc) == 0
