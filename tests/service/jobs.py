"""Module-level job functions for service tests.

Service jobs resolve by import path, so everything here must live at
module scope.  Execution counting goes through an append-only file
(``O_APPEND`` writes are atomic for these line sizes) so the count is
correct whether the job runs in-process, on an executor thread, or in
a spawned worker.
"""

import os
import time


def _count(counter_path):
    if counter_path:
        with open(counter_path, "a", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")


def executions(counter_path):
    """How many times a counted job body actually ran."""
    try:
        with open(counter_path, "r", encoding="utf-8") as handle:
            return sum(1 for _ in handle)
    except OSError:
        return 0


def echo(value, counter_path=None):
    _count(counter_path)
    return {"value": value, "references": 1}


def slow_echo(value, seconds=0.5, counter_path=None):
    _count(counter_path)
    time.sleep(seconds)
    return {"value": value, "slept": seconds, "references": 1}


def boom(message="kaboom"):
    raise ValueError(message)
