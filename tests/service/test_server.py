"""HTTP end-to-end: the API surface against a live ephemeral-port server.

Covers the acceptance paths from the issue: a cold submission executes
and returns its payload, the repeat is served as a cache hit without a
new execution, ``GET /jobs/<hash>/events`` streams
queued → started → finished, and the error surface (400/403/404/405/
413/429) answers with JSON bodies.
"""

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.service.client import ServiceError

ECHO = "tests.service.jobs:echo"
SLOW = "tests.service.jobs:slow_echo"
BOOM = "tests.service.jobs:boom"


def metric_value(status, name):
    return status["metrics"][name]["value"]


def test_submit_wait_cache_hit_and_status(live_service, tmp_path):
    service = live_service()
    client = service.client(tenant="ci")
    counter = tmp_path / "count"

    cold = client.submit(
        ECHO, params={"value": 41, "counter_path": str(counter)}, wait=True
    )
    assert cold["status"] == "submitted"
    assert cold["state"] == "finished"
    assert cold["payload"]["value"] == 41
    assert counter.read_text().count("\n") == 1

    warm = client.submit(
        ECHO, params={"value": 41, "counter_path": str(counter)}, wait=True
    )
    assert warm["status"] == "cache-hit"
    assert warm["hash"] == cold["hash"]
    assert warm["payload"] == cold["payload"]
    assert counter.read_text().count("\n") == 1  # no second execution

    status = client.status()
    assert status["service"]["draining"] is False
    assert metric_value(status, "service.submissions") == 2
    assert metric_value(status, "service.enqueued") == 1
    assert metric_value(status, "service.cache_hits") == 1
    assert metric_value(status, "service.executed") == 1
    assert metric_value(status, "service.tenant.ci.submissions") == 2


def test_get_job_describes_lifecycle(live_service):
    service = live_service()
    client = service.client()
    submitted = client.submit(ECHO, params={"value": 5}, label="demo", wait=True)
    body = client.job(submitted["hash"])
    assert body["state"] == "finished"
    assert body["fn"] == ECHO
    assert body["params"] == {"value": 5}
    assert body["label"] == "demo"
    assert body["payload"]["value"] == 5
    assert body["submissions"] == 1
    assert body["started_at"] >= body["submitted_at"]
    assert body["finished_at"] >= body["started_at"]


def test_events_stream_replays_queued_started_finished(live_service):
    service = live_service()
    client = service.client()
    submitted = client.submit(SLOW, params={"value": 3, "seconds": 0.3})
    assert submitted["state"] in ("queued", "running")

    # Connect while the job is (most likely) still live: the stream
    # replays history then tails until the record goes terminal.
    events = [e["event"] for e in client.events(submitted["hash"])]
    assert events[0] == "queued"
    assert "started" in events
    assert events[-1] == "finished"
    assert events.index("queued") < events.index("started") < len(events) - 1

    # A late subscriber gets the full history replay and an EOF.
    replay = [e["event"] for e in client.events(submitted["hash"])]
    assert replay == events


def test_failed_job_reports_error(live_service):
    service = live_service()
    client = service.client()
    body = client.submit(BOOM, params={"message": "blew up"}, wait=True)
    assert body["state"] == "failed"
    assert "blew up" in body["error"]
    assert "payload" not in body


def test_explicit_sweep_batch_with_wait(live_service):
    service = live_service()
    client = service.client()
    body = client.sweep(
        {
            "jobs": [
                {"fn": ECHO, "params": {"value": 1}, "label": "one"},
                {"fn": ECHO, "params": {"value": 2}, "label": "two"},
                {"fn": ECHO, "params": {"value": 1}, "label": "one"},
            ]
        },
        wait=True,
    )
    assert body["counts"]["submitted"] == 2
    # The duplicate either attached in flight or hit the finished record.
    assert body["counts"]["attached"] + body["counts"]["cache-hit"] == 1
    states = [item["state"] for item in body["jobs"]]
    assert states == ["finished"] * 3
    assert body["jobs"][0]["payload"]["value"] == 1
    assert body["jobs"][2]["hash"] == body["jobs"][0]["hash"]


def test_backpressure_answers_429_with_retry_after(live_service):
    service = live_service(workers=1, queue_capacity=1)
    client = service.client()
    running = client.submit(SLOW, params={"value": 1, "seconds": 3.0})
    # Wait until the slot pulled it off the queue, freeing the capacity.
    deadline = time.monotonic() + 5.0
    while client.job(running["hash"])["state"] != "running":
        assert time.monotonic() < deadline
        time.sleep(0.02)
    client.submit(SLOW, params={"value": 2, "seconds": 0.01})
    with pytest.raises(ServiceError) as exc_info:
        # _request skips the client's 429 pacing: surface the raw 429.
        client._request(
            "POST", "/jobs", {"fn": SLOW, "params": {"value": 3, "seconds": 0.01}}
        )
    assert exc_info.value.status == 429
    assert exc_info.value.retry_after == service.config.retry_after


def test_error_surface(live_service):
    service = live_service()
    client = service.client()

    with pytest.raises(ServiceError) as exc_info:
        client.submit("os:system", params={"command": "true"})
    assert exc_info.value.status == 403

    with pytest.raises(ServiceError) as exc_info:
        client.submit("not-an-import-path")
    assert exc_info.value.status == 400

    with pytest.raises(ServiceError) as exc_info:
        client.job("a" * 16)  # well-formed hash that was never submitted
    assert exc_info.value.status == 404

    with pytest.raises(ServiceError) as exc_info:
        client._request("GET", "/nope")
    assert exc_info.value.status == 404

    with pytest.raises(ServiceError) as exc_info:
        client._request("GET", "/jobs")  # wrong method on a real route
    assert exc_info.value.status == 405


def _raw_post(service, path, raw_body):
    request = urllib.request.Request(
        service.url + path,
        data=raw_body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return urllib.request.urlopen(request, timeout=10)


def test_malformed_and_nonfinite_json_rejected(live_service):
    service = live_service()

    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _raw_post(service, "/jobs", b"{not json")
    assert exc_info.value.code == 400

    # json.dumps would happily emit NaN with default settings; the server
    # must reject the token so identical submissions can't hash apart.
    raw = b'{"fn": "tests.service.jobs:echo", "params": {"value": NaN}}'
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _raw_post(service, "/jobs", raw)
    assert exc_info.value.code == 400
    assert "NaN" in json.loads(exc_info.value.read().decode("utf-8"))["error"]


def test_oversized_body_rejected(live_service):
    service = live_service(max_body_bytes=1024)
    padding = "x" * 4096
    raw = json.dumps({"fn": ECHO, "params": {"value": padding}}).encode()
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _raw_post(service, "/jobs", raw)
    assert exc_info.value.code == 413


def test_healthz_and_malformed_request_line(live_service):
    service = live_service()
    assert service.client().healthy()

    with socket.create_connection(("127.0.0.1", service.port), timeout=5) as s:
        s.sendall(b"garbage\r\n\r\n")
        response = s.recv(4096)
    assert b"400" in response.split(b"\r\n", 1)[0]
