"""Broker semantics: admission kinds, dedup, cache fronts, drain.

These tests drive :class:`~repro.service.broker.JobBroker` directly on
a private event loop — no HTTP — so each admission decision is
observable as the :class:`~repro.service.records.Submission` kind.
"""

import asyncio

import pytest

from repro.runtime.job import Job
from repro.service.broker import BackpressureError, DrainingError, JobBroker
from repro.service.config import ServiceConfig
from repro.service.records import (
    ATTACHED,
    CACHE_HIT,
    CANCELLED,
    FAILED,
    FINISHED,
    RUNNING,
    SUBMITTED,
)

from tests.service.jobs import executions

ECHO = "tests.service.jobs:echo"
SLOW = "tests.service.jobs:slow_echo"
BOOM = "tests.service.jobs:boom"


def metric_value(status, name):
    """One counter's value out of the /status metrics snapshot."""
    return status["metrics"][name]["value"]


def config_for(tmp_path, **overrides):
    settings = dict(
        isolate=False,
        quiet=True,
        drain_grace=5.0,
        cache_dir=str(tmp_path / "cache"),
        fn_prefixes=("repro.", "tests."),
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


def run_broker(config, scenario):
    """Run ``await scenario(broker)`` between start() and drain()."""

    async def main():
        broker = JobBroker(config)
        await broker.start()
        try:
            return await scenario(broker)
        finally:
            await broker.drain()

    return asyncio.run(main())


async def wait_terminal(record, timeout=10.0):
    await asyncio.wait_for(record.done.wait(), timeout=timeout)
    return record


async def wait_running(broker, record, timeout=10.0):
    """Block until the slot dequeued the record (queue slot freed)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while record.state not in (RUNNING, FINISHED, FAILED, CANCELLED):
        assert asyncio.get_running_loop().time() < deadline, record.state
        await asyncio.sleep(0.01)


def test_cold_submission_executes_and_finishes(tmp_path):
    counter = tmp_path / "count"
    job = Job.create(ECHO, value=7, counter_path=str(counter))

    async def scenario(broker):
        submission = broker.submit(job, tenant="alice")
        assert submission.kind == SUBMITTED
        record = await wait_terminal(submission.record)
        assert record.state == FINISHED
        assert record.payload["value"] == 7
        assert record.tenants == {"alice": 1}
        return broker.status()

    status = run_broker(config_for(tmp_path), scenario)
    assert executions(counter) == 1
    assert status["runtime"]["executed"] == 1
    assert metric_value(status, "service.executed") == 1


def test_repeat_submission_is_memory_cache_hit(tmp_path):
    counter = tmp_path / "count"
    job = Job.create(ECHO, value=7, counter_path=str(counter))

    async def scenario(broker):
        first = broker.submit(job)
        await wait_terminal(first.record)
        second = broker.submit(job)
        assert second.kind == CACHE_HIT
        assert second.record is first.record
        assert second.record.submissions == 2

    run_broker(config_for(tmp_path), scenario)
    assert executions(counter) == 1


def test_disk_cache_fronts_a_fresh_broker(tmp_path):
    counter = tmp_path / "count"
    job = Job.create(ECHO, value=9, counter_path=str(counter))
    config = config_for(tmp_path)

    async def cold(broker):
        await wait_terminal(broker.submit(job).record)

    run_broker(config, cold)
    assert executions(counter) == 1

    async def warm(broker):
        submission = broker.submit(job)
        assert submission.kind == CACHE_HIT
        assert submission.record.state == FINISHED
        assert submission.record.payload["value"] == 9
        # Served from the artifact: terminal immediately, no queue trip.
        assert [e["event"] for e in submission.record.history] == ["cache-hit"]

    run_broker(config, warm)
    assert executions(counter) == 1  # never re-executed


def test_inflight_submissions_attach_to_one_execution(tmp_path):
    counter = tmp_path / "count"
    job = Job.create(SLOW, value=1, seconds=0.5, counter_path=str(counter))

    async def scenario(broker):
        first = broker.submit(job, tenant="a")
        second = broker.submit(job, tenant="b")
        assert second.kind == ATTACHED
        assert second.record is first.record
        record = await wait_terminal(first.record)
        assert record.submissions == 2
        assert record.tenants == {"a": 1, "b": 1}
        return broker.status()

    status = run_broker(config_for(tmp_path), scenario)
    assert executions(counter) == 1
    assert metric_value(status, "service.dedup_hits") == 1
    assert metric_value(status, "service.enqueued") == 1


def test_full_queue_bounces_with_backpressure(tmp_path):
    config = config_for(tmp_path, workers=1, queue_capacity=1)

    async def scenario(broker):
        running = broker.submit(Job.create(SLOW, value=1, seconds=2.0))
        await wait_running(broker, running.record)
        queued = broker.submit(Job.create(SLOW, value=2, seconds=0.01))
        assert queued.kind == SUBMITTED
        with pytest.raises(BackpressureError) as exc_info:
            broker.submit(Job.create(SLOW, value=3, seconds=0.01))
        assert exc_info.value.retry_after == config.retry_after
        return broker.status()

    status = run_broker(config, scenario)
    assert metric_value(status, "service.rejected") == 1


def test_failed_job_records_error_and_resubmission_retries(tmp_path):
    job = Job.create(BOOM, message="nope")

    async def scenario(broker):
        first = broker.submit(job)
        record = await wait_terminal(first.record)
        assert record.state == FAILED
        assert "nope" in record.error
        # A terminal failure is not cached: resubmitting is an explicit
        # request to try again.
        second = broker.submit(job)
        assert second.kind == SUBMITTED
        assert second.record is not first.record
        assert (await wait_terminal(second.record)).state == FAILED

    run_broker(config_for(tmp_path), scenario)


def test_drain_cancels_queued_keeps_finished(tmp_path):
    counter = tmp_path / "count"
    config = config_for(tmp_path, workers=1, queue_capacity=4)

    async def scenario(broker):
        running = broker.submit(
            Job.create(SLOW, value=1, seconds=0.3, counter_path=str(counter))
        )
        await wait_running(broker, running.record)
        queued = broker.submit(
            Job.create(SLOW, value=2, seconds=0.3, counter_path=str(counter))
        )
        await broker.drain()
        # The running job got its grace and finished; the queued one was
        # cancelled without ever executing.
        assert running.record.state == FINISHED
        assert queued.record.state == CANCELLED
        assert [e["event"] for e in queued.record.history] == [
            "queued",
            "cancelled",
        ]
        with pytest.raises(DrainingError):
            broker.submit(Job.create(ECHO, value=3))

    async def main():
        broker = JobBroker(config)
        await broker.start()
        await scenario(broker)

    asyncio.run(main())
    assert executions(counter) == 1
