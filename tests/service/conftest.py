"""Service test fixtures: a live server on an ephemeral port.

The server runs a private event loop on a daemon thread; tests talk to
it over real TCP with :class:`~repro.service.client.ServiceClient`
(and raw sockets where the test is about the protocol).  Jobs run
in-process (``isolate=False``) so the suite stays fast — worker-process
isolation is the scheduler's behaviour, already covered by
``tests/runtime``.
"""

import asyncio
import threading

import pytest

from repro.service.broker import JobBroker
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import ServiceServer

#: job-fn roots the test services accept
TEST_PREFIXES = ("repro.", "tests.")


class LiveService:
    """One service instance on a background thread."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.broker: "JobBroker | None" = None
        self.server: "ServiceServer | None" = None
        self.port: "int | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "LiveService":
        self._thread.start()
        assert self._ready.wait(timeout=10), "service did not come up"
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.broker = JobBroker(self.config)
        self.server = ServiceServer(self.broker, self.config)
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def client(self, tenant: "str | None" = None) -> ServiceClient:
        return ServiceClient(self.url, tenant=tenant)

    def stop(self, timeout: float = 30.0) -> None:
        """Trigger the graceful drain and wait for the thread to end."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "service thread did not drain"


@pytest.fixture
def live_service(tmp_path):
    """Factory: start services with overrides; all drained at teardown."""
    started: "list[LiveService]" = []

    def factory(**overrides) -> LiveService:
        settings = dict(
            host="127.0.0.1",
            port=0,
            workers=2,
            isolate=False,
            quiet=True,
            drain_grace=5.0,
            cache_dir=str(tmp_path / f"svc-cache-{len(started)}"),
            fn_prefixes=TEST_PREFIXES,
        )
        settings.update(overrides)
        service = LiveService(ServiceConfig(**settings)).start()
        started.append(service)
        return service

    yield factory
    for service in started:
        service.stop()
