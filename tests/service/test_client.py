"""ServiceClient + RemoteRuntime: the driver-side seam.

``RemoteRuntime`` must quack like ``ExperimentRuntime`` — ordered
outcomes, ``cached`` statuses on repeats, stats, bus events — because
``run_all --server URL`` swaps it in without touching any driver.
"""

from repro.experiments.run_all import main as run_all_main
from repro.runtime.events import EventBus
from repro.runtime.job import Job
from repro.runtime.scheduler import CACHED, FAILED, OK
from repro.service.client import RemoteRuntime

ECHO = "tests.service.jobs:echo"
BOOM = "tests.service.jobs:boom"


class ListSink:
    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True


def test_remote_map_returns_ordered_outcomes(live_service):
    service = live_service()
    sink = ListSink()
    runtime = RemoteRuntime(service.client(), bus=EventBus([sink]), poll=0.05)
    jobs = [
        Job.create(ECHO, value=1),
        Job.create(BOOM, message="bad"),
        Job.create(ECHO, value=2),
    ]
    outcomes = runtime.map(jobs)
    assert [o.job.hash for o in outcomes] == [j.hash for j in jobs]
    assert [o.status for o in outcomes] == [OK, FAILED, OK]
    assert outcomes[0].payload["value"] == 1
    assert outcomes[2].payload["value"] == 2
    assert "bad" in outcomes[1].error
    assert runtime.stats.submitted == 3
    assert runtime.stats.failed == 1
    assert [e.event for e in sink.events] == ["finished", "failed", "finished"]
    runtime.close()
    assert sink.closed


def test_remote_repeat_reports_cached_outcomes(live_service):
    service = live_service()
    runtime = RemoteRuntime(service.client(), bus=EventBus([]), poll=0.05)
    jobs = [Job.create(ECHO, value=10), Job.create(ECHO, value=11)]
    first = runtime.map(jobs)
    assert [o.status for o in first] == [OK, OK]

    again = RemoteRuntime(service.client(), bus=EventBus([]), poll=0.05)
    second = again.map(jobs)
    assert [o.status for o in second] == [CACHED, CACHED]
    assert [o.payload for o in second] == [o.payload for o in first]
    assert again.stats.cache_hits == 2
    assert again.stats.executed == 0


def test_named_table2_sweep_expands_and_runs(live_service):
    service = live_service()
    client = service.client()
    body = client.sweep(
        {"experiment": "table2", "workloads": ["bisort"], "scale": 0.05},
        wait=True,
    )
    assert body["counts"]["submitted"] == 1
    (item,) = body["jobs"]
    assert item["state"] == "finished"
    assert item["label"] == "table2/bisort"
    assert item["payload"]["references"] > 0


def test_run_all_against_a_service(live_service, capsys):
    service = live_service()
    argv = [
        "--only", "table2",
        "--workloads", "bisort",
        "--scale", "0.05",
        "--quiet",
        "--server", service.url,
    ]
    assert run_all_main(argv) == 0
    captured = capsys.readouterr()
    assert "Table 2" in captured.out
    assert "run_all: 1/1 experiments ok" in captured.err
    assert "1 jobs run" in captured.err

    # Same command again: the service answers from its cache — no new
    # execution, and the driver reports the hits exactly like a local
    # warm-cache run would.
    assert run_all_main(argv) == 0
    captured = capsys.readouterr()
    assert "Table 2" in captured.out
    assert "0 jobs run, 1 cache hits" in captured.err

    status = service.client().status()
    assert status["runtime"]["executed"] == 1
    assert status["metrics"]["service.cache_hits"]["value"] == 1


def test_run_all_rejects_server_with_local_instrumentation(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        run_all_main(
            ["--server", "http://127.0.0.1:1", "--obs", str(tmp_path / "obs")]
        )
