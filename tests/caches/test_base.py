"""Cache statistics and shared helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.caches.base import CacheStats, check_power_of_two
from repro.caches.set_assoc import SetAssociativeCache
from repro.caches.skewed import SkewedAssociativeCache


class TestCacheStats:
    def test_ratios_empty(self):
        stats = CacheStats()
        assert stats.miss_ratio == 0.0
        assert stats.hit_ratio == 0.0

    def test_ratios(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.miss_ratio == pytest.approx(0.3)
        assert stats.hit_ratio == pytest.approx(0.7)

    def test_merge(self):
        a = CacheStats(accesses=1, hits=1, misses=0, evictions=2, writebacks=1)
        b = CacheStats(accesses=2, hits=0, misses=2, evictions=0, writebacks=0)
        merged = a.merge(b)
        assert merged.accesses == 3
        assert merged.evictions == 2
        assert merged.writebacks == 1


class TestPowerOfTwoCheck:
    def test_accepts_powers(self):
        for value in (1, 2, 4, 1024):
            check_power_of_two(value, "x")

    def test_rejects_others(self):
        for value in (0, 3, 6, -4):
            with pytest.raises(ValueError):
                check_power_of_two(value, "x")


@given(lines=st.lists(st.integers(min_value=0, max_value=200), max_size=300))
def test_one_way_skewed_equals_direct_mapped_set_assoc(lines):
    """Way 0 of the skewed cache uses the plain index, so a 1-way
    skewed cache and a 1-way set-associative cache are the same
    machine."""
    skewed = SkewedAssociativeCache(16, 1)
    direct = SetAssociativeCache(16, 1)
    for line in lines:
        assert skewed.access(line) == direct.access(line)
    assert sorted(skewed.resident_lines()) == sorted(direct.resident_lines())
