"""Set-associative LRU cache."""

import pytest
from hypothesis import given, strategies as st

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.set_assoc import SetAssociativeCache


class TestGeometry:
    def test_from_bytes_paper_l1(self):
        # 16 KB, 4-way, 64-byte lines -> 64 sets.
        c = SetAssociativeCache.from_bytes(16 * 1024, 64, 4)
        assert c.num_sets == 64
        assert c.ways == 4
        assert c.capacity_lines == 256

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(3, 4)

    def test_zero_ways_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(4, 0)

    def test_misaligned_bytes_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache.from_bytes(1000, 64, 4)


class TestSetConflicts:
    def test_conflict_within_one_set(self):
        c = SetAssociativeCache(num_sets=2, ways=1)
        c.access(0)  # set 0
        c.access(2)  # set 0, evicts 0
        assert 0 not in c
        assert 2 in c
        assert c.last_eviction.line == 0

    def test_no_conflict_across_sets(self):
        c = SetAssociativeCache(num_sets=2, ways=1)
        c.access(0)  # set 0
        c.access(1)  # set 1
        assert 0 in c and 1 in c

    def test_lru_within_set(self):
        c = SetAssociativeCache(num_sets=1, ways=2)
        c.access(10)
        c.access(20)
        c.access(10)
        c.access(30)  # evicts 20
        assert 20 not in c and 10 in c and 30 in c


class TestProtocolSupport:
    def test_set_dirty_and_is_dirty(self):
        c = SetAssociativeCache(2, 2)
        c.access(4, write=True)
        assert c.is_dirty(4)
        c.set_dirty(4, False)
        assert not c.is_dirty(4)

    def test_set_dirty_missing_line_raises(self):
        c = SetAssociativeCache(2, 2)
        with pytest.raises(KeyError):
            c.set_dirty(99, True)

    def test_update_if_present(self):
        c = SetAssociativeCache(2, 2)
        assert not c.update_if_present(6)
        c.access(6)
        assert c.update_if_present(6)
        assert c.is_dirty(6)

    def test_fill_and_invalidate(self):
        c = SetAssociativeCache(2, 2)
        c.fill(8, dirty=True)
        assert c.stats.accesses == 0
        assert c.is_dirty(8)
        assert c.invalidate(8)
        assert 8 not in c

    def test_len_counts_all_sets(self):
        c = SetAssociativeCache(4, 2)
        for line in range(6):
            c.access(line)
        assert len(c) == 6


@given(lines=st.lists(st.integers(min_value=0, max_value=20), max_size=200))
def test_single_set_equals_fully_associative(lines):
    """With one set, a set-associative cache *is* fully associative."""
    sa = SetAssociativeCache(num_sets=1, ways=4)
    fa = FullyAssociativeCache(4)
    for line in lines:
        assert sa.access(line) == fa.access(line)
    assert sorted(sa.resident_lines()) == sorted(fa.resident_lines())
