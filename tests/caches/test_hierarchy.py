"""Single-core IL1/DL1/L2 hierarchy."""

import pytest

from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.traces.trace import Access, AccessKind


def make_hierarchy(**overrides) -> SingleCoreHierarchy:
    return SingleCoreHierarchy(CoreCacheConfig(**overrides))


class TestRouting:
    def test_fetch_goes_through_il1(self):
        h = make_hierarchy()
        h.access(Access(0, AccessKind.FETCH, 0))
        assert h.il1.stats.accesses == 1
        assert h.dl1.stats.accesses == 0

    def test_load_goes_through_dl1(self):
        h = make_hierarchy()
        h.access(Access(0, AccessKind.LOAD, 0))
        assert h.dl1.stats.accesses == 1
        assert h.il1.stats.accesses == 0

    def test_l1_hit_skips_l2(self):
        h = make_hierarchy()
        h.access(Access(0, AccessKind.LOAD, 0))
        l2_before = h.stats.l2_accesses
        outcome = h.access(Access(0, AccessKind.LOAD, 1))
        assert outcome.l1_miss is False
        assert h.stats.l2_accesses == l2_before

    def test_l1_miss_reaches_l2(self):
        h = make_hierarchy()
        outcome = h.access(Access(0, AccessKind.LOAD, 0))
        assert outcome.l1_miss and outcome.l2_access and outcome.l2_miss

    def test_second_miss_hits_l2(self):
        h = make_hierarchy(il1_bytes=128, dl1_bytes=128, l1_ways=2)
        # Two lines alias in the tiny DL1... use enough lines to evict.
        for i in range(8):
            h.access(Access(i * 64, AccessKind.LOAD, i))
        outcome = h.access(Access(0, AccessKind.LOAD, 100))
        assert outcome.l1_miss is True
        assert outcome.l2_miss is False  # L2 kept it


class TestStorePolicy:
    def test_store_always_reaches_l2(self):
        """Write-through: stores access the L2 even on DL1 hits."""
        h = make_hierarchy()
        h.access(Access(0, AccessKind.LOAD, 0))  # DL1 now holds line 0
        before = h.stats.l2_accesses
        outcome = h.access(Access(0, AccessKind.STORE, 1))
        assert outcome.l1_miss is False
        assert h.stats.l2_accesses == before + 1

    def test_store_miss_does_not_allocate_dl1(self):
        h = make_hierarchy()
        h.access(Access(64 * 999, AccessKind.STORE, 0))
        assert 999 not in h.dl1

    def test_store_allocates_in_l2(self):
        """Write-allocate L2: a store miss installs the line."""
        h = make_hierarchy()
        h.access(Access(64 * 999, AccessKind.STORE, 0))
        assert 999 in h.l2
        assert h.l2.is_dirty(999)

    def test_store_miss_counts_as_l1_miss(self):
        h = make_hierarchy()
        outcome = h.access(Access(0, AccessKind.STORE, 0))
        assert outcome.l1_miss
        assert h.stats.l1_misses == 1


class TestConfig:
    def test_fully_associative_l1_option(self):
        h = make_hierarchy(l1_ways=0)
        from repro.caches.fully_assoc import FullyAssociativeCache

        assert isinstance(h.il1, FullyAssociativeCache)

    def test_skewed_l2_default(self):
        from repro.caches.skewed import SkewedAssociativeCache

        assert isinstance(make_hierarchy().l2, SkewedAssociativeCache)

    def test_set_assoc_l2_option(self):
        from repro.caches.set_assoc import SetAssociativeCache

        h = make_hierarchy(l2_skewed=False)
        assert isinstance(h.l2, SetAssociativeCache)

    def test_paper_geometry(self):
        h = make_hierarchy()
        assert h.il1.capacity_lines == 256  # 16 KB
        assert h.l2.capacity_lines == 8192  # 512 KB


class TestInstructionTracking:
    def test_instructions_follow_trace(self):
        h = make_hierarchy()
        h.access(Access(0, AccessKind.LOAD, 10))
        h.access(Access(64, AccessKind.LOAD, 25))
        assert h.stats.instructions == 26

    def test_working_set_larger_than_l2_misses(self):
        """A circular sweep over > 512 KB must keep missing the L2."""
        h = make_hierarchy()
        lines = 10_000  # 640 KB > 512 KB
        for lap in range(3):
            for i in range(lines):
                h.access(Access(i * 64, AccessKind.LOAD, lap * lines + i))
        # Second and third laps should still miss heavily (capacity).
        assert h.stats.l2_misses > lines * 2
