"""Fully-associative LRU cache."""

import pytest
from hypothesis import given, strategies as st

from repro.caches.fully_assoc import FullyAssociativeCache


class TestBasics:
    def test_miss_then_hit(self):
        c = FullyAssociativeCache(4)
        assert c.access(1) is False
        assert c.access(1) is True

    def test_capacity_eviction_is_lru(self):
        c = FullyAssociativeCache(2)
        c.access(1)
        c.access(2)
        c.access(1)  # 2 is now LRU
        c.access(3)  # evicts 2
        assert c.last_eviction.line == 2
        assert 1 in c and 3 in c and 2 not in c

    def test_from_bytes(self):
        c = FullyAssociativeCache.from_bytes(16 * 1024, 64)
        assert c.capacity_lines == 256

    def test_from_bytes_rejects_misaligned(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache.from_bytes(100, 64)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(0)

    def test_stats_counting(self):
        c = FullyAssociativeCache(2)
        c.access(1)
        c.access(1)
        c.access(2)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2


class TestWriteBehaviour:
    def test_write_marks_dirty(self):
        c = FullyAssociativeCache(2)
        c.access(1, write=True)
        assert c.is_dirty(1)

    def test_read_does_not_mark_dirty(self):
        c = FullyAssociativeCache(2)
        c.access(1)
        assert not c.is_dirty(1)

    def test_write_hit_marks_dirty(self):
        c = FullyAssociativeCache(2)
        c.access(1)
        c.access(1, write=True)
        assert c.is_dirty(1)

    def test_non_allocate_miss_leaves_cache(self):
        c = FullyAssociativeCache(2)
        assert c.access(1, write=True, allocate=False) is False
        assert 1 not in c

    def test_dirty_eviction_counts_writeback(self):
        c = FullyAssociativeCache(1)
        c.access(1, write=True)
        c.access(2)
        assert c.stats.writebacks == 1
        assert c.last_eviction.dirty is True


class TestFillAndUpdate:
    def test_fill_does_not_count_access(self):
        c = FullyAssociativeCache(2)
        c.fill(1)
        assert c.stats.accesses == 0
        assert 1 in c

    def test_fill_refreshes_recency(self):
        c = FullyAssociativeCache(2)
        c.access(1)
        c.access(2)
        c.fill(1)  # 1 becomes MRU
        c.access(3)  # evicts 2
        assert 1 in c and 2 not in c

    def test_update_if_present(self):
        c = FullyAssociativeCache(2)
        assert c.update_if_present(1) is False
        c.access(1)
        assert c.update_if_present(1) is True
        assert c.is_dirty(1)

    def test_invalidate(self):
        c = FullyAssociativeCache(2)
        c.access(1)
        assert c.invalidate(1) is True
        assert 1 not in c
        assert c.invalidate(1) is False

    def test_resident_lines_in_lru_order(self):
        c = FullyAssociativeCache(3)
        for line in (5, 6, 7):
            c.access(line)
        c.access(5)
        assert c.resident_lines() == [6, 7, 5]


@given(
    capacity=st.integers(min_value=1, max_value=8),
    lines=st.lists(st.integers(min_value=0, max_value=15), max_size=200),
)
def test_matches_naive_lru(capacity, lines):
    """Cross-check against an explicit list-based LRU simulation."""
    cache = FullyAssociativeCache(capacity)
    naive: "list[int]" = []  # most recent last
    for line in lines:
        expected_hit = line in naive
        assert cache.access(line) == expected_hit
        if expected_hit:
            naive.remove(line)
        elif len(naive) >= capacity:
            naive.pop(0)
        naive.append(line)
    assert cache.resident_lines() == naive
