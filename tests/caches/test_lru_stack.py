"""Mattson stack-distance profiler: exactness and the inclusion property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.lru_stack import LruStack, StackProfile


def naive_stack_depth(history: "list[int]", line: int) -> "int | None":
    """Reference: 1 + number of distinct lines since the previous access."""
    for i in range(len(history) - 1, -1, -1):
        if history[i] == line:
            return len(set(history[i + 1 :])) + 1
    return None


class TestLruStack:
    def test_first_touch_is_infinite(self):
        assert LruStack().access(1) is None

    def test_immediate_rereference_depth_one(self):
        s = LruStack()
        s.access(1)
        assert s.access(1) == 1

    def test_classic_sequence(self):
        s = LruStack()
        for line in (1, 2, 3):
            s.access(line)
        assert s.access(1) == 3  # 2 distinct lines since, +1

    def test_duplicates_do_not_inflate_depth(self):
        s = LruStack()
        s.access(1)
        s.access(2)
        s.access(2)
        s.access(2)
        assert s.access(1) == 2

    def test_compaction_preserves_depths(self):
        s = LruStack(initial_capacity=8)
        # Drive far past the initial capacity to force compactions.
        for lap in range(50):
            for line in range(5):
                depth = s.access(line)
                if lap > 0:
                    assert depth == 5
        assert s.distinct_lines == 5

    def test_depth_of_peeks_without_recording(self):
        s = LruStack()
        s.access(1)
        s.access(2)
        assert s.depth_of(1) == 2
        assert s.references == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruStack(initial_capacity=0)


@settings(max_examples=60)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=12), max_size=120),
)
def test_matches_naive_depths(lines):
    stack = LruStack(initial_capacity=4)  # tiny: exercises compaction
    history: "list[int]" = []
    for line in lines:
        assert stack.access(line) == naive_stack_depth(history, line)
        history.append(line)


@settings(max_examples=40)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    lines=st.lists(st.integers(min_value=0, max_value=15), max_size=150),
)
def test_inclusion_property_vs_lru_cache(capacity, lines):
    """A fully-associative LRU cache of C lines hits iff depth <= C —
    the Mattson inclusion property linking stacks to caches."""
    stack = LruStack()
    cache = FullyAssociativeCache(capacity)
    for line in lines:
        depth = stack.access(line)
        hit = cache.access(line)
        assert hit == (depth is not None and depth <= capacity)


class TestStackProfile:
    def test_fraction_deeper_basics(self):
        p = StackProfile()
        for depth in (1, 2, 3, None):
            p.record(depth)
        assert p.fraction_deeper(0) == 1.0
        assert p.fraction_deeper(2) == pytest.approx(0.5)
        assert p.fraction_deeper(100) == pytest.approx(0.25)  # the cold ref

    def test_empty_profile(self):
        assert StackProfile().fraction_deeper(10) == 0.0

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            StackProfile().record(0)

    def test_merge(self):
        a = StackProfile()
        a.record(1)
        a.record(None)
        b = StackProfile()
        b.record(5)
        merged = a.merge(b)
        assert merged.total == 3
        assert merged.cold == 1
        assert merged.fraction_deeper(4) == pytest.approx(2 / 3)

    def test_merge_all(self):
        profiles = []
        for depth in (1, 2, 3):
            p = StackProfile()
            p.record(depth)
            profiles.append(p)
        merged = StackProfile.merge_all(profiles)
        assert merged.total == 3

    def test_miss_ratio_curve_monotone(self):
        p = StackProfile()
        for depth in (1, 5, 9, 20, None, None):
            p.record(depth)
        curve = p.miss_ratio_curve([1, 4, 8, 16, 32])
        assert curve == sorted(curve, reverse=True)

    def test_record_stream(self):
        p = StackProfile()
        p.record_stream([1, None, 2])
        assert p.total == 3

    def test_index_invalidated_after_record(self):
        p = StackProfile()
        p.record(1)
        assert p.fraction_deeper(1) == 0.0
        p.record(10)
        assert p.fraction_deeper(1) == pytest.approx(0.5)


@given(
    depths=st.lists(
        st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
        max_size=150,
    ),
    threshold=st.integers(min_value=0, max_value=60),
)
def test_profile_matches_naive_count(depths, threshold):
    p = StackProfile()
    p.record_stream(depths)
    expected = sum(1 for d in depths if d is None or d > threshold)
    if depths:
        assert p.fraction_deeper(threshold) == pytest.approx(
            expected / len(depths)
        )
