"""Skewed-associative cache and skewing functions."""

import pytest
from hypothesis import given, strategies as st

from repro.caches.skewed import SkewedAssociativeCache, skew_hash


class TestSkewHash:
    def test_way0_is_plain_index(self):
        for line in (0, 5, 63, 64, 1000):
            assert skew_hash(line, 0, 6) == line % 64

    def test_in_range(self):
        for line in range(0, 5000, 97):
            for way in range(4):
                assert 0 <= skew_hash(line, way, 8) < 256

    def test_ways_decorrelated(self):
        """Lines mapping to the same index in way 0 should spread out in
        way 1 (the defining property of skewed associativity)."""
        index_bits = 8
        conflicting = [line for line in range(0, 1 << 16, 1 << index_bits)]
        way1_indices = {skew_hash(line, 1, index_bits) for line in conflicting}
        # 256 lines that all collide in way 0 should cover many indices
        # in way 1.
        assert len(way1_indices) > 100

    def test_deterministic(self):
        assert skew_hash(12345, 2, 10) == skew_hash(12345, 2, 10)


class TestSkewedCache:
    def test_miss_then_hit(self):
        c = SkewedAssociativeCache(16, 4)
        assert c.access(42) is False
        assert c.access(42) is True

    def test_from_bytes_paper_l2(self):
        # 512 KB, 4-way, 64-byte lines -> 2048 sets per way.
        c = SkewedAssociativeCache.from_bytes(512 * 1024, 64, 4)
        assert c.num_sets == 2048
        assert c.capacity_lines == 8192

    def test_capacity_bounded(self):
        c = SkewedAssociativeCache(16, 2)
        for line in range(1000):
            c.access(line)
        assert len(c) <= c.capacity_lines

    def test_conflicting_lines_survive_in_other_ways(self):
        """Lines with identical way-0 index still coexist (skewing)."""
        c = SkewedAssociativeCache(64, 4)
        conflicting = [i << 6 for i in range(4)]  # same way-0 index 0
        for line in conflicting:
            c.access(line)
        assert sum(1 for line in conflicting if line in c) == 4

    def test_dirty_tracking(self):
        c = SkewedAssociativeCache(16, 2)
        c.access(7, write=True)
        assert c.is_dirty(7)
        c.set_dirty(7, False)
        assert not c.is_dirty(7)

    def test_set_dirty_missing_raises(self):
        c = SkewedAssociativeCache(16, 2)
        with pytest.raises(KeyError):
            c.set_dirty(1, True)

    def test_eviction_reports_victim(self):
        c = SkewedAssociativeCache(1, 1)  # single slot
        c.access(1, write=True)
        c.access(2)
        assert c.last_eviction.line == 1
        assert c.last_eviction.dirty is True
        assert c.stats.writebacks == 1

    def test_fill_does_not_count(self):
        c = SkewedAssociativeCache(16, 2)
        c.fill(3)
        assert c.stats.accesses == 0
        assert 3 in c

    def test_update_if_present(self):
        c = SkewedAssociativeCache(16, 2)
        assert not c.update_if_present(9)
        c.access(9)
        assert c.update_if_present(9)
        assert c.is_dirty(9)

    def test_invalidate(self):
        c = SkewedAssociativeCache(16, 2)
        c.access(5)
        assert c.invalidate(5)
        assert 5 not in c
        assert not c.invalidate(5)

    def test_replacement_is_least_recent_among_candidates(self):
        c = SkewedAssociativeCache(4, 1)  # direct-mapped: way-0 index
        c.access(0)
        c.access(4)  # same index as 0 -> evicts it
        assert 0 not in c and 4 in c

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SkewedAssociativeCache(3, 2)
        with pytest.raises(ValueError):
            SkewedAssociativeCache(4, 0)
        with pytest.raises(ValueError):
            SkewedAssociativeCache.from_bytes(1000, 64, 4)


@given(lines=st.lists(st.integers(min_value=0, max_value=300), max_size=300))
def test_skewed_never_loses_resident_line_silently(lines):
    """Every access either hits, or misses and installs the line;
    the line must be resident immediately afterwards."""
    c = SkewedAssociativeCache(16, 2)
    for line in lines:
        c.access(line)
        assert line in c


def test_skewed_beats_direct_mapped_on_random_streams():
    """On random streams over a working set near capacity, 4-way
    skewing should hit more often than direct mapping (the property
    skewed associativity exists for; checked on fixed seeds, since it is
    statistical rather than adversarial)."""
    from repro.common.rng import make_rng

    for seed in (0, 1, 2):
        rng = make_rng(seed)
        lines = rng.integers(0, 60, size=3000)
        skewed = SkewedAssociativeCache(16, 4)
        direct = SkewedAssociativeCache(16, 1)
        for line in lines:
            skewed.access(int(line))
            direct.access(int(line))
        assert skewed.stats.hits > direct.stats.hits
