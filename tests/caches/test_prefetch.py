"""L2 prefetchers and their hierarchy/chip integration."""

import pytest

from repro.caches.fully_assoc import FullyAssociativeCache
from repro.caches.hierarchy import CoreCacheConfig, SingleCoreHierarchy
from repro.caches.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.traces.synthetic import Circular, UniformRandom, behavior_trace


class TestNextLinePrefetcher:
    def test_prefetches_on_miss(self):
        cache = FullyAssociativeCache(16)
        prefetcher = NextLinePrefetcher(cache, degree=2)
        prefetcher.demand_access(10, hit=False)
        assert 11 in cache and 12 in cache
        assert prefetcher.stats.issued == 2

    def test_no_prefetch_on_hit(self):
        cache = FullyAssociativeCache(16)
        prefetcher = NextLinePrefetcher(cache, degree=1)
        cache.access(5)
        prefetcher.demand_access(5, hit=True)
        assert prefetcher.stats.issued == 0

    def test_useful_counted_once(self):
        cache = FullyAssociativeCache(16)
        prefetcher = NextLinePrefetcher(cache, degree=1)
        prefetcher.demand_access(10, hit=False)  # prefetch 11
        prefetcher.demand_access(11, hit=True)
        prefetcher.demand_access(11, hit=True)
        assert prefetcher.stats.useful == 1
        assert prefetcher.stats.accuracy == 1.0

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(FullyAssociativeCache(4), degree=0)


class TestStridePrefetcher:
    def test_confirms_then_prefetches(self):
        cache = FullyAssociativeCache(32)
        prefetcher = StridePrefetcher(cache, degree=1)
        prefetcher.demand_access(0, hit=False)
        prefetcher.demand_access(4, hit=False)  # stride 4 seen once
        assert prefetcher.stats.issued == 0
        prefetcher.demand_access(8, hit=False)  # confirmed -> prefetch 12
        assert 12 in cache

    def test_random_misses_issue_nothing(self):
        cache = FullyAssociativeCache(64)
        prefetcher = StridePrefetcher(cache, degree=2)
        for line in (3, 17, 5, 40, 2, 33):
            prefetcher.demand_access(line, hit=False)
        assert prefetcher.stats.issued == 0

    def test_negative_lines_never_prefetched(self):
        cache = FullyAssociativeCache(8)
        prefetcher = StridePrefetcher(cache, degree=2)
        for line in (20, 10, 0):
            prefetcher.demand_access(line, hit=False)
        assert all(resident >= 0 for resident in cache.resident_lines())


class TestHierarchyIntegration:
    def test_stride_prefetch_removes_circular_misses(self):
        """Section 6: circular behaviours are 'likely to succeed' under
        prefetching — a streaming sweep should mostly hit the L2."""
        config = CoreCacheConfig(
            il1_bytes=1024, dl1_bytes=1024, l1_ways=4, l2_bytes=8 * 1024
        )
        plain = SingleCoreHierarchy(config)
        prefetching = SingleCoreHierarchy(
            config, prefetcher_factory=lambda l2: StridePrefetcher(l2, degree=4)
        )
        trace = list(behavior_trace(Circular(1000), 100_000))  # 64 KB >> 8 KB
        for access in trace:
            plain.access(access)
            prefetching.access(access)
        assert prefetching.stats.l2_misses < plain.stats.l2_misses / 2

    def test_prefetch_useless_on_random(self):
        config = CoreCacheConfig(
            il1_bytes=1024, dl1_bytes=1024, l1_ways=4, l2_bytes=8 * 1024
        )
        plain = SingleCoreHierarchy(config)
        prefetching = SingleCoreHierarchy(
            config, prefetcher_factory=lambda l2: StridePrefetcher(l2, degree=4)
        )
        trace = list(behavior_trace(UniformRandom(1000, seed=2), 60_000))
        for access in trace:
            plain.access(access)
            prefetching.access(access)
        # No stride to find: within 10% of the plain miss count.
        assert prefetching.stats.l2_misses == pytest.approx(
            plain.stats.l2_misses, rel=0.1
        )
